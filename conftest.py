"""Repo-wide pytest configuration (applies to tests/ and benchmarks/).

The persisted commissioning cache (:mod:`repro.diskcache`) defaults to
``~/.cache/repro``.  Test runs must not read artifacts left by earlier
runs of *different* code (content keys make that safe in principle, but
hermetic is better) nor litter the user's cache, so every session gets a
private, empty cache directory unless the caller pinned one explicitly.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_commissioning_cache(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    cache_dir = tmp_path_factory.mktemp("repro-disk-cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
