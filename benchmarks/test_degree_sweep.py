"""Claim C4: "further improvement ... for an even lesser degree".

The paper's closing remark: S4's costs shrink further when the
application can accept a lower collusion threshold.  We sweep the
polynomial degree at full network size on both testbeds and check both
metrics fall as the degree (and with it the collector count and chain
length) falls.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_iterations, register_report
from repro.analysis.experiments import run_degree_sweep
from repro.analysis.reporting import format_table
from repro.topology.testbeds import dcube, flocklab


@pytest.fixture(scope="module", params=["flocklab", "dcube"])
def sweep_case(request):
    spec = flocklab() if request.param == "flocklab" else dcube()
    rows = run_degree_sweep(
        spec, iterations=max(6, bench_iterations() // 2), seed=55
    )
    register_report(
        f"claim_c4_degree_sweep_{spec.name.lower()}",
        format_table(
            ["degree", "chain", "latency ms", "radio ms", "success"],
            [
                [
                    int(r["degree"]),
                    int(r["chain_length"]),
                    r["latency_ms"],
                    r["radio_ms"],
                    f"{r['success']:.2f}",
                ]
                for r in rows
            ],
            title=f"Claim C4 — S4 cost vs polynomial degree, {spec.name} "
            "(full network)",
        ),
    )
    return spec, rows


def test_lower_degree_is_cheaper(benchmark, sweep_case):
    """Latency and radio-on fall monotonically with the degree."""
    spec, rows = sweep_case
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    degrees = [r["degree"] for r in rows]
    assert degrees == sorted(degrees)
    latencies = [r["latency_ms"] for r in rows]
    radios = [r["radio_ms"] for r in rows]
    chains = [r["chain_length"] for r in rows]
    assert chains == sorted(chains), "chain shrinks with degree"
    assert latencies == sorted(latencies), "latency shrinks with degree"
    assert radios == sorted(radios), "radio-on shrinks with degree"
    # The paper's "further improvement" is substantial: quartering the
    # degree should cut latency by a visible margin.
    assert latencies[0] < 0.75 * latencies[-1]


def test_low_degree_remains_reliable(benchmark, sweep_case):
    """Cheapness must not come from dropped rounds."""
    _, rows = sweep_case
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    for row in rows:
        assert row["success"] > 0.8, f"degree {row['degree']} unreliable"
