"""Performance microbenchmark: fast path vs. the seed-equivalent reference.

A plain script (NOT a pytest module — run it directly):

    PYTHONPATH=src python benchmarks/perf_microbench.py

It times three tiers and writes the results to ``BENCH_core.json`` at the
repository root so future PRs have a perf trajectory to compare against:

1. **Primitives** — AES-128 block throughput (reference vs. T-table vs.
   numpy-batched), DRBG keystream, Shamir split/reconstruct ops/sec
   (scalar vs. batched).
2. **Campaign, cold** — one `run_figure1` FlockLab sweep per crypto mode
   as the first fast-path run in the current process state: the fast path
   pays commissioning it has not yet amortised (bootstrap probes run the
   bit-identical reference loop; the REAL stage may legitimately reuse
   crypto-mode-independent commissioning from the STUB stage, exactly as
   a real deployment would).
3. **Campaign, steady state** — the same campaign run again in the same
   process.  The seed implementation recomputes everything per campaign;
   the fast path amortises commissioning artifacts (bootstrap
   measurements, link tables, key schedules, chain layouts) exactly the
   way a long-running aggregation service would.  The steady-state ratio
   is the headline number the acceptance targets refer to (≥5× STUB,
   ≥10× REAL).

Environment knobs:

* ``REPRO_BENCH_ITERATIONS`` — campaign iterations per sweep point
  (default 2; CI smoke mode also uses 2).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import sys
import time

from repro import fastpath
from repro.analysis.experiments import run_figure1
from repro.core.config import CryptoMode
from repro.crypto.aes import AES128
from repro.crypto.prng import AesCtrDrbg
from repro.field.prime_field import PrimeField
from repro.sss.scheme import ShamirScheme
from repro.sss.aggregation import reconstruct_from_sums, reconstruct_many_from_sums
from repro.topology.testbeds import flocklab

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_core.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` (seconds)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- tier 1: primitives --------------------------------------------------------


def bench_aes() -> dict:
    key = bytes(range(16))
    block = bytes.fromhex("00112233445566778899aabbccddeeff")
    fast = AES128(key, use_tables=True)
    reference = AES128(key, use_tables=False)
    n_fast, n_ref = 3000, 400

    t_fast = _best_of(lambda: [fast.encrypt_block(block) for _ in range(n_fast)]) / n_fast
    t_ref = _best_of(lambda: [reference.encrypt_block(block) for _ in range(n_ref)]) / n_ref

    result = {
        "reference_us_per_block": round(t_ref * 1e6, 2),
        "ttable_us_per_block": round(t_fast * 1e6, 2),
        "ttable_speedup": round(t_ref / t_fast, 2),
        "blocks_per_sec_ttable": int(1.0 / t_fast),
    }
    try:
        from repro.crypto import aesbatch

        if aesbatch.HAVE_NUMPY:
            ciphers = [fast] * 512
            blocks = list(range(512))
            t_batch = (
                _best_of(lambda: aesbatch.encrypt_blocks(ciphers, blocks)) / 512
            )
            result["batched_us_per_block"] = round(t_batch * 1e6, 2)
            result["batched_speedup"] = round(t_ref / t_batch, 2)
    except ImportError:
        pass
    return result


def bench_drbg() -> dict:
    n_bytes = 1 << 16
    with fastpath.forced(True):
        fast = AesCtrDrbg.from_seed(b"bench")
        t_fast = _best_of(lambda: fast.random_bytes(n_bytes))
    with fastpath.forced(False):
        reference = AesCtrDrbg.from_seed(b"bench")
        t_ref = _timed(lambda: reference.random_bytes(n_bytes))
    return {
        "reference_mib_per_sec": round(n_bytes / t_ref / 2**20, 2),
        "fast_mib_per_sec": round(n_bytes / t_fast / 2**20, 2),
        "speedup": round(t_ref / t_fast, 2),
    }


def bench_sss() -> dict:
    field = PrimeField()
    scheme = ShamirScheme(field, degree=8)
    points = list(range(1, 25))
    secrets = [(i * 131 + 7) % 1000 for i in range(64)]

    def split_scalar():
        rng = AesCtrDrbg.from_seed(b"sss-bench")
        return [scheme.split(s, points, rng) for s in secrets]

    def split_batched():
        rng = AesCtrDrbg.from_seed(b"sss-bench")
        return scheme.split_many(secrets, points, rng)

    t_scalar = _best_of(split_scalar) / len(secrets)
    t_batched = _best_of(split_batched) / len(secrets)

    sums = [{x: (x * 37 + i) % field.prime for x in points[:9]} for i in range(256)]
    with fastpath.forced(False):
        t_rec_scalar = (
            _best_of(lambda: [reconstruct_from_sums(field, s, 8) for s in sums])
            / len(sums)
        )
    with fastpath.forced(True):
        t_rec_batched = (
            _best_of(lambda: reconstruct_many_from_sums(field, sums, 8)) / len(sums)
        )
    return {
        "split_scalar_ops_per_sec": int(1.0 / t_scalar),
        "split_batched_ops_per_sec": int(1.0 / t_batched),
        "split_speedup": round(t_scalar / t_batched, 2),
        "reconstruct_scalar_ops_per_sec": int(1.0 / t_rec_scalar),
        "reconstruct_batched_ops_per_sec": int(1.0 / t_rec_batched),
        "reconstruct_speedup": round(t_rec_scalar / t_rec_batched, 2),
    }


# -- tier 2+3: end-to-end campaigns --------------------------------------------


def bench_campaign(mode: CryptoMode, iterations: int) -> dict:
    spec = flocklab()

    def campaign():
        run_figure1(spec, iterations=iterations, seed=1, crypto_mode=mode)

    # Seed-equivalent implementation: the reference path recomputes
    # everything per campaign, so cold and steady state coincide; take
    # the best of two runs as its steady-state number.
    with fastpath.forced(False):
        seed_cold = _timed(campaign)
        seed_steady = min(seed_cold, _timed(campaign))

    # Fast path: the first run in this process state pays commissioning
    # (cold); subsequent identical campaigns hit the shared pools.
    with fastpath.forced(True):
        fast_cold = _timed(campaign)
        fast_steady = min(_timed(campaign), _timed(campaign))

    return {
        "iterations": iterations,
        "seed_cold_s": round(seed_cold, 4),
        "seed_steady_s": round(seed_steady, 4),
        "fast_cold_s": round(fast_cold, 4),
        "fast_steady_s": round(fast_steady, 4),
        "cold_speedup": round(seed_cold / fast_cold, 2),
        "steady_speedup": round(seed_steady / fast_steady, 2),
    }


def main() -> int:
    iterations = int(os.environ.get("REPRO_BENCH_ITERATIONS", "2"))
    print("== primitives ==")
    aes = bench_aes()
    print(f"  AES-128 block: {aes}")
    drbg = bench_drbg()
    print(f"  AES-CTR DRBG:  {drbg}")
    sss = bench_sss()
    print(f"  Shamir SSS:    {sss}")

    print("== run_figure1 campaigns (FlockLab sweep) ==")
    stub = bench_campaign(CryptoMode.STUB, iterations)
    print(f"  STUB: {stub}")
    real = bench_campaign(CryptoMode.REAL, iterations)
    print(f"  REAL: {real}")

    results = {
        "bench_version": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "aes": aes,
        "drbg": drbg,
        "sss": sss,
        "figure1_stub": stub,
        "figure1_real": real,
        "targets": {
            "figure1_stub_steady_speedup_min": 5.0,
            "figure1_real_steady_speedup_min": 10.0,
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    ok = True
    if stub["steady_speedup"] < 5.0:
        print(f"WARNING: STUB steady-state speedup {stub['steady_speedup']}x < 5x target")
        ok = False
    if real["steady_speedup"] < 10.0:
        print(f"WARNING: REAL steady-state speedup {real['steady_speedup']}x < 10x target")
        ok = False
    print("targets met" if ok else "targets NOT met")
    if not ok and os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        # Lenient by default: shared CI runners jitter, and the JSON
        # record is the artifact that matters.  Set REPRO_BENCH_STRICT=1
        # to turn a missed target into a non-zero exit.
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
