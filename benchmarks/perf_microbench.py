"""Performance microbenchmark: fast path vs. the seed-equivalent reference.

A plain script (NOT a pytest module — run it directly):

    PYTHONPATH=src python benchmarks/perf_microbench.py

It times three tiers and writes the results to ``BENCH_core.json`` at the
repository root so future PRs have a perf trajectory to compare against:

1. **Primitives** — AES-128 block throughput (reference vs. T-table vs.
   numpy-batched), DRBG keystream, Shamir split/reconstruct ops/sec
   (scalar vs. batched).
2. **Campaign, cold** — one `run_figure1` FlockLab sweep per crypto mode
   as the first fast-path run in the current process state: the fast path
   pays commissioning it has not yet amortised (bootstrap probes run the
   bit-identical reference loop; the REAL stage may legitimately reuse
   crypto-mode-independent commissioning from the STUB stage, exactly as
   a real deployment would).
3. **Campaign, steady state** — the same campaign run again in the same
   process.  The seed implementation recomputes everything per campaign;
   the fast path amortises commissioning artifacts (bootstrap
   measurements, link tables, key schedules, chain layouts) exactly the
   way a long-running aggregation service would.  The steady-state ratio
   is the headline number the acceptance targets refer to (≥5× STUB,
   ≥10× REAL).
4. **Campaign, parallel** — the same campaign fanned out over a
   4-worker :class:`repro.analysis.campaign.CampaignExecutor` (warmed
   pool, warm persisted commissioning cache) against the steady-state
   serial run.  The ≥2× wall-time target only applies on machines with
   ≥4 usable cores — the JSON records ``cpu_count`` so the regression
   gate can tell environments apart.
5. **Cold start** — fresh subprocesses run one REAL/STUB campaign with
   the persisted commissioning cache disabled, cold (empty dir) and warm
   (pre-populated dir).  The warm number is the cost of a freshly
   spawned campaign worker; the target is within 2× of steady state.
   (Each child imports numpy before the clock starts, so the numbers
   isolate commissioning cost from interpreter/import cost.)
6. **Sharded campaign** — the same deployment aggregated as one flat
   MPC domain vs. sliced into cells with a cross-cell round
   (:mod:`repro.analysis.sharding`, MPC data path only).  Flat share
   fan-out costs O(n·degree²) with degree = n/3; cells cut the degree
   by the cell count, so the sharded form wins by construction — the
   tracked ``sharded_speedup`` guards that scale-out advantage, and the
   tier asserts the two forms produce bit-identical aggregates.

7. **DRBG bulk** — whole-buffer keystream and batched dealer-fork
   prefill: scalar T-table refills vs the ``REPRO_VECTOR`` aesbatch
   lane kernel, bit-identical output, kernel-only comparison.
8. **minicast_vector** — the scalar bitmask slot loop vs the
   array-formulated ``_run_vector`` loop on a 144-node grid (sparse and
   wide chains), plus the batched Bernoulli mask sampler vs the scalar
   one.  The loop ratios are honest (< 1 on CPython — big-int masks are
   already bit-parallel); the sampler ratio is the tracked win.
9. **service_transport** — the socket transport against real shard
   processes: accepted shares/sec through journal-before-ack over TCP,
   the p99 per-share round trip, and the supervisor's shard-restart
   recovery time after a SIGKILL.  Absolute figures only, no speedup
   gate.

The in-process campaign tiers (2+3) run with the disk cache disabled so
"cold" keeps meaning "first time in any process state"; tier 5 measures
the disk cache explicitly.

Environment knobs:

* ``REPRO_BENCH_ITERATIONS`` — campaign iterations per sweep point
  (default 2; CI smoke mode also uses 2).
* ``REPRO_BENCH_PARALLEL_ITERATIONS`` — iterations per sweep point for
  the parallel tier (default 8; larger units amortise IPC).
* ``REPRO_BENCH_WORKERS`` — worker count for the parallel tier
  (default 4, the acceptance configuration).
* ``REPRO_BENCH_SHARDED_NODES`` / ``REPRO_BENCH_SHARDED_CELLS`` —
  deployment size and cell count for the sharded tier (default 180 / 6).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

from repro import diskcache, fastpath
from repro.analysis.campaign import CampaignExecutor
from repro.analysis.experiments import run_figure1
from repro.core.config import CryptoMode
from repro.crypto.aes import AES128
from repro.crypto.prng import AesCtrDrbg
from repro.field.prime_field import PrimeField
from repro.sss.scheme import ShamirScheme
from repro.sss.aggregation import reconstruct_from_sums, reconstruct_many_from_sums
from repro.topology.testbeds import flocklab

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_core.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` (seconds)."""
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- tier 1: primitives --------------------------------------------------------


def bench_aes() -> dict:
    key = bytes(range(16))
    block = bytes.fromhex("00112233445566778899aabbccddeeff")
    fast = AES128(key, use_tables=True)
    reference = AES128(key, use_tables=False)
    n_fast, n_ref = 3000, 400

    t_fast = _best_of(lambda: [fast.encrypt_block(block) for _ in range(n_fast)]) / n_fast
    t_ref = _best_of(lambda: [reference.encrypt_block(block) for _ in range(n_ref)]) / n_ref

    result = {
        "reference_us_per_block": round(t_ref * 1e6, 2),
        "ttable_us_per_block": round(t_fast * 1e6, 2),
        "ttable_speedup": round(t_ref / t_fast, 2),
        "blocks_per_sec_ttable": int(1.0 / t_fast),
    }
    try:
        from repro.crypto import aesbatch

        if aesbatch.HAVE_NUMPY:
            # A 512-block batch runs ~1 ms, which makes the measured
            # speedup flap by ±20% on a busy host — too noisy for the
            # regression gate.  4096 blocks and more repeats keep the
            # best-of wall time long enough to be stable.
            n_batch = 4096
            ciphers = [fast] * n_batch
            blocks = list(range(n_batch))
            t_batch = (
                _best_of(lambda: aesbatch.encrypt_blocks(ciphers, blocks), repeats=7)
                / n_batch
            )
            result["batched_us_per_block"] = round(t_batch * 1e6, 2)
            result["batched_speedup"] = round(t_ref / t_batch, 2)
    except ImportError:
        pass
    return result


def bench_drbg() -> dict:
    n_bytes = 1 << 16
    with fastpath.forced(True), fastpath.forced_vector(False):
        fast = AesCtrDrbg.from_seed(b"bench")
        t_fast = _best_of(lambda: fast.random_bytes(n_bytes), repeats=5)
    with fastpath.forced(False):
        reference = AesCtrDrbg.from_seed(b"bench")
        # Best-of, like the other gated tiers: a single sample of the
        # reference stream swings the tracked speedup past the CI gate's
        # 20% tolerance on a busy host.
        t_ref = _best_of(lambda: reference.random_bytes(n_bytes), repeats=5)
    return {
        "reference_mib_per_sec": round(n_bytes / t_ref / 2**20, 2),
        "fast_mib_per_sec": round(n_bytes / t_fast / 2**20, 2),
        "speedup": round(t_ref / t_fast, 2),
    }


def bench_drbg_bulk() -> dict:
    """Bulk keystream: scalar T-table refills vs the aesbatch lane kernel.

    Both sides run the batched fast path (geometric refills, pooled
    ciphers); the only difference is ``REPRO_VECTOR``, i.e. whether big
    refills go through :func:`repro.crypto.aesbatch.ctr_keystream`.  The
    output stream is bit-identical either way, so the tracked ratio is a
    pure kernel comparison.  Also times the batched dealer-fork prefill
    (``fork_many`` + ``prefill_many``) against sequential scalar forks —
    the protocol's per-round dealing pattern.
    """
    n_bytes = 1 << 20
    with fastpath.forced(True), fastpath.forced_vector(False):
        scalar = AesCtrDrbg.from_seed(b"bulk-bench")
        t_scalar = _best_of(lambda: scalar.random_bytes(n_bytes), repeats=3)
    with fastpath.forced(True), fastpath.forced_vector(True):
        lane = AesCtrDrbg.from_seed(b"bulk-bench")
        t_lane = _best_of(lambda: lane.random_bytes(n_bytes), repeats=3)

    forks = 64
    blocks_bytes = 96

    def forks_scalar():
        with fastpath.forced(True), fastpath.forced_vector(False):
            parent = AesCtrDrbg.from_seed(b"fork-bench")
            children = [parent.fork(f"dealer-{i}") for i in range(forks)]
            for child in children:
                child.random_bytes(blocks_bytes)

    def forks_lane():
        with fastpath.forced(True), fastpath.forced_vector(True):
            parent = AesCtrDrbg.from_seed(b"fork-bench")
            children = parent.fork_many([f"dealer-{i}" for i in range(forks)])
            AesCtrDrbg.prefill_many(children, blocks_bytes)
            for child in children:
                child.random_bytes(blocks_bytes)

    t_forks_scalar = _best_of(forks_scalar, repeats=5)
    t_forks_lane = _best_of(forks_lane, repeats=5)
    return {
        "scalar_mib_per_sec": round(n_bytes / t_scalar / 2**20, 2),
        "lane_mib_per_sec": round(n_bytes / t_lane / 2**20, 2),
        "bulk_speedup": round(t_scalar / t_lane, 2),
        "fork_batch_speedup": round(t_forks_scalar / t_forks_lane, 2),
    }


def bench_minicast_vector(iterations: int) -> dict:
    """Scalar bitmask loop vs the array-formulated vector loop.

    One lossy mid-size round (sparse chain) and one wide-chain round, on
    the same grid deployment, each run with ``vector=False`` and
    ``vector=True``.  The tracked ratios are honest: the bitmask loop's
    big-int masks are already bit-parallel, so the vector loop trails it
    on CPython (see ``VECTOR_MIN_NODES``) — the tier exists to keep that
    trade-off measured so a faster future kernel can flip the default on
    data.  The mask *sampler* itself, the vector loop's building block,
    is also tracked and does win (one batched draw per receiver set).
    """
    import random

    from repro.ct.minicast import MiniCastRound
    from repro.ct.slots import RoundSchedule
    from repro.phy.channel import ChannelModel, ChannelParameters
    from repro.phy.link import LinkTable
    from repro.phy.radio import NRF52840_154
    from repro.sim import maskbatch
    from repro.sim.bitrandom import random_bitmask_quantized
    from repro.topology.generators import grid

    channel = ChannelModel(
        ChannelParameters(
            path_loss_exponent=4.0,
            reference_loss_db=52.0,
            shadowing_sigma_db=0.0,
            noise_floor_dbm=-96.0,
        )
    )
    topology = grid(12, 12, spacing_m=9.0, seed=3)
    links = LinkTable(topology.positions, channel, 29)
    n = len(links.node_ids)
    reps = max(2, iterations)
    result: dict = {"nodes": n}
    for label, chain_mult in (("sparse", 2), ("wide", 16)):
        chain = chain_mult * n
        schedule = RoundSchedule(
            chain_length=chain,
            psdu_bytes=15,
            ntx=4,
            num_slots=16,
            timings=NRF52840_154,
        )
        initial = {
            node: ((1 << chain_mult) - 1) << (chain_mult * i)
            for i, node in enumerate(links.node_ids)
        }
        with fastpath.forced(True), fastpath.forced_vector(True):
            flat = MiniCastRound(links, schedule, vector=False)
            vector = MiniCastRound(links, schedule, vector=True)

        def run_round(round_):
            for seed in range(reps):
                round_.run(random.Random(seed), initial)

        t_flat = _best_of(lambda: run_round(flat), repeats=3) / reps
        t_vector = _best_of(lambda: run_round(vector), repeats=3) / reps
        result[label] = {
            "chain_bits": chain,
            "flat_ms": round(t_flat * 1e3, 3),
            "vector_ms": round(t_vector * 1e3, 3),
            "vector_loop_speedup": round(t_flat / t_vector, 2),
        }

    # The maskbatch sampler vs the scalar sampler, at the vector loop's
    # working shape: one Bernoulli mask per receiver of a slot.
    if maskbatch.HAVE_NUMPY:
        receivers, nbits, prec = 512, 2048, 10
        quantized = [300 + (i * 37) % 600 for i in range(receivers)]
        gen = maskbatch.generator_from(random.Random(5))
        q_arr = maskbatch._np.asarray(quantized, dtype=maskbatch._np.int64)
        t_vec = _best_of(
            lambda: maskbatch.bernoulli_mask_matrix(gen, q_arr, nbits, prec),
            repeats=7,
        )
        rng = random.Random(5)
        t_scalar = _best_of(
            lambda: [
                random_bitmask_quantized(rng, nbits, q, prec)
                for q in quantized
            ],
            repeats=5,
        )
        result["mask_sampler_speedup"] = round(t_scalar / t_vec, 2)
    return result


def bench_sss() -> dict:
    field = PrimeField()
    scheme = ShamirScheme(field, degree=8)
    points = list(range(1, 25))
    secrets = [(i * 131 + 7) % 1000 for i in range(64)]

    def split_scalar():
        rng = AesCtrDrbg.from_seed(b"sss-bench")
        return [scheme.split(s, points, rng) for s in secrets]

    def split_batched():
        rng = AesCtrDrbg.from_seed(b"sss-bench")
        return scheme.split_many(secrets, points, rng)

    t_scalar = _best_of(split_scalar) / len(secrets)
    t_batched = _best_of(split_batched) / len(secrets)

    # 1024 sums keep the batched pass well above 1 ms per repeat — short
    # timings made this speedup flap ±25% on a busy host, which is too
    # noisy for the CI regression gate.
    sums = [{x: (x * 37 + i) % field.prime for x in points[:9]} for i in range(1024)]
    with fastpath.forced(False):
        t_rec_scalar = (
            _best_of(lambda: [reconstruct_from_sums(field, s, 8) for s in sums])
            / len(sums)
        )
    with fastpath.forced(True):
        t_rec_batched = (
            _best_of(lambda: reconstruct_many_from_sums(field, sums, 8), repeats=7)
            / len(sums)
        )
    return {
        "split_scalar_ops_per_sec": int(1.0 / t_scalar),
        "split_batched_ops_per_sec": int(1.0 / t_batched),
        "split_speedup": round(t_scalar / t_batched, 2),
        "reconstruct_scalar_ops_per_sec": int(1.0 / t_rec_scalar),
        "reconstruct_batched_ops_per_sec": int(1.0 / t_rec_batched),
        "reconstruct_speedup": round(t_rec_scalar / t_rec_batched, 2),
    }


# -- tier 2+3: end-to-end campaigns --------------------------------------------


def bench_campaign(mode: CryptoMode, iterations: int) -> dict:
    spec = flocklab()

    def campaign():
        run_figure1(spec, iterations=iterations, seed=1, crypto_mode=mode)

    # Seed-equivalent implementation: the reference path recomputes
    # everything per campaign, so cold and steady state coincide; take
    # the best of two runs as its steady-state number.
    with fastpath.forced(False):
        seed_cold = _timed(campaign)
        seed_steady = min(seed_cold, _timed(campaign))

    # Fast path: the first run in this process state pays commissioning
    # (cold); subsequent identical campaigns hit the shared pools.
    with fastpath.forced(True):
        fast_cold = _timed(campaign)
        fast_steady = min(_timed(campaign), _timed(campaign))

    return {
        "iterations": iterations,
        "seed_cold_s": round(seed_cold, 4),
        "seed_steady_s": round(seed_steady, 4),
        "fast_cold_s": round(fast_cold, 4),
        "fast_steady_s": round(fast_steady, 4),
        "cold_speedup": round(seed_cold / fast_cold, 2),
        "steady_speedup": round(seed_steady / fast_steady, 2),
    }


# -- tier 4: parallel campaign --------------------------------------------------


def bench_campaign_parallel(iterations: int, workers: int) -> dict:
    """Serial steady-state vs a warmed N-worker pool over a warm disk cache."""
    spec = flocklab()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        diskcache.set_cache_dir(cache)
        previous_enabled = diskcache.set_enabled(True)
        try:
            with fastpath.forced(True):

                def campaign(executor=None):
                    run_figure1(
                        spec,
                        iterations=iterations,
                        seed=1,
                        crypto_mode=CryptoMode.REAL,
                        # Explicit workers=1 so a REPRO_WORKERS env setting
                        # cannot leak parallelism into the serial baseline.
                        workers=None if executor is not None else 1,
                        executor=executor,
                    )

                campaign()  # warm the in-process pools AND the disk cache
                serial_s = min(_timed(campaign), _timed(campaign))
                with CampaignExecutor(workers=workers) as executor:
                    start = time.perf_counter()
                    executor.warm_up()
                    pool_startup_s = time.perf_counter() - start
                    # First parallel run: workers commission from the warm
                    # disk cache.  Steady state: their in-memory pools hold.
                    parallel_cold_s = _timed(lambda: campaign(executor))
                    parallel_s = min(
                        _timed(lambda: campaign(executor)),
                        _timed(lambda: campaign(executor)),
                    )
        finally:
            diskcache.set_cache_dir(None)
            diskcache.set_enabled(previous_enabled)
    return {
        "iterations": iterations,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "pool_startup_s": round(pool_startup_s, 4),
        "parallel_first_s": round(parallel_cold_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 2),
    }


# -- tier 6: sharded cells vs one flat MPC domain --------------------------------


def bench_sharded(iterations: int) -> dict:
    """Flat single-domain aggregation vs sharded cells, same deployment.

    Both forms run the MPC data path only (no radio schedule), so the
    comparison isolates the share-algebra scaling: the flat domain deals
    degree-(n/3) polynomials over n/3+1 collector points, the cells deal
    degree-(n/3k) polynomials — the quadratic win sharding exists for.
    """
    from repro.analysis.sharding import run_sharded_campaign
    from repro.topology.generators import grid

    nodes = int(os.environ.get("REPRO_BENCH_SHARDED_NODES", "180"))
    cells = int(os.environ.get("REPRO_BENCH_SHARDED_CELLS", "6"))
    rounds = max(2, iterations)
    columns = max(1, round(nodes**0.5))
    topology = grid(columns, -(-nodes // columns), spacing_m=10.0, seed=7)

    with fastpath.forced(True):
        flat = run_sharded_campaign(
            topology, cells=1, iterations=rounds, seed=1
        )
        # Same repeats on both sides: best-of takes a min, so asymmetric
        # repeat counts would bias the tracked speedup.
        flat_s = _best_of(
            lambda: run_sharded_campaign(
                topology, cells=1, iterations=rounds, seed=1
            ),
            repeats=3,
        )
        sharded = run_sharded_campaign(
            topology, cells=cells, iterations=rounds, seed=1
        )
        sharded_s = _best_of(
            lambda: run_sharded_campaign(
                topology, cells=cells, iterations=rounds, seed=1
            ),
            repeats=3,
        )
    if not (flat.all_match and sharded.all_match):
        raise RuntimeError("sharded bench: aggregates failed to reconstruct")
    if flat.totals != sharded.totals:
        raise RuntimeError("sharded bench: flat and sharded aggregates differ")
    return {
        "nodes": len(topology),
        "cells": cells,
        "iterations": rounds,
        "flat_s": round(flat_s, 4),
        "sharded_s": round(sharded_s, 4),
        "sharded_speedup": round(flat_s / sharded_s, 2),
    }


# -- tier 7: chaos campaign — the price of coded redundancy ----------------------


def bench_chaos(iterations: int) -> dict:
    """Fault-injected campaign vs the fault-free sharded baseline.

    Same deployment and shape as the sharded tier; the chaos run adds
    replication-2 coded copies of every cell unit plus a sampled nonzero
    fault plan (a crash, a straggler, a corruption and a worker kill).
    The recorded ``redundancy_overhead`` is the wall-clock inflation paid
    for surviving that plan — deliberately *not* a ``*speedup`` key, so
    the regression gate records it without enforcing it: overhead is the
    price of the robustness contract, not a perf trajectory.
    """
    from repro.analysis.sharding import run_sharded_campaign
    from repro.chaos import FaultPlan, run_chaos_campaign
    from repro.topology.generators import grid

    nodes = int(os.environ.get("REPRO_BENCH_SHARDED_NODES", "180"))
    cells = int(os.environ.get("REPRO_BENCH_SHARDED_CELLS", "6"))
    rounds = max(2, iterations)
    columns = max(1, round(nodes**0.5))
    topology = grid(columns, -(-nodes // columns), spacing_m=10.0, seed=7)
    plan = FaultPlan.sample(1, cells, rounds)

    with fastpath.forced(True):
        baseline = run_sharded_campaign(
            topology, cells=cells, iterations=rounds, seed=1
        )
        baseline_s = _best_of(
            lambda: run_sharded_campaign(
                topology, cells=cells, iterations=rounds, seed=1
            ),
            repeats=3,
        )
        chaos = run_chaos_campaign(
            topology,
            cells,
            iterations=rounds,
            seed=1,
            faults=plan,
            replication=2,
        )
        chaos_s = _best_of(
            lambda: run_chaos_campaign(
                topology,
                cells,
                iterations=rounds,
                seed=1,
                faults=plan,
                replication=2,
            ),
            repeats=3,
        )
    if chaos.totals != baseline.totals:
        raise RuntimeError("chaos bench: faulted totals diverged from baseline")
    if not chaos.all_match:
        raise RuntimeError("chaos bench: faulted campaign failed to survive")
    return {
        "nodes": len(topology),
        "cells": cells,
        "iterations": rounds,
        "fault_events": len(plan.events),
        "recovered_rounds": sum(1 for entry in chaos.recovered if entry),
        "worker_retries": chaos.worker_retries,
        "unit_inflation": round(chaos.redundancy_overhead, 2),
        "baseline_s": round(baseline_s, 4),
        "chaos_s": round(chaos_s, 4),
        "redundancy_overhead": round(chaos_s / baseline_s, 2),
    }


def bench_service(iterations: int) -> dict:
    """Service daemon throughput: fsync'd admission, closes, recovery.

    A soak at the CI smoke's shape — fsync on every accepted share (the
    durability the restart-resume contract is priced in), one hard kill
    mid-stream — recorded as absolute rates: shares/sec through
    journal-before-ack admission, p99 window-close latency, and the
    journal-replay recovery time after the kill.  A second pass runs the
    same load sharded (4 journals, 4 queue-transport producers) so the
    record tracks multi-journal throughput next to the single-journal
    figure.  Deliberately no ``*speedup`` key: the regression gate
    records the tier without enforcing jittery absolute wall-clock
    numbers.
    """
    from repro.scenarios.spec import ServiceSoakSpec
    from repro.service.soak import run_service_soak

    devices = int(os.environ.get("REPRO_BENCH_SERVICE_DEVICES", "40"))
    windows = max(2, iterations)
    spec = ServiceSoakSpec(
        devices=devices,
        windows=windows,
        seed=17,
        cells=3,
        kill_at=(devices + devices // 2,),  # mid window 1
        duplicate_every=0,
        late_replays=0,
    )
    payload = run_service_soak(spec)
    if not (payload["all_exact"] and payload["oracle_match"]):
        raise RuntimeError("service bench: a window total missed its oracle")
    if payload["kills"] != 1:
        raise RuntimeError("service bench: the hard kill never fired")
    sharded = run_service_soak(
        ServiceSoakSpec(
            devices=devices,
            windows=windows,
            seed=17,
            cells=3,
            shards=4,
            producers=4,
            transport="queue",
            kill_at=(devices + devices // 2,),
            duplicate_every=0,
            late_replays=0,
        )
    )
    if not (sharded["all_exact"] and sharded["oracle_match"]):
        raise RuntimeError("service bench: a sharded total missed its oracle")
    if sharded["billing_exact"] is not True:
        raise RuntimeError("service bench: the sharded billing extract diverged")
    return {
        "devices": devices,
        "windows": windows,
        "accepted": payload["accepted"],
        "journal_records": payload["journal_records"],
        "shares_per_sec": payload["shares_per_sec"],
        "p99_window_close_ms": payload["p99_close_ms"],
        "recovery_s": payload["recoveries"][0]["recovery_s"],
        "shards": sharded["shards"],
        "producers": sharded["producers"],
        "sharded_shares_per_sec": sharded["shares_per_sec"],
        "sharded_p99_window_close_ms": sharded["p99_close_ms"],
        "sharded_recovery_s": sharded["recoveries"][0]["recovery_s"],
    }


def bench_service_transport(iterations: int) -> dict:
    """Socket transport: cross-process round trips and shard-restart cost.

    One client over real shard processes (TCP localhost, fsync'd WALs):
    every submission is timed individually for the round-trip
    distribution, then one shard is SIGKILLed and the monitor's respawn
    is timed as ``shard_restart_recovery_s``.  All absolute figures, no
    ``*speedup`` key — the regression gate records the tier without
    enforcing jittery cross-process wall-clock numbers.
    """
    from repro.service.client import ServiceClient
    from repro.service.daemon import ServiceConfig
    from repro.service.transport import RetryPolicy

    devices = int(os.environ.get("REPRO_BENCH_SERVICE_DEVICES", "40"))
    windows = max(2, iterations)
    retry = RetryPolicy(max_attempts=60, total_deadline_s=60.0)
    round_trips: list[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-socket-") as tmp:
        client = ServiceClient(
            ServiceConfig(seed=17, cells=3, fsync=True),
            pathlib.Path(tmp) / "service",
            shards=2,
            transport="socket",
        )
        try:
            accepted = 0
            started = time.perf_counter()
            for window in range(windows):
                for device in range(devices):
                    t0 = time.perf_counter()
                    result = client.submit(
                        device, window, window, 100 + device, retry=retry
                    )
                    round_trips.append(time.perf_counter() - t0)
                    if not result.accepted:
                        raise RuntimeError(
                            f"socket bench: share refused: {result}"
                        )
                    accepted += 1
                summary = client.close_window(window)
                if summary.total != summary.expected:
                    raise RuntimeError(
                        "socket bench: a window total missed its oracle"
                    )
            elapsed = time.perf_counter() - started
            client.kill_shard(0)
            deadline = time.monotonic() + 30.0
            # Poll the log, not the counter: the counter increments when
            # the respawn *starts*; the log entry lands with the
            # measured recovery time once the shard is back up.
            while not client.supervisor.restart_log:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        "socket bench: the monitor never restarted shard 0"
                    )
                time.sleep(0.005)
            recovery_s = client.supervisor.restart_log[-1]["recovery_s"]
            probe = client.submit(0, windows, windows, 1, retry=retry)
            if not probe.accepted:
                raise RuntimeError(
                    f"socket bench: restarted shard refused a share: {probe}"
                )
        finally:
            client.stop()
    round_trips.sort()
    p99 = round_trips[min(len(round_trips) - 1,
                          int(0.99 * (len(round_trips) - 1) + 0.5))]
    return {
        "devices": devices,
        "windows": windows,
        "shards": 2,
        "accepted": accepted,
        "socket_shares_per_sec": round(accepted / elapsed, 3),
        "p99_round_trip_ms": round(p99 * 1000.0, 3),
        "shard_restart_recovery_s": recovery_s,
    }


# -- tier 5: cold start vs the persisted commissioning cache ---------------------

_CHILD_SNIPPET = """
import json, sys, time
import repro.crypto.aesbatch  # numpy import paid before the clock starts
from repro.analysis.experiments import run_figure1
from repro.core.config import CryptoMode
from repro.topology.testbeds import flocklab
mode = CryptoMode.REAL if sys.argv[1] == "real" else CryptoMode.STUB
start = time.perf_counter()
run_figure1(flocklab(), iterations=int(sys.argv[2]), seed=1, crypto_mode=mode)
print(json.dumps({"campaign_s": time.perf_counter() - start}))
"""


def _child_campaign_seconds(
    mode: str, iterations: int, env: dict, repeats: int = 1
) -> float:
    """Best-of-N campaign wall time measured inside fresh subprocesses.

    Cold start is a *per-process* property, so unlike the in-process cold
    tiers it can be repeated — each repeat is a brand-new interpreter —
    and the best-of keeps scheduler jitter on shared CI runners from
    tripping the regression gate on a single unlucky 200 ms sample.
    """
    child_env = dict(os.environ)
    child_env["REPRO_WORKERS"] = "1"
    child_env.update(env)
    src = str(REPO_ROOT / "src")
    existing = child_env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        child_env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    samples = []
    for _ in range(repeats):
        output = subprocess.run(
            [sys.executable, "-c", _CHILD_SNIPPET, mode, str(iterations)],
            env=child_env,
            capture_output=True,
            text=True,
            check=True,
        )
        samples.append(
            json.loads(output.stdout.strip().splitlines()[-1])["campaign_s"]
        )
    return min(samples)


def bench_cold_start(iterations: int) -> dict:
    """Fresh-process campaign cost: no cache vs cold cache vs warm cache."""
    result: dict = {"iterations": iterations}
    for mode in ("stub", "real"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-cold-") as cache:
            no_cache = _child_campaign_seconds(
                mode, iterations, {"REPRO_DISK_CACHE": "0"}, repeats=3
            )
            warm_env = {"REPRO_DISK_CACHE": "1", "REPRO_CACHE_DIR": cache}
            first = _child_campaign_seconds(mode, iterations, warm_env)  # populates
            warm = _child_campaign_seconds(mode, iterations, warm_env, repeats=3)
        result[mode] = {
            "no_cache_s": round(no_cache, 4),
            "cache_populate_s": round(first, 4),
            "warm_s": round(warm, 4),
            "cache_speedup": round(no_cache / warm, 2),
        }
    return result


def main() -> int:
    iterations = int(os.environ.get("REPRO_BENCH_ITERATIONS", "2"))
    parallel_iterations = int(
        os.environ.get("REPRO_BENCH_PARALLEL_ITERATIONS", "8")
    )
    parallel_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    # Tiers 2+3 measure in-process cold/steady semantics; keep the disk
    # cache out of them (tier 5 measures it on purpose).
    diskcache.set_enabled(False)
    print("== primitives ==")
    aes = bench_aes()
    print(f"  AES-128 block: {aes}")
    drbg = bench_drbg()
    print(f"  AES-CTR DRBG:  {drbg}")
    drbg_bulk = bench_drbg_bulk()
    print(f"  DRBG bulk:     {drbg_bulk}")
    sss = bench_sss()
    print(f"  Shamir SSS:    {sss}")

    print("== minicast_vector (bitmask loop vs array loop) ==")
    minicast_vector = bench_minicast_vector(iterations)
    print(f"  {minicast_vector}")

    print("== run_figure1 campaigns (FlockLab sweep) ==")
    stub = bench_campaign(CryptoMode.STUB, iterations)
    print(f"  STUB: {stub}")
    real = bench_campaign(CryptoMode.REAL, iterations)
    print(f"  REAL: {real}")

    print("== campaign_parallel (REAL sweep, warmed pool + warm disk cache) ==")
    parallel = bench_campaign_parallel(parallel_iterations, parallel_workers)
    print(f"  {parallel}")

    print("== sharded campaign (flat MPC domain vs cells + cross-cell round) ==")
    sharded = bench_sharded(iterations)
    print(f"  {sharded}")

    print("== chaos campaign (sampled fault plan + replication-2 coded cells) ==")
    chaos = bench_chaos(iterations)
    print(f"  {chaos}")

    print("== service daemon (fsync'd WAL admission + hard-kill recovery) ==")
    service = bench_service(iterations)
    print(f"  {service}")

    print("== service transport (socket round trips + shard-restart cost) ==")
    transport = bench_service_transport(iterations)
    print(f"  {transport}")

    print("== cold start (fresh subprocesses, persisted commissioning cache) ==")
    cold = bench_cold_start(iterations)
    print(f"  STUB: {cold['stub']}")
    print(f"  REAL: {cold['real']}")
    cold["real"]["warm_vs_steady"] = round(
        cold["real"]["warm_s"] / real["fast_steady_s"], 2
    )
    cold["stub"]["warm_vs_steady"] = round(
        cold["stub"]["warm_s"] / stub["fast_steady_s"], 2
    )

    results = {
        "bench_version": 2,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "aes": aes,
        "drbg": drbg,
        "drbg_bulk": drbg_bulk,
        "sss": sss,
        "minicast_vector": minicast_vector,
        "figure1_stub": stub,
        "figure1_real": real,
        "campaign_parallel": parallel,
        "sharded_campaign": sharded,
        "chaos_campaign": chaos,
        "service_throughput": service,
        "service_transport": transport,
        "cold_start": cold,
        "targets": {
            "figure1_stub_steady_speedup_min": 5.0,
            "figure1_real_steady_speedup_min": 10.0,
            "campaign_parallel_speedup_min": 2.0,
            "campaign_parallel_min_cores": 4,
            # 3.0 since PR 4: steady state now amortises the per-round
            # dealt-share pool and round-constant caches, which a fresh
            # process legitimately lacks — the warm cold start itself
            # kept improving (see cold_start.*.warm_s), only the
            # denominator got faster.
            "cold_start_warm_vs_steady_max": 3.0,
            "sharded_campaign_speedup_min": 2.0,
            "drbg_bulk_speedup_min": 5.0,
            "minicast_mask_sampler_speedup_min": 2.0,
        },
    }
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    # Console warnings read the SAME thresholds the JSON carries (and the
    # regression gate enforces) — one source of truth, no drift.
    targets = results["targets"]
    ok = True

    def check_min(label: str, value, floor) -> None:
        nonlocal ok
        if value < floor:
            print(f"WARNING: {label} {value}x < {floor}x target")
            ok = False

    check_min(
        "STUB steady-state speedup",
        stub["steady_speedup"],
        targets["figure1_stub_steady_speedup_min"],
    )
    check_min(
        "REAL steady-state speedup",
        real["steady_speedup"],
        targets["figure1_real_steady_speedup_min"],
    )
    cores = os.cpu_count() or 1
    if cores >= targets["campaign_parallel_min_cores"]:
        check_min(
            f"parallel speedup on {cores} cores",
            parallel["parallel_speedup"],
            targets["campaign_parallel_speedup_min"],
        )
    else:
        print(
            f"NOTE: {cores} core(s) available; the 4-worker "
            f">={targets['campaign_parallel_speedup_min']}x wall-time target "
            f"needs >={targets['campaign_parallel_min_cores']} cores and is "
            "recorded, not enforced, here"
        )
    check_min(
        "sharded campaign speedup",
        sharded["sharded_speedup"],
        targets["sharded_campaign_speedup_min"],
    )
    cold_cap = targets["cold_start_warm_vs_steady_max"]
    for mode in ("stub", "real"):
        ratio = cold[mode]["warm_vs_steady"]
        if ratio > cold_cap:
            print(
                f"WARNING: {mode.upper()} warm-cache cold start is "
                f"{ratio}x steady state (> {cold_cap}x target)"
            )
            ok = False
    check_min(
        "DRBG bulk lane speedup",
        drbg_bulk["bulk_speedup"],
        targets["drbg_bulk_speedup_min"],
    )
    sampler = minicast_vector.get("mask_sampler_speedup")
    if sampler is not None:
        check_min(
            "mask sampler speedup",
            sampler,
            targets["minicast_mask_sampler_speedup_min"],
        )
    print("targets met" if ok else "targets NOT met")
    if not ok and os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        # Lenient by default: shared CI runners jitter, and the JSON
        # record is the artifact that matters.  Set REPRO_BENCH_STRICT=1
        # to turn a missed target into a non-zero exit.
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
