"""CI smoke for the service layer's restart-resume bit-identity contract.

Three probes:

1. **Oracle** — an uninterrupted ``service_soak`` run (no kills) must
   close every window exact against both its accepted-set
   reconstruction and the batch metering billing oracle.
2. **Hard kill** — a *separate OS process* stands up a daemon on a
   pinned journal, streams part of window 0 and dies with ``os._exit``
   mid-window, journal handle open — a real ``kill -9``, not an
   in-process simulation.
3. **Resume** — the parent restarts a daemon on the dead process's
   journal, re-streams the full load (already-journaled shares must be
   answered ``DUPLICATE``), closes every window and demands totals
   bit-identical to the oracle run.

The recovered window records and a manifest land in ``--out-dir`` as
the artifact CI uploads.

Run:  PYTHONPATH=src python benchmarks/service_smoke.py --out-dir service-smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.scenarios.spec import ServiceSoakSpec  # noqa: E402
from repro.service import Admission, ServiceConfig, ServiceDaemon  # noqa: E402
from repro.service.loadgen import device_ids, window_submissions  # noqa: E402
from repro.service.soak import run_service_soak  # noqa: E402

#: One fixed workload for every probe.
DEVICES = 10
WINDOWS = 3
SEED = 60221
BASE_LOAD_WH = 210
CELLS = 3
#: The child journals this many window-0 shares, then dies mid-window.
KILL_AFTER = 6


def _config() -> ServiceConfig:
    return ServiceConfig(seed=SEED, cells=CELLS, fsync=True)


def _spec() -> ServiceSoakSpec:
    return ServiceSoakSpec(
        devices=DEVICES,
        windows=WINDOWS,
        seed=SEED,
        base_load_wh=BASE_LOAD_WH,
        cells=CELLS,
        duplicate_every=0,
        late_replays=0,
    )


def _worker(journal: pathlib.Path) -> None:
    """Child process body: journal part of window 0, die hard."""
    daemon = ServiceDaemon(_config(), journal=journal)
    ids = device_ids(DEVICES)
    for submission in window_submissions(ids, 0, BASE_LOAD_WH, SEED)[:KILL_AFTER]:
        result = daemon.submit(
            submission.device, submission.seq, submission.window, submission.value
        )
        assert result.accepted
    os._exit(9)  # journal handle still open — the torn-world exit


def _oracle_probe() -> tuple[dict, list[tuple]]:
    start = time.perf_counter()
    payload = run_service_soak(_spec())
    probe = {
        "probe": "oracle",
        "elapsed_s": round(time.perf_counter() - start, 3),
        "violations": [],
    }
    if not payload["all_exact"]:
        probe["violations"].append("an uninterrupted window total was inexact")
    if not payload["oracle_match"]:
        probe["violations"].append("a window total missed the billing oracle")
    baseline = [
        (row["window"], row["total"], row["expected"], row["accepted"])
        for row in payload["windows"]
    ]
    return probe, baseline


def _kill_probe(journal: pathlib.Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    completed = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--worker", "--journal", str(journal)],
        env=env,
        capture_output=True,
        text=True,
    )
    probe = {
        "probe": "hard-kill",
        "exit_code": completed.returncode,
        "violations": [],
    }
    if completed.returncode != 9:
        probe["violations"].append(
            f"worker should die with os._exit(9), got {completed.returncode}: "
            f"{completed.stderr.strip()[:300]}"
        )
    if not journal.exists():
        probe["violations"].append("worker left no journal behind")
    return probe


def _resume_probe(
    journal: pathlib.Path, baseline: list[tuple], out_dir: pathlib.Path
) -> dict:
    start = time.perf_counter()
    daemon = ServiceDaemon(_config(), journal=journal)
    recovery_s = time.perf_counter() - start
    probe = {
        "probe": "resume",
        "recovery_s": round(recovery_s, 6),
        "replayed_records": daemon.journal.records,
        "violations": [],
    }
    if not daemon.recovered:
        probe["violations"].append("restart did not flag recovery")
    if daemon.pending != KILL_AFTER:
        probe["violations"].append(
            f"expected {KILL_AFTER} recovered pending shares, "
            f"got {daemon.pending}"
        )
    ids = device_ids(DEVICES)
    duplicates = 0
    for window in range(WINDOWS):
        for submission in window_submissions(ids, window, BASE_LOAD_WH, SEED):
            result = daemon.submit(
                submission.device,
                submission.seq,
                submission.window,
                submission.value,
            )
            if result.admission is Admission.DUPLICATE:
                duplicates += 1  # journaled before the kill, never re-counted
            elif not result.accepted:
                probe["violations"].append(
                    f"re-streamed share answered {result.admission}"
                )
        daemon.close_window(window)
    daemon.stop()
    probe["duplicates"] = duplicates
    if duplicates != KILL_AFTER:
        probe["violations"].append(
            f"expected {KILL_AFTER} duplicate answers for journaled "
            f"shares, got {duplicates}"
        )
    records = daemon.window_records()
    resumed = [(s.window, s.total, s.expected, s.accepted) for s in records]
    if resumed != baseline:
        probe["violations"].append(
            "recovered window totals are not bit-identical to the "
            f"uninterrupted oracle: {resumed} != {baseline}"
        )
    (out_dir / "window_records.json").write_text(
        json.dumps(
            {
                "baseline": [
                    dict(zip(("window", "total", "expected", "accepted"), row))
                    for row in baseline
                ],
                "recovered": [dataclasses.asdict(s) for s in records],
            },
            indent=2,
        )
        + "\n"
    )
    return probe


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default="service-smoke",
        help="where window records and the manifest land",
    )
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--journal", metavar="PATH", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.worker:
        _worker(pathlib.Path(args.journal))
        return 0  # unreachable; _worker exits hard

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    journal = out_dir / "service.wal"
    if journal.exists():
        journal.unlink()

    oracle, baseline = _oracle_probe()
    probes = [oracle, _kill_probe(journal)]
    probes.append(_resume_probe(journal, baseline, out_dir))
    failed = [p["probe"] for p in probes if p["violations"]]
    (out_dir / "manifest.json").write_text(
        json.dumps({"probes": probes, "failed": failed}, indent=2) + "\n"
    )
    for probe in probes:
        status = "ok" if not probe["violations"] else "FAILED"
        print(f"{probe['probe']:10s} {status}")
        for violation in probe["violations"]:
            print(f"  - {violation}", file=sys.stderr)
    if failed:
        print(f"failed probes: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"restart-resume bit-identity held across a process kill; "
        f"records in {out_dir}/"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
