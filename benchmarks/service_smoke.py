"""CI smoke for the sharded service's restart-resume bit-identity contract.

Three probes, all through the one :class:`repro.service.ServiceClient`
API (4 shard journals + the fold journal, 4 concurrent producers on the
queue transport):

1. **Oracle** — an uninterrupted sharded ``service_soak`` run (no
   kills) must close every window exact against both its accepted-set
   reconstruction and the batch metering billing oracle.
2. **Hard kill** — a *separate OS process* stands up a client on a
   pinned service directory, streams part of window 0 from 4 producer
   threads and dies with ``os._exit`` mid-window, journal handles open —
   a real ``kill -9``, not an in-process simulation.
3. **Resume** — the parent restarts a client over the dead process's
   service directory, re-streams the full load from 4 producers
   (already-journaled shares must be answered ``DUPLICATE``), closes
   every window and demands totals bit-identical to the oracle run.

The recovered window records, the result store's per-device billing
extract, and a manifest land in ``--out-dir`` as the artifact CI
uploads.

Run:  PYTHONPATH=src python benchmarks/service_smoke.py --out-dir service-smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.scenarios.spec import ServiceSoakSpec  # noqa: E402
from repro.service import Admission, ServiceClient, ServiceConfig  # noqa: E402
from repro.service.loadgen import device_ids, window_submissions  # noqa: E402
from repro.service.soak import run_service_soak  # noqa: E402

#: One fixed workload for every probe.
DEVICES = 12
WINDOWS = 3
SEED = 60221
BASE_LOAD_WH = 210
CELLS = 3
SHARDS = 4
PRODUCERS = 4
#: The child journals this many window-0 shares, then dies mid-window.
KILL_AFTER = 8


def _config() -> ServiceConfig:
    return ServiceConfig(seed=SEED, cells=CELLS, fsync=True)


def _client(service_dir: pathlib.Path) -> ServiceClient:
    return ServiceClient(
        _config(), service_dir, shards=SHARDS, transport="queue"
    )


def _spec() -> ServiceSoakSpec:
    return ServiceSoakSpec(
        devices=DEVICES,
        windows=WINDOWS,
        seed=SEED,
        base_load_wh=BASE_LOAD_WH,
        cells=CELLS,
        shards=SHARDS,
        producers=PRODUCERS,
        transport="queue",
        duplicate_every=0,
        late_replays=0,
    )


def _stream(client: ServiceClient, submissions, counters: dict) -> None:
    """Fan ``submissions`` over PRODUCERS threads; tally admissions."""
    lock = threading.Lock()

    def produce(chunk) -> None:
        for submission in chunk:
            result = client.submit(
                submission.device,
                submission.seq,
                submission.window,
                submission.value,
            )
            with lock:
                if result.admission is Admission.DUPLICATE:
                    counters["duplicates"] += 1
                elif result.accepted:
                    counters["accepted"] += 1
                else:
                    counters["refused"] += 1

    threads = [
        threading.Thread(target=produce, args=(submissions[p::PRODUCERS],))
        for p in range(PRODUCERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _worker(service_dir: pathlib.Path) -> None:
    """Child process body: journal part of window 0 concurrently, die hard."""
    client = _client(service_dir)
    ids = device_ids(DEVICES)
    counters = {"accepted": 0, "duplicates": 0, "refused": 0}
    _stream(
        client,
        window_submissions(ids, 0, BASE_LOAD_WH, SEED)[:KILL_AFTER],
        counters,
    )
    assert counters["accepted"] == KILL_AFTER
    os._exit(9)  # journal handles still open — the torn-world exit


def _oracle_probe() -> tuple[dict, list[tuple]]:
    start = time.perf_counter()
    payload = run_service_soak(_spec())
    probe = {
        "probe": "oracle",
        "elapsed_s": round(time.perf_counter() - start, 3),
        "shards": payload["shards"],
        "producers": payload["producers"],
        "violations": [],
    }
    if not payload["all_exact"]:
        probe["violations"].append("an uninterrupted window total was inexact")
    if not payload["oracle_match"]:
        probe["violations"].append("a window total missed the billing oracle")
    if payload["billing_exact"] is not True:
        probe["violations"].append("the store extract missed the billing oracle")
    baseline = [
        (row["window"], row["total"], row["expected"], row["accepted"])
        for row in payload["windows"]
    ]
    return probe, baseline


def _kill_probe(service_dir: pathlib.Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    completed = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--worker", "--service-dir", str(service_dir)],
        env=env,
        capture_output=True,
        text=True,
    )
    journals = sorted(p.name for p in service_dir.glob("*.wal"))
    probe = {
        "probe": "hard-kill",
        "exit_code": completed.returncode,
        "journals": journals,
        "violations": [],
    }
    if completed.returncode != 9:
        probe["violations"].append(
            f"worker should die with os._exit(9), got {completed.returncode}: "
            f"{completed.stderr.strip()[:300]}"
        )
    if len([j for j in journals if j.startswith("shard-")]) != SHARDS:
        probe["violations"].append(
            f"expected {SHARDS} shard journals, found {journals}"
        )
    return probe


def _resume_probe(
    service_dir: pathlib.Path, baseline: list[tuple], out_dir: pathlib.Path
) -> dict:
    start = time.perf_counter()
    client = _client(service_dir)
    recovery_s = time.perf_counter() - start
    probe = {
        "probe": "resume",
        "recovery_s": round(recovery_s, 6),
        "replayed_records": client.journal_records,
        "violations": [],
    }
    if not client.recovered:
        probe["violations"].append("restart did not flag recovery")
    if client.pending != KILL_AFTER:
        probe["violations"].append(
            f"expected {KILL_AFTER} recovered pending shares, "
            f"got {client.pending}"
        )
    ids = device_ids(DEVICES)
    counters = {"accepted": 0, "duplicates": 0, "refused": 0}
    for window in range(WINDOWS):
        _stream(
            client, window_submissions(ids, window, BASE_LOAD_WH, SEED), counters
        )
        client.close_window(window)
    probe["duplicates"] = counters["duplicates"]
    if counters["refused"]:
        probe["violations"].append(
            f"{counters['refused']} re-streamed share(s) were refused"
        )
    if counters["duplicates"] != KILL_AFTER:
        probe["violations"].append(
            f"expected {KILL_AFTER} duplicate answers for journaled "
            f"shares, got {counters['duplicates']}"
        )
    records = client.window_records()
    extract = client.query()
    client.stop()
    resumed = [(s.window, s.total, s.expected, s.accepted) for s in records]
    if resumed != baseline:
        probe["violations"].append(
            "recovered window totals are not bit-identical to the "
            f"uninterrupted oracle: {resumed} != {baseline}"
        )
    (out_dir / "window_records.json").write_text(
        json.dumps(
            {
                "baseline": [
                    dict(zip(("window", "total", "expected", "accepted"), row))
                    for row in baseline
                ],
                "recovered": [dataclasses.asdict(s) for s in records],
            },
            indent=2,
        )
        + "\n"
    )
    (out_dir / "store_extract.json").write_text(
        json.dumps(extract, indent=2) + "\n"
    )
    return probe


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default="service-smoke",
        help="where window records, the store extract and the manifest land",
    )
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--service-dir", metavar="PATH", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.worker:
        _worker(pathlib.Path(args.service_dir))
        return 0  # unreachable; _worker exits hard

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    service_dir = out_dir / "service"
    for stale in (
        list(service_dir.glob("*.wal")) + list(service_dir.glob("*.store"))
        if service_dir.exists()
        else []
    ):
        stale.unlink()

    oracle, baseline = _oracle_probe()
    probes = [oracle, _kill_probe(service_dir)]
    probes.append(_resume_probe(service_dir, baseline, out_dir))
    failed = [p["probe"] for p in probes if p["violations"]]
    (out_dir / "manifest.json").write_text(
        json.dumps({"probes": probes, "failed": failed}, indent=2) + "\n"
    )
    for probe in probes:
        status = "ok" if not probe["violations"] else "FAILED"
        print(f"{probe['probe']:10s} {status}")
        for violation in probe["violations"]:
            print(f"  - {violation}", file=sys.stderr)
    if failed:
        print(f"failed probes: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"restart-resume bit-identity held across a process kill "
        f"({SHARDS} journals, {PRODUCERS} producers); records in {out_dir}/"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
