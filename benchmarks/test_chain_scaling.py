"""Ablation A3: sharing-chain size scaling — O(n²) vs O(n·m).

The structural heart of the paper: the naive chain carries one sub-slot
per (node, node) pair while S4 carries one per (source, collector) pair
with m = ⌊n/3⌋ + 1 + redundancy.  This bench materializes the chains the
engines actually build across network sizes and verifies the asymptotics
(and their airtime consequences) directly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_report
from repro.analysis.experiments import (
    build_engines,
    degree_for,
    round_secrets,
    subnetwork_spec,
)
from repro.analysis.reporting import format_table
from repro.core.config import CryptoMode
from repro.phy.radio import NRF52840_154
from repro.ct.packet import sharing_psdu_bytes
from repro.topology.testbeds import dcube

SIZES = (5, 12, 25, 35, 45)


@pytest.fixture(scope="module")
def chain_rows():
    rows = []
    for size in SIZES:
        spec = subnetwork_spec(dcube(), size)
        s3, s4 = build_engines(spec, crypto_mode=CryptoMode.STUB)
        secrets = round_secrets(spec.topology.node_ids, 0)
        m3 = s3.run(secrets, seed=88)
        m4 = s4.run(secrets, seed=88)
        chain_time = NRF52840_154.packet_slot_us(sharing_psdu_bytes())
        rows.append(
            {
                "n": size,
                "degree": degree_for(size),
                "s3_chain": m3.chain_length_sharing,
                "s4_chain": m4.chain_length_sharing,
                "s3_chain_ms": m3.chain_length_sharing * chain_time / 1000,
                "s4_chain_ms": m4.chain_length_sharing * chain_time / 1000,
            }
        )
    register_report(
        "ablation_a3_chain_scaling",
        format_table(
            ["n", "degree", "S3 chain", "S4 chain", "S3 chain ms", "S4 chain ms"],
            [
                [
                    r["n"],
                    r["degree"],
                    r["s3_chain"],
                    r["s4_chain"],
                    r["s3_chain_ms"],
                    r["s4_chain_ms"],
                ]
                for r in rows
            ],
            title="Ablation A3 — sharing-chain size scaling, DCube subnetworks "
            "(chain ms = one chain transmission's airtime)",
        ),
    )
    return rows


def test_s3_chain_is_n_squared(benchmark, chain_rows):
    """The naive chain is exactly n² sub-slots at every size."""
    benchmark.pedantic(lambda: chain_rows, rounds=1, iterations=1)
    for row in chain_rows:
        assert row["s3_chain"] == row["n"] ** 2


def test_s4_chain_is_n_times_m(benchmark, chain_rows):
    """S4's chain is n × m with m ≈ n/3 + redundancy."""
    benchmark.pedantic(lambda: chain_rows, rounds=1, iterations=1)
    for row in chain_rows:
        m = row["s4_chain"] / row["n"]
        assert m == int(m), "chain must be a whole number of columns"
        assert row["degree"] + 1 <= m <= row["degree"] + 4

    # Asymptotics: the S3/S4 chain ratio approaches n/m ≈ 3 at scale.
    last = chain_rows[-1]
    ratio = last["s3_chain"] / last["s4_chain"]
    assert 2.2 < ratio < 3.5


def test_chain_gap_widens_with_n(benchmark, chain_rows):
    """The absolute airtime gap explodes quadratically with n."""
    benchmark.pedantic(lambda: chain_rows, rounds=1, iterations=1)
    gaps = [r["s3_chain_ms"] - r["s4_chain_ms"] for r in chain_rows]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 20 * gaps[0]
