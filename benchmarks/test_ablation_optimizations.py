"""Ablation A2: which S4 optimization buys what.

Three configurations at full network size separate the contributions of
(i) the trimmed chain + low-NTX truncated schedule (latency *and*
energy) from (ii) early radio-off (energy only):

* S3 — the naive baseline;
* S4-no-early-off — trimmed chain, low NTX, radios stay on;
* S4 — everything.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_iterations, register_report
from repro.analysis.experiments import run_optimization_ablation
from repro.analysis.reporting import format_table
from repro.topology.testbeds import dcube


@pytest.fixture(scope="module")
def ablation_rows():
    rows = run_optimization_ablation(
        dcube(), iterations=max(5, bench_iterations() // 2), seed=77
    )
    register_report(
        "ablation_a2_optimizations",
        format_table(
            ["variant", "latency ms", "radio ms"],
            [[r["variant"], r["latency_ms"], r["radio_ms"]] for r in rows],
            title="Ablation A2 — optimization split, DCube (full network)",
        ),
    )
    return {r["variant"]: r for r in rows}


def test_chain_trim_drives_latency(benchmark, ablation_rows):
    """The schedule/chain optimizations deliver the latency gain alone."""
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    assert (
        ablation_rows["s4_no_early_off"]["latency_ms"]
        < 0.5 * ablation_rows["s3"]["latency_ms"]
    )
    # Early-off contributes nothing to latency (same schedules).
    assert ablation_rows["s4"]["latency_ms"] == pytest.approx(
        ablation_rows["s4_no_early_off"]["latency_ms"], rel=0.05
    )


def test_early_off_adds_energy_savings(benchmark, ablation_rows):
    """Early radio-off stacks an extra energy factor on top."""
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    assert (
        ablation_rows["s4"]["radio_ms"]
        < ablation_rows["s4_no_early_off"]["radio_ms"]
    )
    assert (
        ablation_rows["s4_no_early_off"]["radio_ms"]
        < ablation_rows["s3"]["radio_ms"]
    )
