"""CI smoke for the chaos layer's degradation contract.

Two probes, both at minimal size and driven through the real CLI path:

1. **Survivable plan** — the registered ``chaos`` scenario's smoke spec
   (a nonzero fault plan: a corruption, a crash and a worker kill) must
   exit 0 and save a uniform JSON record with ``ok: true`` whose rounds
   all reproduce the flat deployment's sums bit-identically.
2. **Unsurvivable plan** — one loss beyond the reconstruction threshold
   must exit 1 from a fresh subprocess with a one-line structured
   ``error:`` message on stderr — no traceback, and *no record with a
   wrong answer*.

The collected records and a manifest land in ``--out-dir`` as the
artifact CI uploads.

Run:  PYTHONPATH=src python benchmarks/chaos_smoke.py --out-dir chaos-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.analysis.io import load_record  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.scenarios import registry  # noqa: E402

#: Three corruptions against 4 cells (threshold 2) lose 3 collector
#: points in round 0 — one past the survivable bound of 2.
UNSURVIVABLE = {
    "events": [
        {"kind": "corrupt", "cell": 0, "round": 0},
        {"kind": "corrupt", "cell": 1, "round": 0},
        {"kind": "corrupt", "cell": 2, "round": 0},
    ]
}


def _survivable_probe(out_dir: pathlib.Path) -> dict:
    entry = registry.get("chaos")
    spec = entry.smoke_spec()
    spec_path = out_dir / "chaos.spec.json"
    spec_path.write_text(
        json.dumps({"scenario": "chaos", **spec.to_dict()}, indent=2) + "\n"
    )
    record_path = out_dir / "chaos.json"
    start = time.perf_counter()
    code = cli_main(
        ["run", "chaos", "--spec", str(spec_path), "--save", str(record_path)]
    )
    elapsed = time.perf_counter() - start
    probe = {
        "probe": "survivable",
        "exit_code": code,
        "elapsed_s": round(elapsed, 3),
        "fault_events": len(spec.faults.events),
        "spec": spec_path.name,
        "record": record_path.name,
        "violations": [],
    }
    if code != 0:
        probe["violations"].append(f"expected exit 0, got {code}")
        return probe
    record = load_record(record_path)
    probe["ok"] = record["ok"]
    if not record["ok"]:
        probe["violations"].append("record ok flag is false")
    payload = record["payload"]
    if not payload["exact_under_loss"]:
        probe["violations"].append("a reconstructed total was wrong")
    if len(spec.faults.events) == 0:
        probe["violations"].append("smoke fault plan is empty")
    return probe


def _unsurvivable_probe(out_dir: pathlib.Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "run",
            "chaos",
            "--cells",
            "4",
            "--iterations",
            "2",
            "--replication",
            "2",
            "--faults",
            json.dumps(UNSURVIVABLE),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    stderr_lines = [line for line in completed.stderr.splitlines() if line]
    probe = {
        "probe": "unsurvivable",
        "exit_code": completed.returncode,
        "stderr": stderr_lines,
        "violations": [],
    }
    if completed.returncode != 1:
        probe["violations"].append(
            f"expected exit 1, got {completed.returncode}"
        )
    if len(stderr_lines) != 1:
        probe["violations"].append(
            f"expected one structured stderr line, got {len(stderr_lines)}"
        )
    if not stderr_lines or not stderr_lines[0].startswith("error: "):
        probe["violations"].append("stderr line is not an 'error: ' message")
    if "Traceback" in completed.stderr:
        probe["violations"].append("stderr carries a traceback")
    if stderr_lines and "survivable bound" not in stderr_lines[0]:
        probe["violations"].append(
            "error message does not name the survivable bound"
        )
    return probe


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default="chaos-smoke",
        help="where spec files, result records and the manifest land",
    )
    args = parser.parse_args(argv)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    probes = [_survivable_probe(out_dir), _unsurvivable_probe(out_dir)]
    failed = [p["probe"] for p in probes if p["violations"]]
    (out_dir / "manifest.json").write_text(
        json.dumps({"probes": probes, "failed": failed}, indent=2) + "\n"
    )
    for probe in probes:
        status = "ok" if not probe["violations"] else "FAILED"
        print(f"{probe['probe']:14s} exit {probe['exit_code']}  {status}")
        for violation in probe["violations"]:
            print(f"  - {violation}", file=sys.stderr)
    if failed:
        print(f"failed probes: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"degradation contract held; records in {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
