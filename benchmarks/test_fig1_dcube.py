"""Fig. 1(c) + 1(d): S3 vs S4 on D-Cube (45-node testbed).

Paper: same two metrics vs number of nodes (5, 7, 12, 45); D-Cube is
denser and larger, which gives S4 its biggest advantage.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    build_engines,
    round_secrets,
    subnetwork_spec,
)
from repro.core.config import CryptoMode
from repro.topology.testbeds import dcube


def test_fig1c_latency(benchmark, fig1_dcube):
    """Latency curve on D-Cube."""
    result = fig1_dcube

    spec = subnetwork_spec(dcube(), 12)
    s3, s4 = build_engines(spec, crypto_mode=CryptoMode.STUB)
    secrets = round_secrets(spec.topology.node_ids, 0)
    s4.bootstrap_for(sorted(secrets))

    def one_round_each():
        s3.run(secrets, seed=21)
        s4.run(secrets, seed=21)

    benchmark.pedantic(one_round_each, rounds=3, iterations=1)

    for point in result.points:
        assert point.s4_latency_ms.mean < point.s3_latency_ms.mean
    s3_means = [p.s3_latency_ms.mean for p in result.points]
    s4_means = [p.s4_latency_ms.mean for p in result.points]
    assert s3_means == sorted(s3_means)
    assert s4_means == sorted(s4_means)
    # The S3 cost at full size is dominated by the 45² = 2025-packet chain:
    # it must sit far above every smaller configuration (the log-scale
    # spread of the paper's plot).
    assert s3_means[-1] > 10 * s3_means[0]


def test_fig1d_radio_on(benchmark, fig1_dcube):
    """Radio-on curve on D-Cube."""
    result = fig1_dcube

    spec = subnetwork_spec(dcube(), 7)
    s3, s4 = build_engines(spec, crypto_mode=CryptoMode.STUB)
    secrets = round_secrets(spec.topology.node_ids, 0)
    s4.bootstrap_for(sorted(secrets))

    def one_round_each():
        s3.run(secrets, seed=22)
        s4.run(secrets, seed=22)

    benchmark.pedantic(one_round_each, rounds=3, iterations=1)

    for point in result.points:
        assert point.s4_radio_ms.mean < point.s3_radio_ms.mean
    # Radio-on ratio at full network exceeds the latency ratio (early
    # radio-off buys extra energy on top of the shorter schedule) — the
    # same ordering the paper reports (10x energy vs 9x latency).
    full = result.full_network_point
    assert full.radio_ratio >= full.latency_ratio * 0.95


def test_fig1_dcube_reliability(benchmark, fig1_dcube):
    """Both variants must actually aggregate."""
    benchmark.pedantic(lambda: fig1_dcube, rounds=1, iterations=1)
    for point in fig1_dcube.points:
        assert point.s3_success > 0.9
        assert point.s4_success > 0.8
