"""Extensions E1 + E2: interference robustness and battery lifetime.

Neither appears in the paper's evaluation (it runs at D-Cube jamming
level 0 and reports radio-on time rather than lifetime), but both are
the natural next questions its testbeds and motivation pose:

* **E1** — how do S3/S4 degrade under D-Cube's controlled jamming
  levels?  (S4's deliberately thin NTX margin stretches first; S3's
  over-provisioning absorbs interference it paid for all along.)
* **E2** — what does the radio-on gap mean for the paper's motivating
  concern, "sustained life"?  (First-node-death lifetime under a
  standard duty cycle.)
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import bench_iterations, register_report
from repro.analysis.experiments import (
    run_interference_sweep,
    run_lifetime_projection,
)
from repro.analysis.reporting import format_table
from repro.topology.testbeds import dcube, flocklab


@pytest.fixture(scope="module")
def interference_rows():
    rows = run_interference_sweep(
        dcube(), levels=(0, 1, 2, 3), iterations=max(10, bench_iterations() // 2)
    )
    register_report(
        "extension_e1_interference",
        format_table(
            ["level", "S3 success", "S3 latency ms", "S4 success", "S4 latency ms"],
            [
                [
                    int(r["level"]),
                    f"{r['s3_success']:.2f}",
                    r["s3_latency_ms"],
                    f"{r['s4_success']:.2f}",
                    r["s4_latency_ms"],
                ]
                for r in rows
            ],
            title="Extension E1 — D-Cube jamming levels (paper evaluates at "
            "level 0)",
        ),
    )
    return rows


def test_interference_robustness(benchmark, interference_rows):
    """E1: S4 keeps winning under interference but its margin erodes."""
    benchmark.pedantic(lambda: interference_rows, rounds=1, iterations=1)
    clean = interference_rows[0]
    assert clean["s3_success"] > 0.9 and clean["s4_success"] > 0.8
    for row in interference_rows:
        # Wherever both variants still complete, S4 stays faster.
        if not math.isnan(row["s4_latency_ms"]) and not math.isnan(
            row["s3_latency_ms"]
        ):
            assert row["s4_latency_ms"] < row["s3_latency_ms"]


def test_interference_stretches_s4_margin(benchmark, interference_rows):
    """E1: jamming erodes S4's thin margin where S3's over-provisioning holds.

    The latency columns are conditioned on completion, so under heavy
    jamming S4's mean latency can *shrink* by survivor bias (the rounds
    that would have posted the long tails are the ones that fail).  The
    robust signature of the thin margin is therefore reliability, not
    conditioned latency: at the most hostile level S4's success must not
    exceed S3's, while S3 — which paid for the margin in NTX all along —
    visibly pays in airtime instead.
    """
    benchmark.pedantic(lambda: interference_rows, rounds=1, iterations=1)
    clean, hostile = interference_rows[0], interference_rows[-1]
    if math.isnan(hostile["s4_latency_ms"]) or math.isnan(
        hostile["s3_latency_ms"]
    ):
        pytest.skip("hostile level prevented completion in this sample")
    assert hostile["s3_success"] >= hostile["s4_success"]
    s3_stretch = hostile["s3_latency_ms"] / clean["s3_latency_ms"]
    assert s3_stretch >= 0.99  # jamming never makes the naive flood faster


@pytest.fixture(scope="module")
def lifetime_outcomes():
    outcomes = {}
    for spec in (flocklab(), dcube()):
        outcomes[spec.name] = run_lifetime_projection(
            spec, rounds=max(4, bench_iterations() // 3)
        )
    register_report(
        "extension_e2_lifetime",
        format_table(
            ["testbed", "S3 lifetime (days)", "S4 lifetime (days)", "gain"],
            [
                [
                    name,
                    out["s3_lifetime_days"],
                    out["s4_lifetime_days"],
                    f"{out['lifetime_gain']:.1f}x",
                ]
                for name, out in outcomes.items()
            ],
            title="Extension E2 — projected first-node-death lifetime "
            "(96 rounds/day, AA-class cell)",
        ),
    )
    return outcomes


def test_lifetime_gain(benchmark, lifetime_outcomes):
    """E2: the radio-on gap translates into a multi-fold lifetime gain."""
    benchmark.pedantic(lambda: lifetime_outcomes, rounds=1, iterations=1)
    for name, out in lifetime_outcomes.items():
        assert out["lifetime_gain"] > 2.0, name
        assert out["s4_lifetime_days"] > 365, (
            f"{name}: S4 should sustain more than a year at this duty cycle"
        )
    # The denser testbed's bigger radio gap yields the bigger lifetime gain.
    assert (
        lifetime_outcomes["DCube"]["lifetime_gain"]
        >= lifetime_outcomes["FlockLab"]["lifetime_gain"] * 0.9
    )
