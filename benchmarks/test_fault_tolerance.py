"""Ablation A1: §III's fault-tolerance argument, quantified.

"When a degree k polynomial is used where k < n, in the reconstruction
phase even the final polynomial can be formed by combining any k+1 sum
values" — i.e. collector failures within the redundancy margin are
survivable, and beyond it the protocol fails *safely* (no silently wrong
aggregates).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_iterations, register_report
from repro.analysis.experiments import run_fault_tolerance
from repro.analysis.reporting import format_table
from repro.topology.testbeds import flocklab


@pytest.fixture(scope="module")
def fault_rows():
    spec = flocklab()
    rows = run_fault_tolerance(
        spec,
        failure_counts=(0, 1, 2, 3, 4),
        iterations=max(6, bench_iterations() // 2),
        seed=66,
    )
    register_report(
        "ablation_a1_fault_tolerance",
        format_table(
            ["failed collectors", "redundancy", "success fraction"],
            [
                [
                    int(r["failed_collectors"]),
                    int(r["redundancy"]),
                    f"{r['success_fraction']:.2f}",
                ]
                for r in rows
            ],
            title="Ablation A1 — S4 collector failures mid-sharing, FlockLab",
        ),
    )
    return rows


def test_failures_within_redundancy_survive(benchmark, fault_rows):
    """Collector deaths inside the redundancy margin leave aggregation up.

    Losing strictly fewer than ``redundancy`` collectors preserves slack
    and must survive comfortably; losing exactly ``redundancy`` leaves
    zero margin (every remaining column must be perfect), so the bar
    there is only "usually survives".
    """
    benchmark.pedantic(lambda: fault_rows, rounds=1, iterations=1)
    redundancy = int(fault_rows[0]["redundancy"])
    for row in fault_rows:
        failed = int(row["failed_collectors"])
        if failed < redundancy:
            assert row["success_fraction"] > 0.75, (
                f"{failed} failures should be comfortably survivable "
                f"with redundancy {redundancy}"
            )
        elif failed == redundancy:
            assert row["success_fraction"] > 0.4, (
                f"exactly-at-margin ({failed}) should usually survive"
            )


def test_failures_beyond_redundancy_degrade(benchmark, fault_rows):
    """Past the margin, success collapses (fail-safe, not fail-wrong)."""
    benchmark.pedantic(lambda: fault_rows, rounds=1, iterations=1)
    redundancy = int(fault_rows[0]["redundancy"])
    beyond = [
        r for r in fault_rows if r["failed_collectors"] > redundancy + 1
    ]
    if beyond:
        baseline = fault_rows[0]["success_fraction"]
        assert min(r["success_fraction"] for r in beyond) < baseline
