"""CI smoke: enumerate the scenario registry and run *everything*.

For every registered scenario this script materialises the scenario's
minimal-size smoke spec to a JSON file, drives it through the real CLI
path (``repro run <name> --spec <file> --save <record>``), and collects
the uniform result records plus a manifest into one output directory —
the artifact CI uploads.  A scenario that fails to run, or whose
acceptance check fails (non-zero exit), fails the whole smoke.

``--workers N`` forwards the CLI's worker-pool flag to every run, and
``--compare-to DIR`` chains a determinism pass over a previous smoke's
records: every record pair goes through ``repro compare``, so "same
spec, different workers" bit-identity is checked by the same tool users
run by hand.  A compare divergence fails the smoke.

Run:  PYTHONPATH=src python benchmarks/scenario_smoke.py --out-dir scenario-smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.analysis.io import load_record
from repro.cli import main as cli_main
from repro.scenarios import registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default="scenario-smoke",
        help="where spec files, result records and the manifest land",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="forward --workers N to every scenario run",
    )
    parser.add_argument(
        "--compare-to",
        metavar="DIR",
        default=None,
        help="a previous smoke's output directory; run `repro compare` "
        "over every shared record (bit-identity across backends)",
    )
    args = parser.parse_args(argv)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    manifest = []
    failures = []
    for name in registry.names():
        entry = registry.get(name)
        spec = entry.smoke_spec()
        spec_path = out_dir / f"{name}.spec.json"
        spec_path.write_text(
            json.dumps({"scenario": name, **spec.to_dict()}, indent=2) + "\n"
        )
        record_path = out_dir / f"{name}.json"
        cli_args = [
            "run", name, "--spec", str(spec_path), "--save", str(record_path)
        ]
        if args.workers is not None:
            cli_args += ["--workers", str(args.workers)]
        start = time.perf_counter()
        code = cli_main(cli_args)
        elapsed = time.perf_counter() - start
        row = {
            "scenario": name,
            "exit_code": code,
            "elapsed_s": round(elapsed, 3),
            "spec": str(spec_path.name),
            "record": str(record_path.name),
        }
        if code == 0:
            record = load_record(record_path)
            row["ok"] = record["ok"]
            row["backend"] = record["backend"]
        else:
            failures.append(name)
        manifest.append(row)
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"{name:14s} {elapsed:6.2f}s  {status}")

    compared = []
    if args.compare_to:
        baseline_dir = pathlib.Path(args.compare_to)
        print(f"\ncomparing against {baseline_dir}/ via `repro compare`:")
        for row in manifest:
            if row["exit_code"] != 0:
                continue
            baseline = baseline_dir / row["record"]
            if not baseline.exists():
                continue
            code = cli_main(
                ["compare", str(baseline), str(out_dir / row["record"])]
            )
            compared.append({"scenario": row["scenario"], "exit_code": code})
            if code != 0:
                failures.append(f"compare:{row['scenario']}")
            print(
                f"  {row['scenario']:14s} "
                f"{'match' if code == 0 else f'DIVERGED (exit {code})'}"
            )

    manifest_path = out_dir / "manifest.json"
    manifest_path.write_text(
        json.dumps(
            {
                "scenarios": manifest,
                "total": len(manifest),
                "failed": failures,
                "compared": compared,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\n{len(manifest) - len(failures)}/{len(manifest)} scenarios passed; "
        f"records in {out_dir}/"
    )
    if failures:
        print(f"failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
