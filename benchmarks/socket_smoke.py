"""CI smoke for the socket transport's kill-anywhere contract.

Three probes over real shard *processes* (TCP localhost, one daemon
process per shard journal, supervisor restart):

1. **Oracle** — an uninterrupted socket ``service_soak`` must close
   every window exact against both its accepted-set reconstruction and
   the batch metering billing oracle.
2. **CLI kill** — ``repro run service_soak --transport socket
   --kill-at N`` in a *separate OS process*: the whole service (every
   shard process) is SIGKILLed mid-window and restarted from the WALs;
   the saved record's window totals must be bit-identical to the
   oracle's.
3. **Shard faults** — a soak whose plan SIGKILLs single shard
   processes mid-window (``kill_shard_process``) and injects lost acks
   (``drop_connection``) and stalled replies (``delay_response``); the
   retrying client must ride every fault out and the totals must again
   match the oracle bit for bit.

The oracle and fault runs pin their service directories under
``--out-dir``; after each run ``repro query`` extracts the per-device
billing from the journals, and the two extracts must be identical.
The extracts, saved records and a manifest land in ``--out-dir`` as
the artifact CI uploads.

Run:  PYTHONPATH=src python benchmarks/socket_smoke.py --out-dir socket-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.faultplan import FaultEvent, FaultPlan  # noqa: E402
from repro.scenarios.spec import ServiceSoakSpec  # noqa: E402
from repro.service.soak import run_service_soak  # noqa: E402

#: One fixed workload for every probe.
DEVICES = 8
WINDOWS = 2
SEED = 60222
BASE_LOAD_WH = 210
CELLS = 2
SHARDS = 2
PRODUCERS = 2
#: The CLI probe hard-kills the whole service after this many accepts.
KILL_AT = 5


def _spec(**overrides) -> ServiceSoakSpec:
    base = dict(
        devices=DEVICES,
        windows=WINDOWS,
        seed=SEED,
        base_load_wh=BASE_LOAD_WH,
        cells=CELLS,
        shards=SHARDS,
        producers=PRODUCERS,
        transport="socket",
        duplicate_every=0,
        late_replays=0,
        fsync=True,
    )
    base.update(overrides)
    return ServiceSoakSpec(**base)


def _rows(payload: dict) -> list[tuple]:
    """The bit-identity core of a soak payload (recovery flags aside)."""
    return [
        (row["window"], row["total"], row["expected"], row["accepted"])
        for row in payload["windows"]
    ]


def _check_exact(payload: dict, probe: dict) -> None:
    if not payload["all_exact"]:
        probe["violations"].append("a window total was inexact")
    if not payload["oracle_match"]:
        probe["violations"].append("a window total missed the billing oracle")
    if payload["billing_exact"] is not True:
        probe["violations"].append("the store extract missed the billing oracle")


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _query_extract(service_dir: pathlib.Path) -> dict:
    """``repro query --json`` over a (now idle) service directory."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "query", str(service_dir), "--json"],
        env=_cli_env(),
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


def _oracle_probe(out_dir: pathlib.Path) -> tuple[dict, list[tuple], dict]:
    service_dir = out_dir / "oracle-service"
    start = time.perf_counter()
    payload = run_service_soak(_spec(), service_dir=service_dir)
    probe = {
        "probe": "oracle",
        "elapsed_s": round(time.perf_counter() - start, 3),
        "shards": payload["shards"],
        "violations": [],
    }
    _check_exact(payload, probe)
    extract = _query_extract(service_dir)
    (out_dir / "oracle_extract.json").write_text(
        json.dumps(extract, indent=2, sort_keys=True) + "\n"
    )
    return probe, _rows(payload), extract


def _cli_kill_probe(out_dir: pathlib.Path, baseline: list[tuple]) -> dict:
    record_path = out_dir / "cli_kill_record.json"
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "run", "service_soak",
            "--transport", "socket",
            "--kill-at", str(KILL_AT),
            "--devices", str(DEVICES),
            "--windows", str(WINDOWS),
            "--seed", str(SEED),
            "--base-load-wh", str(BASE_LOAD_WH),
            "--cells", str(CELLS),
            "--shards", str(SHARDS),
            "--producers", str(PRODUCERS),
            "--duplicate-every", "0",
            "--late-replays", "0",
            "--save", str(record_path),
        ],
        env=_cli_env(),
        capture_output=True,
        text=True,
    )
    probe = {
        "probe": "cli-kill",
        "exit_code": completed.returncode,
        "violations": [],
    }
    if completed.returncode != 0:
        probe["violations"].append(
            f"repro run service_soak --transport socket exited "
            f"{completed.returncode}: {completed.stderr.strip()[:300]}"
        )
        return probe
    payload = json.loads(record_path.read_text())["payload"]
    _check_exact(payload, probe)
    if payload["kills"] != 1:
        probe["violations"].append(
            f"expected 1 whole-service kill, payload says {payload['kills']}"
        )
    if _rows(payload) != baseline:
        probe["violations"].append(
            "killed-run window totals are not bit-identical to the "
            f"uninterrupted oracle: {_rows(payload)} != {baseline}"
        )
    return probe


def _shard_fault_probe(
    out_dir: pathlib.Path, baseline: list[tuple], oracle_extract: dict
) -> dict:
    service_dir = out_dir / "fault-service"
    faults = FaultPlan(events=(
        FaultEvent(kind="kill_shard_process", cell=0, round=2),
        FaultEvent(kind="kill_shard_process", cell=1, round=5),
        FaultEvent(kind="drop_connection", cell=1, round=3, duration=1),
        FaultEvent(kind="delay_response", cell=0, round=9, duration=1),
    ))
    start = time.perf_counter()
    payload = run_service_soak(_spec(faults=faults), service_dir=service_dir)
    probe = {
        "probe": "shard-faults",
        "elapsed_s": round(time.perf_counter() - start, 3),
        "shard_kills": payload["shard_kills"],
        "shard_restarts": payload["shard_restarts"],
        "violations": [],
    }
    _check_exact(payload, probe)
    if payload["shard_kills"] != 2:
        probe["violations"].append(
            f"expected 2 shard-process kills, fired {payload['shard_kills']}"
        )
    if payload["shard_restarts"] < payload["shard_kills"]:
        probe["violations"].append(
            f"{payload['shard_kills']} kills but only "
            f"{payload['shard_restarts']} supervisor restarts"
        )
    if payload["kills_unfired"] or payload["injections_unfired"]:
        probe["violations"].append("planned socket faults never fired")
    if _rows(payload) != baseline:
        probe["violations"].append(
            "fault-run window totals are not bit-identical to the "
            f"uninterrupted oracle: {_rows(payload)} != {baseline}"
        )
    extract = _query_extract(service_dir)
    (out_dir / "fault_extract.json").write_text(
        json.dumps(extract, indent=2, sort_keys=True) + "\n"
    )
    # Billing bit-identity: per-device bills and window totals.  (The
    # admission side-counters legitimately differ — the drop fault's
    # re-send is one extra DUPLICATE the oracle never saw.)
    if extract["devices"] != oracle_extract["devices"]:
        probe["violations"].append(
            "per-device billing extract diverged from the oracle's"
        )
    fault_totals = [
        (w["window"], w["total"], w["expected"], w["accepted"])
        for w in extract["windows"]
    ]
    oracle_totals = [
        (w["window"], w["total"], w["expected"], w["accepted"])
        for w in oracle_extract["windows"]
    ]
    if fault_totals != oracle_totals:
        probe["violations"].append(
            "journaled window totals diverged from the oracle's"
        )
    return probe


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default="socket-smoke",
        help="where the billing extracts, records and manifest land",
    )
    args = parser.parse_args(argv)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    oracle, baseline, oracle_extract = _oracle_probe(out_dir)
    probes = [
        oracle,
        _cli_kill_probe(out_dir, baseline),
        _shard_fault_probe(out_dir, baseline, oracle_extract),
    ]
    failed = [p["probe"] for p in probes if p["violations"]]
    (out_dir / "manifest.json").write_text(
        json.dumps({"probes": probes, "failed": failed}, indent=2) + "\n"
    )
    for probe in probes:
        status = "ok" if not probe["violations"] else "FAILED"
        print(f"{probe['probe']:12s} {status}")
        for violation in probe["violations"]:
            print(f"  - {violation}", file=sys.stderr)
    if failed:
        print(f"failed probes: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"kill-anywhere bit-identity held across the socket boundary "
        f"({SHARDS} shard processes, {PRODUCERS} producers); "
        f"extracts in {out_dir}/"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
