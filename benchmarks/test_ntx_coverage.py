"""Claims C3 + C5: NTX sufficiency and the coverage non-linearity.

C3 — the paper found NTX = 6 (FlockLab) and 5 (D-Cube) "enough for
sharing the data within the necessary number of neighbors"; our
calibrated channel needs 7 (documented deviation), and the benches below
verify the elected collectors are reliably reachable at the operating
NTX while *full* coverage demands far more.

C5 — §III: "with a short increase in NTX, a large amount of data becomes
available in a node, while it takes a comparatively higher time (NTX) to
have the full network coverage."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_iterations, register_report
from repro.analysis.reporting import format_table
from repro.core.bootstrap import network_depth
from repro.ct.coverage import profile_coverage
from repro.ct.packet import sharing_psdu_bytes
from repro.phy.channel import ChannelModel
from repro.phy.link import LinkTable
from repro.phy.radio import NRF52840_154
from repro.topology.testbeds import dcube, flocklab

NTX_VALUES = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12)


@pytest.fixture(scope="module", params=["flocklab", "dcube"])
def coverage_case(request):
    spec = flocklab() if request.param == "flocklab" else dcube()
    channel = ChannelModel(spec.channel)
    links = LinkTable(
        spec.topology.positions, channel, 6 + sharing_psdu_bytes()
    )
    profile = profile_coverage(
        links,
        NRF52840_154,
        ntx_values=NTX_VALUES,
        depth_hint=network_depth(links),
        iterations=max(10, bench_iterations()),
        seed=33,
    )
    rows = []
    for ntx in sorted(profile.stats):
        stats = profile.stats[ntx]
        rows.append(
            [
                ntx,
                f"{stats.mean_reachable:.1f}",
                f"{stats.mean_delivery:.3f}",
                f"{stats.full_coverage_fraction:.2f}",
            ]
        )
    register_report(
        f"claim_c3_c5_ntx_coverage_{spec.name.lower()}",
        format_table(
            ["NTX", "mean reachable", "mean delivery", "full coverage"],
            rows,
            title=f"Claims C3+C5 — NTX coverage profile, {spec.name}",
        ),
    )
    return spec, profile


def test_operating_ntx_sufficient(benchmark, coverage_case):
    """C3: the S4 operating NTX reaches nearly everyone on average."""
    spec, profile = coverage_case
    operating_ntx = spec.extras["s4_sharing_ntx"]

    benchmark.pedantic(
        lambda: profile.at(operating_ntx).mean_delivery, rounds=1, iterations=1
    )

    stats = profile.at(operating_ntx)
    n = len(spec.topology)
    # "Enough to reach the necessary number of neighbours": mean delivery
    # is essentially complete well below the full-coverage NTX.
    assert stats.mean_delivery > 0.99
    assert stats.mean_reachable > 0.97 * (n - 1)


def test_full_coverage_needs_much_more(benchmark, coverage_case):
    """C3 (flip side): full n²-chain coverage costs far more NTX.

    The probe chain (one sub-slot per node) saturates early; the claim
    that matters for S3's provisioning is all-to-all delivery of the
    *n²-packet sharing chain* — more bits in flight, more tail risk —
    which we profile on the real chain here.
    """
    import random

    from repro.ct.coverage import arm_offsets
    from repro.ct.minicast import MiniCastRound
    from repro.ct.packet import ChainLayout
    from repro.ct.slots import RoundSchedule
    from repro.sim.seeds import stable_seed

    spec, _ = coverage_case
    operating_ntx = spec.extras["s4_sharing_ntx"]
    channel = ChannelModel(spec.channel)
    nodes = tuple(spec.topology.node_ids)
    layout = ChainLayout.sharing(nodes, nodes)
    links = LinkTable(
        spec.topology.positions, channel, 6 + layout.psdu_bytes
    )
    wave = arm_offsets(links, nodes[0])
    depth = network_depth(links)
    initial = {node: layout.source_mask(node) for node in nodes}
    full = layout.full_mask()
    iterations = max(8, bench_iterations() // 2)

    def full_fraction(ntx: int) -> float:
        schedule = RoundSchedule.plan(
            chain_length=len(layout),
            psdu_bytes=layout.psdu_bytes,
            ntx=ntx,
            depth_hint=depth,
            timings=NRF52840_154,
        )
        round_ = MiniCastRound(links, schedule)
        hits = 0
        for iteration in range(iterations):
            rng = random.Random(stable_seed("n2cov", spec.name, ntx, iteration))
            result = round_.run(
                rng,
                initial_knowledge=initial,
                initiators=[nodes[0]],
                arm_schedule=wave,
            )
            if all(result.knowledge[n] & full == full for n in nodes):
                hits += 1
        return hits / iterations

    at_operating = benchmark.pedantic(
        lambda: full_fraction(operating_ntx), rounds=1, iterations=1
    )
    at_provisioned = full_fraction(spec.full_coverage_ntx)

    # At S4's operating NTX the n²-chain does NOT reliably reach everyone —
    # that is precisely why the naive variant must over-provision.
    assert at_operating < 0.95
    # At the naive provisioning it does.
    assert at_provisioned >= 0.9


def test_coverage_nonlinearity(benchmark, coverage_case):
    """C5: concave reach curve — early NTX buys much more than late NTX."""
    spec, profile = coverage_case
    curve = dict(profile.reach_curve())
    benchmark.pedantic(lambda: curve, rounds=1, iterations=1)

    n = len(spec.topology)
    # First three NTX reach > 85% of the network...
    assert curve[3] > 0.85 * (n - 1)
    # ...while the remaining tail (to truly full coverage) takes 3-4x
    # longer: the marginal gain of the first NTX step dwarfs the last's.
    first_gain = curve[2] - curve[1]
    last_gain = curve[12] - curve[10]
    assert first_gain > 5 * max(last_gain, 0.01)
    # Monotone non-decreasing overall (within sampling noise).
    values = [curve[ntx] for ntx in sorted(curve)]
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 0.5
