"""Headline claims C1 + C2: complete-network speedups.

Paper: "S4 achieves private aggregation at least 6× faster and consuming
7× lesser radio-on time in FlockLab and 9× faster and consuming 10×
lesser radio-on time in DCube compared to S3."

Our simulated substrate reproduces the *direction and ordering* of those
factors at somewhat smaller magnitudes (see EXPERIMENTS.md for the
measured numbers and the deviation analysis); the assertions below pin
the reproduced shape:

* S4 wins both metrics on both testbeds by a wide margin (≥ 2.5×);
* D-Cube's latency gain exceeds FlockLab's (bigger, denser network);
* on each testbed the radio-on factor is at least on par with the
  latency factor (early radio-off compounds with the shorter schedule).
"""

from __future__ import annotations

from benchmarks.conftest import register_report
from repro.analysis.reporting import format_table


def test_claim_flocklab_speedup(benchmark, fig1_flocklab):
    """C1: complete-network factors on FlockLab."""
    full = fig1_flocklab.full_network_point

    benchmark.pedantic(lambda: full.latency_ratio, rounds=1, iterations=1)

    register_report(
        "claim_c1_flocklab",
        format_table(
            ["metric", "S3", "S4", "measured factor", "paper factor"],
            [
                [
                    "latency (ms)",
                    full.s3_latency_ms.mean,
                    full.s4_latency_ms.mean,
                    f"{full.latency_ratio:.1f}x",
                    ">= 6x",
                ],
                [
                    "radio-on (ms)",
                    full.s3_radio_ms.mean,
                    full.s4_radio_ms.mean,
                    f"{full.radio_ratio:.1f}x",
                    ">= 7x",
                ],
            ],
            title=f"Claim C1 — FlockLab complete network (n={full.num_nodes})",
        ),
    )

    assert full.latency_ratio > 2.5
    assert full.radio_ratio > 3.0
    assert full.radio_ratio > full.latency_ratio * 0.95


def test_claim_dcube_speedup(benchmark, fig1_dcube, fig1_flocklab):
    """C2: complete-network factors on D-Cube exceed FlockLab's."""
    full = fig1_dcube.full_network_point
    flocklab_full = fig1_flocklab.full_network_point

    benchmark.pedantic(lambda: full.latency_ratio, rounds=1, iterations=1)

    register_report(
        "claim_c2_dcube",
        format_table(
            ["metric", "S3", "S4", "measured factor", "paper factor"],
            [
                [
                    "latency (ms)",
                    full.s3_latency_ms.mean,
                    full.s4_latency_ms.mean,
                    f"{full.latency_ratio:.1f}x",
                    ">= 9x",
                ],
                [
                    "radio-on (ms)",
                    full.s3_radio_ms.mean,
                    full.s4_radio_ms.mean,
                    f"{full.radio_ratio:.1f}x",
                    ">= 10x",
                ],
            ],
            title=f"Claim C2 — DCube complete network (n={full.num_nodes})",
        ),
    )

    assert full.latency_ratio > 3.0
    assert full.radio_ratio > 3.5
    # The paper's ordering: the bigger, denser testbed shows the bigger
    # latency gain (9x vs 6x there; proportionally here).
    assert full.latency_ratio > flocklab_full.latency_ratio
