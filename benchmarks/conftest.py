"""Shared infrastructure for the benchmark suite.

Each benchmark file regenerates one table/figure/claim from the paper
(see the experiment index in DESIGN.md).  Expensive campaigns are
computed once per session in fixtures and shared between the figure and
claim benchmarks; every paper-style table is registered here and printed
in the terminal summary as well as written to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_ITERATIONS`` — simulation rounds per data point
  (default 12; the paper used 2000 hardware rounds per point).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.experiments import run_figure1
from repro.analysis.reporting import format_figure1_table
from repro.core.config import CryptoMode
from repro.topology.testbeds import dcube, flocklab

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: name → rendered table, summary-printed at the end of the run.
_REPORTS: dict[str, str] = {}


def bench_iterations() -> int:
    """Simulation rounds per data point (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_ITERATIONS", "12"))


def register_report(name: str, text: str) -> None:
    """Record a paper-style table for the terminal summary and disk."""
    _REPORTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def fig1_flocklab():
    """The Fig. 1(a)+(b) campaign, computed once per session."""
    result = run_figure1(
        flocklab(),
        iterations=bench_iterations(),
        seed=101,
        crypto_mode=CryptoMode.STUB,
    )
    register_report("fig1_flocklab", format_figure1_table(result))
    return result


@pytest.fixture(scope="session")
def fig1_dcube():
    """The Fig. 1(c)+(d) campaign, computed once per session."""
    result = run_figure1(
        dcube(),
        iterations=bench_iterations(),
        seed=202,
        crypto_mode=CryptoMode.STUB,
    )
    register_report("fig1_dcube", format_figure1_table(result))
    return result


def pytest_terminal_summary(terminalreporter):
    """Print every registered paper-style table after the run."""
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for name in sorted(_REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(_REPORTS[name])
