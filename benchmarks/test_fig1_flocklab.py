"""Fig. 1(a) + 1(b): S3 vs S4 on FlockLab (26-node testbed).

Paper: latency and radio-on time vs number of nodes (3, 6, 10, 24), both
in ms on a log scale, S4 below S3 everywhere with the gap widening as
the network grows.
"""

from __future__ import annotations

from repro.analysis.experiments import build_engines, round_secrets, subnetwork_spec
from repro.core.config import CryptoMode
from repro.topology.testbeds import flocklab


def test_fig1a_latency(benchmark, fig1_flocklab):
    """Latency curve: S4 faster at every size, gap grows with n."""
    result = fig1_flocklab

    # Wall-clock benchmark: one full S3+S4 round at the largest size.
    spec = subnetwork_spec(flocklab(), 24)
    s3, s4 = build_engines(spec, crypto_mode=CryptoMode.STUB)
    secrets = round_secrets(spec.topology.node_ids, 0)
    s4.bootstrap_for(sorted(secrets))  # bootstrap outside the timed region

    def one_round_each():
        s3.run(secrets, seed=9)
        s4.run(secrets, seed=9)

    benchmark.pedantic(one_round_each, rounds=3, iterations=1)

    # Shape assertions against the paper.
    for point in result.points:
        assert point.s4_latency_ms.mean < point.s3_latency_ms.mean, (
            f"S4 must be faster at n={point.num_nodes}"
        )
    # Latency grows with network size for both variants (log-scale rise).
    s3_means = [p.s3_latency_ms.mean for p in result.points]
    s4_means = [p.s4_latency_ms.mean for p in result.points]
    assert s3_means == sorted(s3_means)
    assert s4_means == sorted(s4_means)
    # The gap widens toward the full network.
    assert result.points[-1].latency_ratio > result.points[0].latency_ratio


def test_fig1b_radio_on(benchmark, fig1_flocklab):
    """Radio-on curve: S4 leaner at every size."""
    result = fig1_flocklab

    spec = subnetwork_spec(flocklab(), 10)
    s3, s4 = build_engines(spec, crypto_mode=CryptoMode.STUB)
    secrets = round_secrets(spec.topology.node_ids, 0)
    s4.bootstrap_for(sorted(secrets))

    def one_round_each():
        s3.run(secrets, seed=11)
        s4.run(secrets, seed=11)

    benchmark.pedantic(one_round_each, rounds=3, iterations=1)

    for point in result.points:
        assert point.s4_radio_ms.mean < point.s3_radio_ms.mean, (
            f"S4 must use less radio-on time at n={point.num_nodes}"
        )
    # Radio-on grows with network size for both variants.
    s3_means = [p.s3_radio_ms.mean for p in result.points]
    assert s3_means == sorted(s3_means)
    # S3's radio-on time ≈ its full schedule (naive always-on listening).
    full = result.full_network_point
    assert full.s3_radio_ms.mean >= full.s3_latency_ms.mean * 0.95


def test_fig1_flocklab_reliability(benchmark, fig1_flocklab):
    """Both variants must actually aggregate (the paper's implicit bar)."""
    benchmark.pedantic(lambda: fig1_flocklab, rounds=1, iterations=1)
    for point in fig1_flocklab.points:
        assert point.s3_success > 0.9, f"S3 unreliable at n={point.num_nodes}"
        assert point.s4_success > 0.8, f"S4 unreliable at n={point.num_nodes}"
