"""Perf-trajectory gate: diff two BENCH_core.json files, fail on regression.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json NEW.json [--tolerance 0.2]

Every numeric entry whose key ends in ``speedup`` (anywhere in the JSON
tree) is a tracked speedup.  The check fails — exit code 1 — when any
tracked speedup present in *both* files drops by more than ``tolerance``
(default 20%) relative to the baseline.  New keys are informational;
removed keys are reported as failures (a silently dropped metric is how
perf trajectories rot).

Machine awareness: the ``campaign_parallel`` subtree scales with core
count, so it is only compared when both files report the same
``cpu_count``.  Everything else is a same-machine ratio (fast path vs
reference, warm vs steady) and travels across machines well enough to
gate on.

Besides the pairwise diff, the gate enforces the *absolute* floors the
NEW file carries in its ``targets`` block (``drbg_bulk_speedup_min``,
``figure1_*_steady_speedup_min``, ...), each relaxed by the same
tolerance so shared-runner jitter cannot flake a healthy build.  All
enforced quantities are same-machine ratios.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def tracked_speedups(tree, prefix: str = "") -> dict[str, float]:
    """Flatten ``{dotted.path: value}`` for every *speedup-suffixed key."""
    found: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                found.update(tracked_speedups(value, path))
            elif isinstance(value, (int, float)) and str(key).endswith("speedup"):
                found[path] = float(value)
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            found.update(tracked_speedups(value, f"{prefix}[{index}]"))
    return found


def target_failures(new: dict, tolerance: float) -> list[str]:
    """Check the NEW file's ``targets`` floors (tolerance-relaxed).

    Targets whose tier is absent are skipped (older files), as is the
    core-count-dependent parallel target on machines below its minimum.
    """
    targets = new.get("targets", {})
    failures: list[str] = []

    def check_min(label: str, value, floor):
        relaxed = floor * (1.0 - tolerance)
        status = "ok" if value >= relaxed else f"BELOW TARGET (floor {floor}x)"
        print(f"  target {label}: {value}x >= {floor}x  {status}")
        if value < relaxed:
            failures.append(f"{label}: {value}x < {floor}x target")

    floor = targets.get("figure1_stub_steady_speedup_min")
    if floor is not None and "figure1_stub" in new:
        check_min("figure1_stub.steady_speedup", new["figure1_stub"]["steady_speedup"], floor)
    floor = targets.get("figure1_real_steady_speedup_min")
    if floor is not None and "figure1_real" in new:
        check_min("figure1_real.steady_speedup", new["figure1_real"]["steady_speedup"], floor)
    floor = targets.get("sharded_campaign_speedup_min")
    if floor is not None and "sharded_campaign" in new:
        check_min(
            "sharded_campaign.sharded_speedup",
            new["sharded_campaign"]["sharded_speedup"],
            floor,
        )
    floor = targets.get("drbg_bulk_speedup_min")
    if floor is not None and "drbg_bulk" in new:
        check_min("drbg_bulk.bulk_speedup", new["drbg_bulk"]["bulk_speedup"], floor)
    floor = targets.get("minicast_mask_sampler_speedup_min")
    if floor is not None and "mask_sampler_speedup" in new.get("minicast_vector", {}):
        check_min(
            "minicast_vector.mask_sampler_speedup",
            new["minicast_vector"]["mask_sampler_speedup"],
            floor,
        )
    floor = targets.get("campaign_parallel_speedup_min")
    min_cores = targets.get("campaign_parallel_min_cores", 4)
    cores = new.get("cpu_count") or 1
    if floor is not None and "campaign_parallel" in new:
        if cores >= min_cores:
            check_min(
                "campaign_parallel.parallel_speedup",
                new["campaign_parallel"]["parallel_speedup"],
                floor,
            )
        else:
            print(
                f"  target campaign_parallel: skipped ({cores} < "
                f"{min_cores} cores)"
            )
    ceiling = targets.get("cold_start_warm_vs_steady_max")
    if ceiling is not None and "cold_start" in new:
        for mode in ("stub", "real"):
            value = new["cold_start"].get(mode, {}).get("warm_vs_steady")
            if value is None:
                continue
            relaxed = ceiling * (1.0 + tolerance)
            status = "ok" if value <= relaxed else f"ABOVE TARGET (cap {ceiling}x)"
            print(f"  target cold_start.{mode}.warm_vs_steady: {value}x <= {ceiling}x  {status}")
            if value > relaxed:
                failures.append(
                    f"cold_start.{mode}.warm_vs_steady: {value}x > {ceiling}x target"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop per tracked speedup (default 0.2)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    new = json.loads(args.new.read_text())

    base_speedups = tracked_speedups(baseline)
    new_speedups = tracked_speedups(new)

    skip_parallel = baseline.get("cpu_count") != new.get("cpu_count")
    if skip_parallel:
        print(
            f"note: cpu_count differs (baseline {baseline.get('cpu_count')}, "
            f"new {new.get('cpu_count')}); skipping campaign_parallel comparisons"
        )

    failures: list[str] = []
    for path, base_value in sorted(base_speedups.items()):
        if skip_parallel and path.startswith("campaign_parallel"):
            continue
        if path not in new_speedups:
            failures.append(f"{path}: tracked speedup disappeared (was {base_value}x)")
            continue
        new_value = new_speedups[path]
        floor = base_value * (1.0 - args.tolerance)
        status = "ok"
        if new_value < floor:
            status = f"REGRESSION (floor {floor:.2f}x)"
            failures.append(
                f"{path}: {base_value}x -> {new_value}x "
                f"(> {args.tolerance:.0%} drop)"
            )
        print(f"  {path}: {base_value}x -> {new_value}x  {status}")
    for path in sorted(set(new_speedups) - set(base_speedups)):
        print(f"  {path}: (new) {new_speedups[path]}x")

    target_misses = target_failures(new, args.tolerance)

    if failures or target_misses:
        if failures:
            print(
                f"\nFAIL: {len(failures)} tracked speedup(s) regressed > "
                f"{args.tolerance:.0%}:"
            )
            for failure in failures:
                print(f"  - {failure}")
        if target_misses:
            print(
                f"\nFAIL: {len(target_misses)} absolute target floor(s) "
                "missed (tolerance-relaxed):"
            )
            for miss in target_misses:
                print(f"  - {miss}")
        return 1
    print(
        f"\nOK: no tracked speedup regressed more than {args.tolerance:.0%} "
        "and every absolute target floor held"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
