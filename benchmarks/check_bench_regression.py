"""Perf-trajectory gate: diff two BENCH_core.json files, fail on regression.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json NEW.json [--tolerance 0.2]

Every numeric entry whose key ends in ``speedup`` (anywhere in the JSON
tree) is a tracked speedup.  The check fails — exit code 1 — when any
tracked speedup present in *both* files drops by more than ``tolerance``
(default 20%) relative to the baseline.  New keys are informational;
removed keys are reported as failures (a silently dropped metric is how
perf trajectories rot).

Machine awareness: the ``campaign_parallel`` subtree scales with core
count, so it is only compared when both files report the same
``cpu_count``.  Everything else is a same-machine ratio (fast path vs
reference, warm vs steady) and travels across machines well enough to
gate on.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def tracked_speedups(tree, prefix: str = "") -> dict[str, float]:
    """Flatten ``{dotted.path: value}`` for every *speedup-suffixed key."""
    found: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                found.update(tracked_speedups(value, path))
            elif isinstance(value, (int, float)) and str(key).endswith("speedup"):
                found[path] = float(value)
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            found.update(tracked_speedups(value, f"{prefix}[{index}]"))
    return found


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop per tracked speedup (default 0.2)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    new = json.loads(args.new.read_text())

    base_speedups = tracked_speedups(baseline)
    new_speedups = tracked_speedups(new)

    skip_parallel = baseline.get("cpu_count") != new.get("cpu_count")
    if skip_parallel:
        print(
            f"note: cpu_count differs (baseline {baseline.get('cpu_count')}, "
            f"new {new.get('cpu_count')}); skipping campaign_parallel comparisons"
        )

    failures: list[str] = []
    for path, base_value in sorted(base_speedups.items()):
        if skip_parallel and path.startswith("campaign_parallel"):
            continue
        if path not in new_speedups:
            failures.append(f"{path}: tracked speedup disappeared (was {base_value}x)")
            continue
        new_value = new_speedups[path]
        floor = base_value * (1.0 - args.tolerance)
        status = "ok"
        if new_value < floor:
            status = f"REGRESSION (floor {floor:.2f}x)"
            failures.append(
                f"{path}: {base_value}x -> {new_value}x "
                f"(> {args.tolerance:.0%} drop)"
            )
        print(f"  {path}: {base_value}x -> {new_value}x  {status}")
    for path in sorted(set(new_speedups) - set(base_speedups)):
        print(f"  {path}: (new) {new_speedups[path]}x")

    if failures:
        print(f"\nFAIL: {len(failures)} tracked speedup(s) regressed > "
              f"{args.tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: no tracked speedup regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
