"""Global switch between the reference and fast compute paths.

The library keeps two implementations of every hot primitive:

* the **reference path** — the readable, from-first-principles code the
  reproduction was built on (byte-oriented AES, per-block CTR DRBG,
  ``FieldElement``-based interpolation, the straight-line MiniCast loop);
* the **fast path** — precomputed-table / raw-integer / batched kernels
  that produce *bit-identical* results (enforced by the property tests in
  ``tests/*/test_*fastpath*.py``) at a fraction of the cost.

The fast path is on by default.  It can be disabled globally — for
benchmarking against the reference, or for debugging a suspected fast-path
divergence — via the ``REPRO_FASTPATH=0`` environment variable or the
:func:`disabled` context manager.

Components consult the flag at *construction* time (cipher objects, DRBG
instances, MiniCast rounds) or at cheap call-time branch points, so
toggling the flag affects objects built afterwards, not objects already
in flight.  The flag itself is a plain module global guarded by the GIL;
the context managers are not thread-safe against concurrent toggling (the
microbenchmark is single-threaded) but *reading* the flag from worker
threads is always safe.

**Spawn-worker contract.**  Campaign workers are started with the
``spawn`` method, so nothing in this module (or in the process-wide
commissioning pools) may rely on forked state: every global here is
re-initialised from the environment at import, and the pools start
empty in each worker.  A parent that changed the flag at runtime (e.g.
via :func:`forced`) ships its effective state explicitly — spawn workers
inherit the parent's *environment*, not its module globals — via
:class:`repro.analysis.campaign.WorkerState`, captured before the pool
starts and replayed by the pool initializer.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

_FALSE_VALUES = {"0", "false", "off", "no"}

_enabled: bool = os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in _FALSE_VALUES

#: The numpy-vectorized backend (PR 4) layered *on top of* the fast path:
#: lane-kernel DRBG refills, batched dealer-fork keystream, and the
#: array-formulated MiniCast slot loop.  ``REPRO_VECTOR=0`` pins the
#: PR 1 scalar fast loop (bit-exact with the no-numpy fallback) while
#: leaving the rest of the fast path on.  The flag is advisory when
#: numpy is absent: every consumer also guards on its module's
#: ``HAVE_NUMPY`` and degrades to the scalar path.
_vector: bool = os.environ.get("REPRO_VECTOR", "1").strip().lower() not in _FALSE_VALUES


def enabled() -> bool:
    """Whether the fast compute path is currently selected."""
    return _enabled


def vector_enabled() -> bool:
    """Whether the numpy-vectorized backend is currently selected.

    Effective only where the fast path is on *and* numpy is importable;
    callers must still guard on their kernel module's ``HAVE_NUMPY``.
    """
    return _vector


def set_vector_enabled(flag: bool) -> bool:
    """Set the vector-backend flag; returns the previous value."""
    global _vector
    previous = _vector
    _vector = bool(flag)
    return previous


@contextlib.contextmanager
def forced_vector(flag: bool) -> Iterator[None]:
    """Run a block with the vector-backend flag pinned to ``flag``."""
    previous = set_vector_enabled(flag)
    try:
        yield
    finally:
        set_vector_enabled(previous)


def set_enabled(flag: bool) -> bool:
    """Set the fast-path flag; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextlib.contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Run a block with the fast-path flag pinned to ``flag``."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


def disabled() -> contextlib.AbstractContextManager[None]:
    """Run a block on the reference path (seed-equivalent behaviour)."""
    return forced(False)


# -- multiprocessing support ---------------------------------------------------


def clear_process_caches() -> None:
    """Empty every process-wide commissioning pool.

    Spawn workers never need this (their pools start empty by
    construction); it exists for tests that must force a rebuild — e.g.
    proving that a disk-cache hit is bit-identical to a fresh bootstrap —
    and as the documented reset point if a long-lived service wants to
    drop commissioning state.  Imports live inside the function to keep
    this module dependency-free at import time.
    """
    from repro.core import protocol
    from repro.crypto import prng
    from repro.field import lagrange
    from repro.phy import link

    with link._TABLE_CACHE_LOCK:
        link._TABLE_CACHE.clear()
    protocol._CODEC_POOL.clear()
    protocol._LAYOUT_POOL.clear()
    protocol._DEAL_POOL.clear()
    prng._CIPHER_POOL.clear()
    lagrange.SHARED_WEIGHTS.clear()
