"""Command-line interface: ``python -m repro.cli <command>``.

Three generic commands front the whole experiment surface — the CLI is
*generated* from the scenario registry (:mod:`repro.scenarios`), so a
newly registered scenario gets its command, flags, table/CSV output and
spec-file support without touching this module:

* ``repro run <scenario> [--spec file.json | flags]`` — run any
  registered scenario.  Flags are generated from the scenario's spec
  dataclass fields; ``--spec`` loads a JSON spec file, with explicit
  flags overriding its fields.
* ``repro scenarios`` — list every registered scenario.
* ``repro describe <scenario>`` — show a scenario's spec fields,
  defaults, and an example spec file.

The nine pre-registry commands (``repro figure1``, ``repro coverage``,
...) remain as top-level aliases of ``repro run <name>``.

Exit codes: ``0`` success, ``1`` runtime failure (a round that never
completed, a sharded mismatch), ``2`` spec/validation errors (unknown
scenario, malformed spec file, out-of-range field) — argparse usage
errors also exit 2, via :class:`SystemExit`.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import pathlib
import sys
import types
import typing

from repro.analysis.reporting import to_csv
from repro.errors import ReproError, SpecError
from repro.scenarios import Session, registry
from repro.scenarios.spec import spec_fields

#: Testbed names the generated ``--testbed`` flag accepts (argparse
#: rejects others with a usage error, like the old hand-rolled commands).
TESTBED_CHOICES = ("flocklab", "dcube")


# -- generated spec flags ------------------------------------------------------


def _int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.replace(",", " ").split()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise argparse.ArgumentTypeError(f"expected true/false, got {text!r}")


def _json_object(text: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise argparse.ArgumentTypeError(
            f"expected a JSON object, got {text!r} ({error})"
        ) from None
    if not isinstance(data, dict):
        raise argparse.ArgumentTypeError(
            f"expected a JSON object, got {text!r}"
        )
    return data


def _is_value_object(hint) -> bool:
    """Nested spec value objects (FaultPlan-style: dataclass + dict codec)."""
    return (
        isinstance(hint, type)
        and dataclasses.is_dataclass(hint)
        and hasattr(hint, "from_dict")
    )


def _strip_optional(hint) -> object:
    if typing.get_origin(hint) in (typing.Union, types.UnionType):
        inner = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(inner) == 1:
            return inner[0]
    return hint


def _default_repr(value) -> str:
    if isinstance(value, enum.Enum):
        return value.name.lower()
    if isinstance(value, tuple):
        return ",".join(str(item) for item in value)
    if dataclasses.is_dataclass(value) and hasattr(value, "to_dict"):
        return json.dumps(value.to_dict())
    return str(value)


def _add_spec_arguments(parser: argparse.ArgumentParser, spec_type: type) -> None:
    """One generated flag per spec dataclass field."""
    fields = spec_fields(spec_type)
    field_names = {field.name for field in fields}
    names = []
    for field in fields:
        flags = ["--" + field.name.replace("_", "-")]
        if field.name == "rounds" and "iterations" not in field_names:
            # The pre-registry CLI spelled every per-point repeat count
            # --iterations; keep that spelling routable.
            flags.append("--iterations")
        kwargs: dict = {
            "default": None,
            "help": f"spec field (default: {_default_repr(field.default)})",
        }
        inner = _strip_optional(field.hint)
        if field.name == "testbed":
            kwargs["choices"] = TESTBED_CHOICES
        elif isinstance(inner, type) and issubclass(inner, enum.Enum):
            kwargs["choices"] = [member.name.lower() for member in inner]
        elif typing.get_origin(inner) is tuple:
            kwargs.update(type=_int_list, metavar="N[,N...]")
        elif _is_value_object(inner):
            kwargs.update(type=_json_object, metavar="JSON")
        elif inner is bool:
            kwargs.update(type=_parse_bool, metavar="{true,false}")
        elif inner is int:
            kwargs.update(type=int, metavar="N")
        elif inner is float:
            kwargs.update(type=float, metavar="X")
        parser.add_argument(*flags, dest=field.name, **kwargs)
        names.append(field.name)
    parser.set_defaults(spec_field_names=names)


def _add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """The cross-cutting flags every run-style command shares."""
    parser.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help="JSON spec file for this scenario; explicit flags override "
        "its fields",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan campaign work units out over N worker processes "
        "(default: $REPRO_WORKERS or serial; results are bit-identical "
        "either way)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persisted commissioning cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro; disable with "
        "REPRO_DISK_CACHE=0)",
    )
    parser.add_argument(
        "--metrics",
        choices=["full", "summary"],
        default="full",
        help="per-round metrics payload workers return: dense per-node "
        "('full') or streaming scalars ('summary'; identical results, "
        "flat IPC)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the uniform JSON result record",
    )
    parser.add_argument(
        "--real-crypto",
        action="store_true",
        help="run the full AES data path instead of the stub codec "
        "(shorthand for --crypto-mode real)",
    )


# -- command handlers ----------------------------------------------------------


def _load_spec_file(path: str, scenario_name: str) -> dict:
    file_path = pathlib.Path(path)
    if not file_path.exists():
        raise SpecError(f"no spec file at {file_path}")
    try:
        data = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise SpecError(f"corrupt spec file {file_path}: {error}") from None
    if not isinstance(data, dict):
        raise SpecError(f"spec file {file_path} must hold a JSON object")
    declared = data.get("scenario")
    if declared is not None and declared != scenario_name:
        raise SpecError(
            f"spec file {file_path} declares scenario {declared!r}, "
            f"not {scenario_name!r}"
        )
    return {key: value for key, value in data.items() if key != "scenario"}


def _cmd_run(args) -> int:
    entry = registry.get(args.scenario_name)
    data: dict = {}
    if args.spec:
        data = _load_spec_file(args.spec, entry.name)
    for name in args.spec_field_names:
        value = getattr(args, name)
        if value is not None:
            data[name] = value
    if args.real_crypto and "crypto_mode" in args.spec_field_names:
        data["crypto_mode"] = "real"
    spec = entry.spec_type.from_dict(data)
    with Session(
        workers=args.workers, metrics=args.metrics, cache_dir=args.cache_dir
    ) as session:
        result = session.run(spec)
    if args.save:
        result.save(args.save)
    if args.csv and entry.rows is not None:
        print(to_csv([dict(row) for row in entry.rows(result.payload)]), end="")
    elif entry.table is not None:
        print(entry.table(result))
    else:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0 if entry.check(result.payload) else 1


def _cmd_scenarios(args) -> int:
    entries = registry.all_scenarios()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": entry.name,
                        "description": entry.description,
                        "spec_type": entry.spec_type.__name__,
                        "smoke": dict(entry.smoke),
                    }
                    for entry in entries
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(entry.name) for entry in entries)
    print(f"{len(entries)} registered scenarios (run with: repro run <name>):\n")
    for entry in entries:
        print(f"  {entry.name.ljust(width)}  {entry.description}")
    return 0


def _cmd_describe(args) -> int:
    entry = registry.get(args.scenario_name)
    print(f"scenario: {entry.name}")
    print(f"  {entry.description}")
    print(f"spec type: {entry.spec_type.__name__}\n")
    print("fields:")
    for field in spec_fields(entry.spec_type):
        inner = _strip_optional(field.hint)
        if isinstance(inner, type) and issubclass(inner, enum.Enum):
            kind = "|".join(member.name.lower() for member in inner)
        elif typing.get_origin(inner) is tuple:
            kind = "list of int"
        else:
            kind = getattr(inner, "__name__", str(inner))
        if inner is not field.hint:
            kind += " (optional)"
        print(
            f"  {field.name.ljust(22)} {kind.ljust(16)} "
            f"default: {_default_repr(field.default)}"
        )
    example = {"scenario": entry.name, **entry.spec_type().to_dict()}
    print("\nexample spec file (repro run "
          f"{entry.name} --spec file.json):")
    print(json.dumps(example, indent=2))
    return 0


# -- parser assembly -----------------------------------------------------------


def _add_run_parser(container, entry) -> None:
    sub = container.add_parser(entry.name, help=entry.description)
    _add_spec_arguments(sub, entry.spec_type)
    _add_session_arguments(sub)
    sub.set_defaults(handler=_cmd_run, scenario_name=entry.name)


def build_parser() -> argparse.ArgumentParser:
    """The full CLI, generated from the scenario registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Party Computation in IoT for "
        "Privacy-Preservation' (Goyal & Saha, ICDCS 2022) — unified "
        "scenario runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run any registered scenario"
    )
    run_subparsers = run_parser.add_subparsers(
        dest="scenario", required=True, metavar="SCENARIO"
    )
    for entry in registry.all_scenarios():
        _add_run_parser(run_subparsers, entry)

    # Pre-registry command names stay routable at the top level.
    for entry in registry.all_scenarios():
        if entry.legacy_alias:
            _add_run_parser(subparsers, entry)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list registered scenarios"
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    describe_parser = subparsers.add_parser(
        "describe", help="show a scenario's spec fields and defaults"
    )
    describe_parser.add_argument("scenario_name", metavar="SCENARIO")
    describe_parser.set_defaults(handler=_cmd_describe)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Spec/validation problems exit 2 with a one-line message; runtime
    failures exit 1.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
