"""Command-line interface: ``python -m repro.cli <command>``.

Three generic commands front the whole experiment surface — the CLI is
*generated* from the scenario registry (:mod:`repro.scenarios`), so a
newly registered scenario gets its command, flags, table/CSV output and
spec-file support without touching this module:

* ``repro run <scenario> [--spec file.json | flags]`` — run any
  registered scenario.  Flags are generated from the scenario's spec
  dataclass fields; ``--spec`` loads a JSON spec file, with explicit
  flags overriding its fields.
* ``repro scenarios`` — list every registered scenario.
* ``repro describe <scenario>`` — show a scenario's spec fields,
  defaults, and an example spec file.

Two service-era commands ride alongside:

* ``repro compare a.json b.json`` — determinism check over two saved
  result records: same spec echo ⇒ payloads must match bit-for-bit
  once wall-clock noise is stripped.  Exit 2 on a spec mismatch (the
  records are not comparable), 1 on payload divergence, 0 on a match.
* ``repro query <service-dir>`` — query a service directory's result
  store (read-only, safe against a live daemon): every journaled
  window close, one window's contributions, or one device's exact
  bill.

The nine pre-registry commands (``repro figure1``, ``repro coverage``,
...) remain as top-level aliases of ``repro run <name>``.

Exit codes: ``0`` success, ``1`` runtime failure (a round that never
completed, a sharded mismatch), ``2`` spec/validation errors (unknown
scenario, malformed spec file, out-of-range field) — argparse usage
errors also exit 2, via :class:`SystemExit`.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import pathlib
import sys
import types
import typing

from repro.analysis.reporting import to_csv
from repro.errors import ReproError, SpecError
from repro.scenarios import Session, registry
from repro.scenarios.spec import spec_fields

#: Testbed names the generated ``--testbed`` flag accepts (argparse
#: rejects others with a usage error, like the old hand-rolled commands).
TESTBED_CHOICES = ("flocklab", "dcube")


# -- generated spec flags ------------------------------------------------------


def _int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.replace(",", " ").split()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise argparse.ArgumentTypeError(f"expected true/false, got {text!r}")


def _json_object(text: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise argparse.ArgumentTypeError(
            f"expected a JSON object, got {text!r} ({error})"
        ) from None
    if not isinstance(data, dict):
        raise argparse.ArgumentTypeError(
            f"expected a JSON object, got {text!r}"
        )
    return data


def _is_value_object(hint) -> bool:
    """Nested spec value objects (FaultPlan-style: dataclass + dict codec)."""
    return (
        isinstance(hint, type)
        and dataclasses.is_dataclass(hint)
        and hasattr(hint, "from_dict")
    )


def _strip_optional(hint) -> object:
    if typing.get_origin(hint) in (typing.Union, types.UnionType):
        inner = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(inner) == 1:
            return inner[0]
    return hint


def _default_repr(value) -> str:
    if isinstance(value, enum.Enum):
        return value.name.lower()
    if isinstance(value, tuple):
        return ",".join(str(item) for item in value)
    if dataclasses.is_dataclass(value) and hasattr(value, "to_dict"):
        return json.dumps(value.to_dict())
    return str(value)


def _add_spec_arguments(parser: argparse.ArgumentParser, spec_type: type) -> None:
    """One generated flag per spec dataclass field."""
    fields = spec_fields(spec_type)
    field_names = {field.name for field in fields}
    names = []
    for field in fields:
        flags = ["--" + field.name.replace("_", "-")]
        if field.name == "rounds" and "iterations" not in field_names:
            # The pre-registry CLI spelled every per-point repeat count
            # --iterations; keep that spelling routable.
            flags.append("--iterations")
        kwargs: dict = {
            "default": None,
            "help": f"spec field (default: {_default_repr(field.default)})",
        }
        inner = _strip_optional(field.hint)
        if field.name == "testbed":
            kwargs["choices"] = TESTBED_CHOICES
        elif isinstance(inner, type) and issubclass(inner, enum.Enum):
            kwargs["choices"] = [member.name.lower() for member in inner]
        elif typing.get_origin(inner) is tuple:
            kwargs.update(type=_int_list, metavar="N[,N...]")
        elif _is_value_object(inner):
            kwargs.update(type=_json_object, metavar="JSON")
        elif inner is bool:
            kwargs.update(type=_parse_bool, metavar="{true,false}")
        elif inner is int:
            kwargs.update(type=int, metavar="N")
        elif inner is float:
            kwargs.update(type=float, metavar="X")
        parser.add_argument(*flags, dest=field.name, **kwargs)
        names.append(field.name)
    parser.set_defaults(spec_field_names=names)


def _add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """The cross-cutting flags every run-style command shares."""
    parser.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help="JSON spec file for this scenario; explicit flags override "
        "its fields",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan campaign work units out over N worker processes "
        "(default: $REPRO_WORKERS or serial; results are bit-identical "
        "either way)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persisted commissioning cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro; disable with "
        "REPRO_DISK_CACHE=0)",
    )
    parser.add_argument(
        "--metrics",
        choices=["full", "summary"],
        default="full",
        help="per-round metrics payload workers return: dense per-node "
        "('full') or streaming scalars ('summary'; identical results, "
        "flat IPC)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the uniform JSON result record",
    )
    parser.add_argument(
        "--real-crypto",
        action="store_true",
        help="run the full AES data path instead of the stub codec "
        "(shorthand for --crypto-mode real)",
    )


# -- command handlers ----------------------------------------------------------


def _load_spec_file(path: str, scenario_name: str) -> dict:
    file_path = pathlib.Path(path)
    if not file_path.exists():
        raise SpecError(f"no spec file at {file_path}")
    try:
        data = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise SpecError(f"corrupt spec file {file_path}: {error}") from None
    if not isinstance(data, dict):
        raise SpecError(f"spec file {file_path} must hold a JSON object")
    declared = data.get("scenario")
    if declared is not None and declared != scenario_name:
        raise SpecError(
            f"spec file {file_path} declares scenario {declared!r}, "
            f"not {scenario_name!r}"
        )
    return {key: value for key, value in data.items() if key != "scenario"}


def _cmd_run(args) -> int:
    entry = registry.get(args.scenario_name)
    data: dict = {}
    if args.spec:
        data = _load_spec_file(args.spec, entry.name)
    for name in args.spec_field_names:
        value = getattr(args, name)
        if value is not None:
            data[name] = value
    if args.real_crypto and "crypto_mode" in args.spec_field_names:
        data["crypto_mode"] = "real"
    spec = entry.spec_type.from_dict(data)
    with Session(
        workers=args.workers, metrics=args.metrics, cache_dir=args.cache_dir
    ) as session:
        result = session.run(spec)
    if args.save:
        result.save(args.save)
    if args.csv and entry.rows is not None:
        print(to_csv([dict(row) for row in entry.rows(result.payload)]), end="")
    elif entry.table is not None:
        print(entry.table(result))
    else:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0 if entry.check(result.payload) else 1


#: Payload keys that carry wall-clock or scheduling noise, never results.
#: ``repro compare`` strips them (recursively, by key) before comparing —
#: two runs of one spec must agree on everything else bit for bit.
VOLATILE_KEYS = frozenset({
    "elapsed_s",
    "close_ms",
    "close_latency_us",
    "p99_close_ms",
    "shares_per_sec",
    "recovery_s",
    "recoveries",
    "attempts",
    "retried",
    "worker_retries",
    "journal_records",
    "replayed_records",
    # The heartbeat monitor may restart a shard more times than the plan
    # killed it (scheduling decides how many pings a crash swallows).
    "shard_restarts",
})


def _strip_volatile(value):
    if isinstance(value, dict):
        return {
            key: _strip_volatile(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [_strip_volatile(item) for item in value]
    return value


def _first_divergence(a, b, path="payload") -> str:
    """A human-sized pointer at the first place two payloads differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return f"{path}.{key}: only in the second record"
            if key not in b:
                return f"{path}.{key}: only in the first record"
            if a[key] != b[key]:
                return _first_divergence(a[key], b[key], f"{path}.{key}")
        return path
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path}: {len(a)} vs {len(b)} entries"
        for index, (left, right) in enumerate(zip(a, b)):
            if left != right:
                return _first_divergence(left, right, f"{path}[{index}]")
        return path
    return f"{path}: {a!r} vs {b!r}"


def _cmd_compare(args) -> int:
    from repro.analysis.io import load_record

    first = load_record(args.record_a)
    second = load_record(args.record_b)
    if first["spec"] != second["spec"]:
        print(
            "spec mismatch — the records describe different experiments:\n"
            f"  {_first_divergence(first['spec'], second['spec'], 'spec')}",
            file=sys.stderr,
        )
        return 2
    payload_a = _strip_volatile(first.get("payload"))
    payload_b = _strip_volatile(second.get("payload"))
    if payload_a != payload_b:
        print(
            f"payload divergence for scenario {first['scenario']!r} — same "
            "spec, different results:\n"
            f"  {_first_divergence(payload_a, payload_b)}",
            file=sys.stderr,
        )
        return 1
    backends = (
        first.get("backend", {}),
        second.get("backend", {}),
    )
    print(
        f"match: scenario {first['scenario']!r} payloads are identical "
        f"(volatile keys stripped); backends "
        f"workers={backends[0].get('workers')}/{backends[1].get('workers')}, "
        f"fastpath={backends[0].get('fastpath')}/{backends[1].get('fastpath')}"
    )
    return 0


def _cmd_query(args) -> int:
    from repro.service.client import STORE_NAME, query_store
    from repro.service.store import ResultStore
    from repro.service.wal import live_service_pid

    service_dir = pathlib.Path(args.service_dir)
    if not service_dir.is_dir():
        raise SpecError(f"no service directory at {service_dir}")
    store = ResultStore(service_dir / STORE_NAME, readonly=True)
    live_pid = live_service_pid(service_dir)
    if live_pid is None:
        store.ingest(service_dir)
    else:
        # A live service owns the journals; answer from the store's last
        # checkpoint rather than racing its writers.
        print(
            f"note: service is live (pid {live_pid}); answering from the "
            "last store checkpoint — totals may trail open windows",
            file=sys.stderr,
        )
    answer = query_store(store, device=args.device, window=args.window)
    if args.json:
        print(json.dumps(answer, indent=2, sort_keys=True))
        return 0
    if args.window is not None:
        if not answer["closed"]:
            print(f"window {args.window}: not closed (no journaled close)")
            return 0
        summary = answer["summary"]
        print(
            f"window {args.window}: total {summary['total']} Wh over "
            f"{summary['accepted']} share(s) from {summary['devices']} "
            f"device(s); exact={'yes' if summary['exact'] else 'NO'}, "
            f"recovered={'yes' if summary['recovered'] else 'no'}"
        )
        for contribution in answer["contributions"]:
            print(
                f"  device {contribution['device']:>6}  "
                f"seq {contribution['seq']:>4}  "
                f"value {contribution['value']}"
            )
        return 0
    if args.device is not None:
        print(
            f"device {answer['device']}: total {answer['total']} Wh over "
            f"{answer['windows']} window(s) through window "
            f"{answer['through_window']}"
        )
        return 0
    windows = answer["windows"]
    if not windows:
        print(f"{service_dir}: no journaled window closes")
        return 0
    print(f"{service_dir}: {len(windows)} closed window(s)")
    for summary in windows:
        print(
            f"  window {summary['window']:>4}  total {summary['total']:>12} Wh"
            f"  accepted {summary['accepted']:>6}"
            f"  exact={'yes' if summary['exact'] else 'NO'}"
            f"  recovered={'yes' if summary['recovered'] else 'no'}"
        )
    devices = answer["devices"]
    print(f"  billing extract: {len(devices)} device(s)")
    return 0


def _cmd_lint(args) -> int:
    # Lazy import: the analyzer (ast walking, baseline IO) is pure
    # overhead for every other command, and cli/lintkit share a layer
    # rank so a module-level import would trip the linter's own DAG.
    from repro.lintkit.runner import main as lint_main

    forwarded = ["--root", args.root]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.verbose:
        forwarded.append("--verbose")
    return lint_main(forwarded)


def _cmd_scenarios(args) -> int:
    entries = registry.all_scenarios()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": entry.name,
                        "description": entry.description,
                        "spec_type": entry.spec_type.__name__,
                        "smoke": dict(entry.smoke),
                    }
                    for entry in entries
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(entry.name) for entry in entries)
    print(f"{len(entries)} registered scenarios (run with: repro run <name>):\n")
    for entry in entries:
        print(f"  {entry.name.ljust(width)}  {entry.description}")
    return 0


def _cmd_describe(args) -> int:
    entry = registry.get(args.scenario_name)
    print(f"scenario: {entry.name}")
    print(f"  {entry.description}")
    print(f"spec type: {entry.spec_type.__name__}\n")
    print("fields:")
    for field in spec_fields(entry.spec_type):
        inner = _strip_optional(field.hint)
        if isinstance(inner, type) and issubclass(inner, enum.Enum):
            kind = "|".join(member.name.lower() for member in inner)
        elif typing.get_origin(inner) is tuple:
            kind = "list of int"
        else:
            kind = getattr(inner, "__name__", str(inner))
        if inner is not field.hint:
            kind += " (optional)"
        print(
            f"  {field.name.ljust(22)} {kind.ljust(16)} "
            f"default: {_default_repr(field.default)}"
        )
    example = {"scenario": entry.name, **entry.spec_type().to_dict()}
    print("\nexample spec file (repro run "
          f"{entry.name} --spec file.json):")
    print(json.dumps(example, indent=2))
    return 0


# -- parser assembly -----------------------------------------------------------


def _add_run_parser(container, entry) -> None:
    sub = container.add_parser(entry.name, help=entry.description)
    _add_spec_arguments(sub, entry.spec_type)
    _add_session_arguments(sub)
    sub.set_defaults(handler=_cmd_run, scenario_name=entry.name)


def build_parser() -> argparse.ArgumentParser:
    """The full CLI, generated from the scenario registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Party Computation in IoT for "
        "Privacy-Preservation' (Goyal & Saha, ICDCS 2022) — unified "
        "scenario runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run any registered scenario"
    )
    run_subparsers = run_parser.add_subparsers(
        dest="scenario", required=True, metavar="SCENARIO"
    )
    for entry in registry.all_scenarios():
        _add_run_parser(run_subparsers, entry)

    # Pre-registry command names stay routable at the top level.
    for entry in registry.all_scenarios():
        if entry.legacy_alias:
            _add_run_parser(subparsers, entry)

    compare_parser = subparsers.add_parser(
        "compare",
        help="compare two saved result records (determinism check)",
    )
    compare_parser.add_argument("record_a", metavar="A.json")
    compare_parser.add_argument("record_b", metavar="B.json")
    compare_parser.set_defaults(handler=_cmd_compare)

    query_parser = subparsers.add_parser(
        "query",
        help="query a service directory's result store (read-only)",
    )
    query_parser.add_argument("service_dir", metavar="SERVICE_DIR")
    query_group = query_parser.add_mutually_exclusive_group()
    query_group.add_argument(
        "--device", type=int, default=None, metavar="N",
        help="one device's exact billing total",
    )
    query_group.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="one window's close summary and contributions",
    )
    query_parser.add_argument(
        "--json", action="store_true", help="machine-readable answer"
    )
    query_parser.set_defaults(handler=_cmd_query)

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the source tree's machine-enforced invariants "
        "(layering, determinism, lock discipline, error taxonomy)",
    )
    lint_parser.add_argument(
        "--root", default=".",
        help="repo root containing src/repro (default: cwd)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    lint_parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined (suppressed) findings",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list registered scenarios"
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    describe_parser = subparsers.add_parser(
        "describe", help="show a scenario's spec fields and defaults"
    )
    describe_parser.add_argument("scenario_name", metavar="SCENARIO")
    describe_parser.set_defaults(handler=_cmd_describe)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Spec/validation problems exit 2 with a one-line message; runtime
    failures exit 1.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
