"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the experiment index in DESIGN.md:

* ``figure1``   — the Fig. 1 node-count sweep on one testbed.
* ``coverage``  — the NTX → coverage curve (§III non-linearity).
* ``degrees``   — S4 cost vs polynomial degree (claim C4).
* ``faults``    — collector-failure tolerance (ablation A1).
* ``ablation``  — which S4 optimization buys what (ablation A2).
* ``interference`` — robustness under D-Cube jamming levels (extension E1).
* ``lifetime``  — battery lifetime projection (extension E2).
* ``privacy``   — coalition experiment on a real-crypto round.
* ``sharded``   — scale-out: MPC cells + cross-cell aggregation round.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_degree_sweep,
    run_fault_tolerance,
    run_figure1,
    run_interference_sweep,
    run_lifetime_projection,
    run_ntx_coverage_curve,
    run_optimization_ablation,
)
from repro.analysis.reporting import format_figure1_table, format_table, to_csv
from repro.core.config import CryptoMode
from repro.topology.testbeds import testbed_by_name


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--testbed",
        default="flocklab",
        choices=["flocklab", "dcube"],
        help="which testbed model to run on",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, help="rounds per data point"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign seed"
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    parser.add_argument(
        "--real-crypto",
        action="store_true",
        help="run the full AES data path instead of the stub codec",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the result as JSON (figure1 only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan sweep work units out over N worker processes "
        "(default: $REPRO_WORKERS or serial; results are bit-identical "
        "either way; applies to figure1/coverage/degrees)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persisted commissioning cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro; disable with "
        "REPRO_DISK_CACHE=0)",
    )
    parser.add_argument(
        "--metrics",
        choices=["full", "summary"],
        default="full",
        help="per-round metrics payload workers return: dense per-node "
        "('full') or streaming scalars ('summary'; identical results, "
        "flat IPC — applies to figure1/sharded)",
    )


def _crypto(args) -> CryptoMode:
    return CryptoMode.REAL if args.real_crypto else CryptoMode.STUB


def cmd_figure1(args) -> int:
    spec = testbed_by_name(args.testbed)
    result = run_figure1(
        spec,
        iterations=args.iterations or 30,
        seed=args.seed,
        crypto_mode=_crypto(args),
        workers=args.workers,
        metrics=args.metrics,
    )
    if args.save:
        from repro.analysis.io import save_figure1

        save_figure1(result, args.save)
    if args.csv:
        rows = [
            {
                "n": p.num_nodes,
                "degree": p.degree,
                "s3_latency_ms": p.s3_latency_ms.mean,
                "s4_latency_ms": p.s4_latency_ms.mean,
                "latency_ratio": p.latency_ratio,
                "s3_radio_ms": p.s3_radio_ms.mean,
                "s4_radio_ms": p.s4_radio_ms.mean,
                "radio_ratio": p.radio_ratio,
                "s3_success": p.s3_success,
                "s4_success": p.s4_success,
            }
            for p in result.points
        ]
        print(to_csv(rows), end="")
    else:
        print(format_figure1_table(result))
        head = result.full_network_point
        print(
            f"\nComplete network (n={head.num_nodes}): S4 is "
            f"{head.latency_ratio:.1f}x faster and uses "
            f"{head.radio_ratio:.1f}x less radio-on time than S3."
        )
    return 0


def cmd_coverage(args) -> int:
    spec = testbed_by_name(args.testbed)
    rows = run_ntx_coverage_curve(
        spec,
        iterations=args.iterations or 20,
        seed=args.seed,
        workers=args.workers,
    )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                ["NTX", "mean reachable", "mean delivery", "full coverage"],
                [
                    [
                        int(r["ntx"]),
                        r["mean_reachable"],
                        r["mean_delivery"],
                        r["full_coverage_fraction"],
                    ]
                    for r in rows
                ],
                title=f"NTX coverage profile — {spec.name}",
            )
        )
    return 0


def cmd_degrees(args) -> int:
    spec = testbed_by_name(args.testbed)
    rows = run_degree_sweep(
        spec,
        iterations=args.iterations or 15,
        seed=args.seed,
        crypto_mode=_crypto(args),
        workers=args.workers,
    )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                ["degree", "chain", "latency ms", "radio ms", "success"],
                [
                    [
                        int(r["degree"]),
                        int(r["chain_length"]),
                        r["latency_ms"],
                        r["radio_ms"],
                        r["success"],
                    ]
                    for r in rows
                ],
                title=f"S4 cost vs polynomial degree — {spec.name}",
            )
        )
    return 0


def cmd_faults(args) -> int:
    spec = testbed_by_name(args.testbed)
    rows = run_fault_tolerance(
        spec,
        iterations=args.iterations or 15,
        seed=args.seed,
        crypto_mode=_crypto(args),
    )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                ["failed collectors", "redundancy", "success fraction"],
                [
                    [
                        int(r["failed_collectors"]),
                        int(r["redundancy"]),
                        r["success_fraction"],
                    ]
                    for r in rows
                ],
                title=f"S4 collector-failure tolerance — {spec.name}",
            )
        )
    return 0


def cmd_ablation(args) -> int:
    spec = testbed_by_name(args.testbed)
    rows = run_optimization_ablation(
        spec,
        iterations=args.iterations or 10,
        seed=args.seed,
        crypto_mode=_crypto(args),
    )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                ["variant", "latency ms", "radio ms"],
                [[r["variant"], r["latency_ms"], r["radio_ms"]] for r in rows],
                title=f"Optimization ablation — {spec.name}",
            )
        )
    return 0


def cmd_interference(args) -> int:
    spec = testbed_by_name(args.testbed)
    rows = run_interference_sweep(
        spec,
        iterations=args.iterations or 8,
        seed=args.seed,
        crypto_mode=_crypto(args),
    )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                [
                    "jamming level",
                    "S3 success",
                    "S3 latency ms",
                    "S4 success",
                    "S4 latency ms",
                ],
                [
                    [
                        int(r["level"]),
                        r["s3_success"],
                        r["s3_latency_ms"],
                        r["s4_success"],
                        r["s4_latency_ms"],
                    ]
                    for r in rows
                ],
                title=f"Interference robustness — {spec.name} "
                "(extension: D-Cube jamming levels)",
            )
        )
    return 0


def cmd_lifetime(args) -> int:
    spec = testbed_by_name(args.testbed)
    out = run_lifetime_projection(
        spec,
        rounds=args.iterations or 10,
        seed=args.seed,
        crypto_mode=_crypto(args),
    )
    print(
        format_table(
            ["variant", "projected lifetime (days)", "campaign reliability"],
            [
                ["S3", out["s3_lifetime_days"], f"{out['s3_reliability']:.2f}"],
                ["S4", out["s4_lifetime_days"], f"{out['s4_reliability']:.2f}"],
            ],
            title=f"Battery lifetime projection — {spec.name} "
            "(96 rounds/day, AA-class cell, first-node-death)",
        )
    )
    print(f"\nS4 extends network lifetime {out['lifetime_gain']:.1f}x.")
    return 0


def cmd_privacy(args) -> int:
    from repro.analysis.experiments import build_engines, round_secrets
    from repro.privacy.analysis import run_protocol_coalition_experiment

    spec = testbed_by_name(args.testbed)
    _, s4 = build_engines(spec, crypto_mode=CryptoMode.REAL)
    nodes = spec.topology.node_ids
    secrets = round_secrets(nodes, 0)
    degree = s4.config.degree
    collectors = list(s4.bootstrap_for(nodes).collectors)

    below = run_protocol_coalition_experiment(
        s4, secrets, collectors[:degree], seed=args.seed
    )
    above = run_protocol_coalition_experiment(
        s4, secrets, collectors[: degree + 1], seed=args.seed
    )
    print(
        format_table(
            ["coalition", "size", "breaches threshold", "secrets recovered"],
            [
                [
                    "below threshold",
                    below["coalition_size"],
                    below["breaches_threshold"],
                    len(below["recovered_secrets"]),
                ],
                [
                    "above threshold",
                    above["coalition_size"],
                    above["breaches_threshold"],
                    len(above["recovered_secrets"]),
                ],
            ],
            title=f"Semi-honest coalition experiment — {spec.name} "
            f"(degree {degree})",
        )
    )
    return 0


def cmd_sharded(args) -> int:
    from repro.analysis.sharding import run_sharded_campaign

    spec = testbed_by_name(args.testbed)
    iterations = args.iterations or 10
    result = run_sharded_campaign(
        spec,
        cells=args.cells,
        iterations=iterations,
        seed=args.seed,
        metrics=args.metrics,
        crypto_mode=_crypto(args),
        workers=args.workers,
    )
    rows = []
    for cell in result.cells:
        success = sum(r.success_fraction for r in cell.rounds) / len(cell.rounds)
        rows.append(
            {
                "cell": cell.index,
                "nodes": len(cell.node_ids),
                "reconstructed_rounds": sum(
                    1 for value in cell.sums if value is not None
                ),
                "matched_rounds": sum(
                    1 for a, b in zip(cell.sums, cell.expected) if a == b
                ),
                "success_fraction": round(success, 4),
            }
        )
    if args.csv:
        print(to_csv(rows), end="")
    else:
        print(
            format_table(
                ["cell", "nodes", "rounds ok", "rounds match", "success"],
                [
                    [
                        r["cell"],
                        r["nodes"],
                        f"{r['reconstructed_rounds']}/{iterations}",
                        f"{r['matched_rounds']}/{iterations}",
                        f"{r['success_fraction']:.2f}",
                    ]
                    for r in rows
                ],
                title=f"Sharded campaign — {spec.name}: "
                f"{result.num_nodes} nodes in {result.num_cells} MPC cells "
                f"({args.metrics} metrics)",
            )
        )
        print(
            f"\nCross-cell aggregate (degree {result.cross_degree}) matches "
            f"the flat deployment sum in {result.matched_rounds}/"
            f"{iterations} rounds."
        )
    return 0 if result.all_match else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Party Computation in IoT for "
        "Privacy-Preservation' (Goyal & Saha, ICDCS 2022)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, handler, doc in (
        ("figure1", cmd_figure1, "Fig. 1 node-count sweep (S3 vs S4)"),
        ("coverage", cmd_coverage, "NTX coverage curve (§III)"),
        ("degrees", cmd_degrees, "S4 cost vs polynomial degree"),
        ("faults", cmd_faults, "collector-failure tolerance"),
        ("ablation", cmd_ablation, "optimization split ablation"),
        ("interference", cmd_interference, "jamming-level robustness (extension)"),
        ("lifetime", cmd_lifetime, "battery lifetime projection (extension)"),
        ("privacy", cmd_privacy, "coalition privacy experiment"),
        ("sharded", cmd_sharded, "sharded MPC cells + cross-cell aggregation"),
    ):
        sub = subparsers.add_parser(name, help=doc)
        _add_common(sub)
        if name == "sharded":
            sub.add_argument(
                "--cells",
                type=int,
                default=4,
                metavar="K",
                help="number of MPC cells to partition the deployment into",
            )
        sub.set_defaults(handler=handler)
    args = parser.parse_args(argv)
    if args.cache_dir:
        from repro import diskcache

        diskcache.set_cache_dir(args.cache_dir)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
