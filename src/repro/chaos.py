"""Deterministic chaos engineering for sharded campaigns.

The paper's resilience argument is threshold-cryptographic: Shamir
sharing over ``degree + 1`` collector points survives collector loss.
The sharded pipeline composes that argument hierarchically, but until
now treated every cell and worker process as immortal.  This module
injects faults on purpose and pins the degradation contract:

* **Fault plan** — a frozen, JSON-round-tripping :class:`FaultPlan` of
  :class:`FaultEvent` entries.  Four kinds:

  - ``crash``: the cell process is gone from ``round`` onwards — it
    neither deals its per-round aggregate nor serves its collector
    point.
  - ``straggle``: like a crash for ``duration`` rounds starting at
    ``round``, then the cell comes back.
  - ``corrupt``: the cell's *collector point submission* for the
    affected rounds is corrupted in transit.  Corruption is detected by
    genuine CBC-MAC verification (:mod:`repro.crypto.mac`) and the
    point dropped — a corrupted share is never merged into a total.
  - ``kill_worker``: the worker process running the cell's primary unit
    dies (``kills`` times).  In a spawn pool the process is hard-killed
    (``os._exit``), breaking the pool; serially the unit raises.
    Either way the :class:`~repro.analysis.campaign.CampaignExecutor`'s
    bounded retry re-runs the seeded unit bit-identically — a kill
    costs wall-clock, never data.

  Every effect is a pure function of ``(plan, seed)`` via
  :mod:`repro.sim.seeds`, so injections are bit-reproducible serial vs
  parallel.

* **Two loss channels, two defences.**  A cell that is down at round
  ``r`` loses two different things:

  1. its *dealer contribution* (the cell aggregate it would have dealt
     cross-cell) — recovered by **coded redundancy**: ``replication``
     copies of each cell's work unit run on sibling hosts under the
     *same* cell seed, so copy ``j`` of cell ``c`` (hosted on cell
     ``(c + j) % k``) reproduces the primary's stream bit-for-bit and
     stands in for it.  Only when every copy's host is down for a round
     is the contribution unrecoverable.
  2. its *collector point* (point ``c + 1`` of the cross-cell deal) —
     absorbed by **threshold tolerance**: every cell deals over all
     ``k`` points, so any ``⌊k/3⌋ + 1`` surviving points reconstruct
     the round's total bit-identically to the flat-deployment oracle
     (:func:`repro.analysis.sharding.cross_cell_aggregate`).  Up to
     ``k - (⌊k/3⌋ + 1)`` point losses per round are survivable.

* **Structured degradation.**  Rounds past either bound become
  :class:`DegradedRound` records; in strict mode the campaign raises
  :class:`~repro.errors.ChaosError` naming the offending round and
  cells (the CLI turns that into a one-line exit-1 failure).  With
  ``strict=False`` the campaign completes with ``None`` totals for the
  degraded rounds.  In no mode does a total past the bound get
  *computed wrong* — losses beyond threshold fail loudly, never
  silently.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

from repro.analysis.campaign import CampaignExecutor, CampaignUnit
from repro.analysis.sharding import (
    CellResult,
    CellUnit,
    cross_cell_aggregate,
    cross_cell_degree,
    plan_cell_units,
)
from repro.core.config import CryptoMode
from repro.core.metrics import RoundSummary
from repro.errors import AuthenticationError, ChaosError, SpecError
from repro.faultplan import FAULT_KINDS, FaultEvent, FaultPlan  # noqa: F401  (re-exported API)
from repro.field.prime_field import PrimeField
from repro.sim.seeds import child_seed
from repro.topology.graph import Topology
from repro.topology.testbeds import TestbedSpec

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "InjectedWorkerKill",
    "ChaosCellUnit",
    "DegradedRound",
    "ChaosResult",
    "survivable_losses",
    "run_chaos_campaign",
]

#: Exit code used when an injected kill hard-kills a spawn pool worker.
KILL_EXIT_CODE = 113


class InjectedWorkerKill(ChaosError):
    """An injected ``kill_worker`` fault felled this unit's attempt."""


def survivable_losses(num_cells: int) -> int:
    """Collector-point losses one cross-cell round tolerates: k - (⌊k/3⌋+1)."""
    threshold = cross_cell_degree(num_cells) + 1
    return max(0, num_cells - threshold)


# -- fault-injecting work units ------------------------------------------------


@dataclass(frozen=True)
class ChaosCellUnit(CampaignUnit):
    """One copy of a cell's work unit, with optional kill injection.

    ``copy`` 0 is the primary; copies ``1..replication-1`` are the coded
    replicas, hosted on sibling cells.  Every copy wraps the *same*
    seeded :class:`~repro.analysis.sharding.CellUnit`, so all copies
    return bit-identical :class:`CellResult` payloads — that identity is
    what lets a replica stand in for a crashed primary.

    Kill injection only targets the primary: while ``attempt < kills``
    the attempt dies — hard (``os._exit``) inside a spawn pool worker,
    by raising :class:`InjectedWorkerKill` when run in-process — and the
    executor's bounded retry brings the unit back.
    """

    base: CellUnit
    copy: int = 0
    host: int = 0
    kills: int = 0

    def run(self) -> CellResult:
        return self.run_attempt(0)

    def run_attempt(self, attempt: int) -> CellResult:
        if attempt < self.kills:
            self._die(attempt)
        return self.base.run()

    def _die(self, attempt: int) -> None:
        import multiprocessing
        import os

        if multiprocessing.current_process().name != "MainProcess":
            os._exit(KILL_EXIT_CODE)
        raise InjectedWorkerKill(
            f"injected worker kill {attempt + 1}/{self.kills} "
            f"for cell {self.base.index} (copy {self.copy})"
        )


# -- degradation records -------------------------------------------------------


@dataclass(frozen=True)
class DegradedRound:
    """One round that degraded past exact reconstruction.

    Attributes:
        round: the campaign round index.
        lost_cells: the cells whose loss caused the degradation.
        surviving_points: collector points that survived the round.
        needed_points: the reconstruction threshold (``⌊k/3⌋ + 1``).
        reason: human-readable cause ("contribution unrecoverable ..."
            or "surviving collector points below ...").
    """

    round: int
    lost_cells: tuple[int, ...]
    surviving_points: int
    needed_points: int
    reason: str


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of a fault-injected sharded campaign.

    ``totals`` carry the cross-cell reconstructed deployment sums
    (``None`` for degraded rounds — never a wrong value); ``cells`` are
    the *effective* per-cell results after replica recovery (a round a
    cell lost with no surviving copy shows ``None``).  ``summaries``
    fold the degradation metrics into the standard per-round
    :class:`~repro.core.metrics.RoundSummary` stream.
    """

    cells: tuple[CellResult, ...]
    totals: tuple[int | None, ...]
    expected: tuple[int, ...]
    cross_degree: int
    iterations: int
    seed: int
    replication: int
    faults: FaultPlan
    degraded: tuple[DegradedRound, ...]
    summaries: tuple[RoundSummary, ...]
    lost_points: tuple[tuple[int, ...], ...]
    recovered: tuple[tuple[int, ...], ...]
    worker_retries: int
    units_run: int

    @property
    def num_cells(self) -> int:
        """How many cells the deployment was sliced into."""
        return len(self.cells)

    @property
    def num_nodes(self) -> int:
        """Total deployment size across all cells."""
        return sum(len(cell.node_ids) for cell in self.cells)

    @property
    def survivable_losses(self) -> int:
        """Collector-point losses one round tolerates: k - (⌊k/3⌋+1)."""
        return survivable_losses(self.num_cells)

    @property
    def matched_rounds(self) -> int:
        """Rounds whose total equals the flat deployment's true sum."""
        return sum(1 for a, b in zip(self.totals, self.expected) if a == b)

    @property
    def all_match(self) -> bool:
        """Every round survived its faults and reproduced the flat sum."""
        return self.matched_rounds == self.iterations

    @property
    def exact_under_loss(self) -> bool:
        """No wrong answers: every non-``None`` total is exactly right."""
        return all(
            total is None or total == want
            for total, want in zip(self.totals, self.expected)
        )

    @property
    def redundancy_overhead(self) -> float:
        """Work-unit inflation paid for coded redundancy (≈ replication)."""
        return self.units_run / self.num_cells


# -- fault compilation ---------------------------------------------------------


def _compile_faults(
    plan: FaultPlan, cells: int, iterations: int
) -> tuple[list[set[int]], list[set[int]], list[int]]:
    """Reduce a plan to per-cell effect sets.

    Returns ``(down, corrupt, kills)``: the rounds each cell's process
    is absent, the rounds each cell's collector submission is corrupted
    in transit, and how many attempts of each cell's primary unit die.
    """
    down: list[set[int]] = [set() for _ in range(cells)]
    corrupt: list[set[int]] = [set() for _ in range(cells)]
    kills = [0] * cells
    for event in plan.events:
        if event.kind == "crash":
            down[event.cell].update(range(event.round, iterations))
        elif event.kind == "straggle":
            down[event.cell].update(
                range(event.round, min(iterations, event.round + event.duration))
            )
        elif event.kind == "corrupt":
            corrupt[event.cell].update(
                range(event.round, min(iterations, event.round + event.duration))
            )
        else:  # kill_worker
            kills[event.cell] += event.kills
    return down, corrupt, kills


def _corruption_detected(
    seed: int, cell: int, round_index: int, value: int
) -> bool:
    """Genuinely detect an in-transit corruption with the library's MAC.

    The collector's submission ``(round, point, sum)`` is CBC-MAC'd
    under a per-cell key; the injected corruption flips a seeded byte of
    the message.  Detection is :func:`repro.crypto.mac.verify_mac`
    raising — the same authentication path a deployed collector would
    run — so "corrupt shares are dropped, never merged" rests on real
    crypto, not on bookkeeping.
    """
    from repro.crypto.aes import AES128
    from repro.crypto.mac import cbc_mac, verify_mac

    key = child_seed(seed, "chaos-mac", cell).to_bytes(8, "big") * 2
    cipher = AES128(key)
    message = (
        round_index.to_bytes(8, "big")
        + (cell + 1).to_bytes(8, "big")
        + value.to_bytes(32, "big")
    )
    tag = cbc_mac(cipher, message)
    flip = 1 + child_seed(seed, "chaos-tamper", cell, round_index) % 255
    tampered = bytes([message[0] ^ flip]) + message[1:]
    try:
        verify_mac(cipher, tampered, tag)
    except AuthenticationError:
        return True
    return False


# -- the campaign runner -------------------------------------------------------


def run_chaos_campaign(
    deployment: TestbedSpec | Topology,
    cells: int,
    iterations: int = 10,
    seed: int = 1,
    faults: FaultPlan | None = None,
    replication: int = 2,
    metrics: str = "summary",
    simulate: bool | None = None,
    crypto_mode: CryptoMode = CryptoMode.STUB,
    executor: CampaignExecutor | None = None,
    workers: int | None = None,
    max_attempts: int = 4,
    backoff_s: float = 0.0,
    strict: bool = True,
) -> ChaosResult:
    """Run a sharded campaign under an injected fault plan.

    Plans the usual seeded cell units, clones each one ``replication``
    times onto sibling hosts (coded redundancy), executes the fleet over
    the retrying :class:`~repro.analysis.campaign.CampaignExecutor`, and
    aggregates cross-cell with per-round collector-point losses applied.
    ``strict=True`` (the default) raises :class:`ChaosError` naming the
    first round whose losses exceed the survivable bound;
    ``strict=False`` returns a degraded result with ``None`` totals for
    those rounds instead.  Results are bit-identical serial vs parallel
    and invariant in ``max_attempts``/``backoff_s``: retries and
    replicas change *whether and when* a value arrives, never the value.
    """
    faults = FaultPlan() if faults is None else faults
    base_units = plan_cell_units(
        deployment,
        cells,
        iterations,
        seed,
        metrics=metrics,
        simulate=simulate,
        crypto_mode=crypto_mode,
    )
    k = len(base_units)
    if not 1 <= replication <= k:
        raise SpecError(
            f"replication must be within 1..{k} (the cell count), "
            f"got {replication}"
        )
    faults.validate_for(k, iterations)
    down, corrupt, kills = _compile_faults(faults, k, iterations)

    units: list[ChaosCellUnit] = []
    for base in base_units:
        for copy in range(replication):
            units.append(
                ChaosCellUnit(
                    base=base,
                    copy=copy,
                    host=(base.index + copy) % k,
                    kills=kills[base.index] if copy == 0 else 0,
                )
            )

    own_executor = executor is None
    if own_executor:
        executor = CampaignExecutor(workers=workers)
    retries_before = executor.retry_count
    try:
        raw = executor.run_units(
            units, max_attempts=max_attempts, backoff_base_s=backoff_s
        )
    except BrokenExecutor as error:
        raise ChaosError(
            f"worker pool did not survive injected kills within "
            f"{max_attempts} attempts per unit"
        ) from error
    finally:
        if own_executor:
            executor.close()
    worker_retries = executor.retry_count - retries_before

    by_cell = [
        raw[index * replication : (index + 1) * replication]
        for index in range(k)
    ]
    for index, copies in enumerate(by_cell):
        primary = copies[0]
        for copy, result in enumerate(copies[1:], start=1):
            if (result.sums, result.expected) != (primary.sums, primary.expected):
                raise ChaosError(
                    f"replica {copy} of cell {index} diverged from its "
                    f"primary — coded copies must be bit-identical"
                )

    # Per-round effects: which collector points are gone, which dealer
    # contributions were saved by a replica, which are unrecoverable.
    lost_points: list[set[int]] = [set() for _ in range(iterations)]
    recovered: list[list[int]] = [[] for _ in range(iterations)]
    unrecoverable: list[list[int]] = [[] for _ in range(iterations)]
    for r in range(iterations):
        for c in range(k):
            primary_down = r in down[c]
            copy_up = any(
                r not in down[(c + copy) % k] for copy in range(replication)
            )
            if primary_down and copy_up:
                recovered[r].append(c)
            if not copy_up:
                unrecoverable[r].append(c)
            if primary_down or r in corrupt[c]:
                lost_points[r].add(c)

    # Exercise the real authentication path for every injected corruption.
    for c in range(k):
        for r in sorted(corrupt[c]):
            value = by_cell[c][0].sums[r]
            if value is None:
                continue
            if not _corruption_detected(seed, c, r, value):
                raise ChaosError(
                    f"round {r}: corruption of cell {c}'s collector "
                    f"submission evaded MAC verification"
                )

    effective: list[CellResult] = []
    for c in range(k):
        primary = by_cell[c][0]
        sums = tuple(
            None if c in unrecoverable[r] else primary.sums[r]
            for r in range(iterations)
        )
        effective.append(
            CellResult(
                index=primary.index,
                node_ids=primary.node_ids,
                sums=sums,
                expected=primary.expected,
                rounds=primary.rounds,
            )
        )

    prime = PrimeField().prime
    expected = tuple(
        sum(cell.expected[r] for cell in effective) % prime
        for r in range(iterations)
    )

    degree = cross_cell_degree(k)
    threshold = degree + 1
    num_points = max(k, threshold)
    degraded: list[DegradedRound] = []
    for r in range(iterations):
        surviving = num_points - len(lost_points[r])
        missing = [c for c in range(k) if effective[c].sums[r] is None]
        if missing:
            degraded.append(
                DegradedRound(
                    round=r,
                    lost_cells=tuple(missing),
                    surviving_points=surviving,
                    needed_points=threshold,
                    reason=(
                        "contribution unrecoverable (every coded copy of "
                        "the cell was down)"
                    ),
                )
            )
        elif surviving < threshold:
            degraded.append(
                DegradedRound(
                    round=r,
                    lost_cells=tuple(sorted(lost_points[r])),
                    surviving_points=surviving,
                    needed_points=threshold,
                    reason=(
                        "surviving collector points below the "
                        "reconstruction threshold"
                    ),
                )
            )
    if strict and degraded:
        first = degraded[0]
        raise ChaosError(
            f"round {first.round}: lost cells {list(first.lost_cells)} "
            f"leave {first.surviving_points}/{num_points} collector points "
            f"(need {first.needed_points}) — {first.reason}; the plan "
            f"exceeds the survivable bound of {num_points - threshold} "
            f"losses per round in {len(degraded)} round(s)"
        )

    totals, _ = cross_cell_aggregate(
        effective,
        iterations,
        seed,
        degree=degree,
        lost_points=[sorted(entry) for entry in lost_points],
    )

    summaries: list[RoundSummary] = []
    for r in range(iterations):
        missing = sum(1 for cell in effective if cell.sums[r] is None)
        summaries.append(
            RoundSummary(
                num_nodes=k,
                completed_count=num_points - len(lost_points[r]),
                correct_count=k - missing,
                all_correct=totals[r] is not None and totals[r] == expected[r],
                expected_aggregate=expected[r],
                aggregate=totals[r],
                num_sources=k,
                max_latency_us=None,
                mean_latency_us=None,
                mean_radio_on_us=0.0,
                max_radio_on_us=0,
                sharing_duration_us=0,
                reconstruction_duration_us=0,
                sharing_slots=0,
                reconstruction_slots=0,
                chain_length_sharing=num_points,
                chain_length_reconstruction=threshold,
                failure_count=len(lost_points[r]) + missing,
                lost_cells=len(lost_points[r]),
                recovered_cells=len(recovered[r]),
            )
        )

    return ChaosResult(
        cells=tuple(effective),
        totals=totals,
        expected=expected,
        cross_degree=degree,
        iterations=iterations,
        seed=seed,
        replication=replication,
        faults=faults,
        degraded=tuple(degraded),
        summaries=tuple(summaries),
        lost_points=tuple(tuple(sorted(entry)) for entry in lost_points),
        recovered=tuple(tuple(entry) for entry in recovered),
        worker_retries=worker_retries,
        units_run=len(units),
    )
