"""The ``Session`` facade: one owner for every cross-cutting run concern.

Before this layer existed, each ``run_*`` entry point re-plumbed workers,
metrics wire format, disk-cache directory and backend flags through its
own signature.  A :class:`Session` owns that state exactly once:

* **workers** — explicit count > ``REPRO_WORKERS`` > serial; the session
  lazily creates (and on close, shuts down) one
  :class:`~repro.analysis.campaign.CampaignExecutor` shared by every
  ``run`` call, or wraps an injected executor without taking ownership;
* **metrics** — the per-round payload wire format (``"full"`` dense
  :class:`~repro.core.metrics.RoundMetrics` or streaming ``"summary"``);
* **cache_dir** — the persisted commissioning cache root
  (:mod:`repro.diskcache`), applied process-wide like the old CLI flag;
* the **backend fingerprint** (fast path, vector backend, numpy
  presence) recorded in every result envelope.

``session.run(spec)`` resolves the spec's scenario through the registry,
executes it, and wraps the payload in an :class:`ExperimentResult` — the
uniform envelope (scenario name, spec echo, wall time, backend
fingerprint, payload) every scenario shares, serializable to the one
JSON record format in :mod:`repro.analysis.io`.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro import diskcache, fastpath
from repro.core.metrics import METRICS_MODES
from repro.errors import SpecError, TopologyError
from repro.scenarios import registry
from repro.scenarios.spec import ScenarioSpec

__all__ = ["Session", "RunContext", "ExperimentResult", "backend_fingerprint"]

#: Version of the shared result-record layout (bump on breaking changes).
RECORD_SCHEMA = 1

#: ``kind`` tag of the uniform scenario-result JSON record.
RECORD_KIND = "scenario-result"


def backend_fingerprint(workers: int, metrics: str = "full") -> dict[str, Any]:
    """Which compute backend produced a result (for record provenance)."""
    try:
        import numpy  # noqa: F401

        have_numpy = True
    except ImportError:
        have_numpy = False
    return {
        "fastpath": fastpath.enabled(),
        "vector": fastpath.vector_enabled(),
        "numpy": have_numpy,
        "disk_cache": diskcache.enabled(),
        "workers": workers,
        "metrics": metrics,
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class RunContext:
    """What a scenario's run function sees of its session.

    ``deployment`` is the resolved testbed/topology for specs that carry
    a ``testbed`` field (or the programmatic override a legacy wrapper
    passed); scenarios that generate their own deployment ignore it.
    """

    session: "Session"
    deployment: Any = None

    def executor(self):
        """The session's campaign executor (created on first use)."""
        return self.session.executor()

    @property
    def metrics(self) -> str:
        """The session's per-round metrics wire format."""
        return self.session.metrics


@dataclass(frozen=True)
class ExperimentResult:
    """The uniform result envelope every scenario returns.

    ``payload`` is the scenario's native result object (a
    :class:`~repro.analysis.experiments.Figure1Result`, row list, ...);
    :meth:`to_dict` encodes it through the scenario's registered encoder
    into the shared JSON record format.
    """

    scenario: str
    spec: ScenarioSpec
    payload: Any
    elapsed_s: float
    backend: Mapping[str, Any]
    deployment: str | None = None

    @property
    def ok(self) -> bool:
        """The scenario's acceptance predicate over the payload."""
        return bool(registry.get(self.scenario).check(self.payload))

    def to_dict(self) -> dict[str, Any]:
        """The shared JSON record: envelope + encoded payload."""
        entry = registry.get(self.scenario)
        return {
            "schema": RECORD_SCHEMA,
            "kind": RECORD_KIND,
            "scenario": self.scenario,
            "spec": {"scenario": self.scenario, **self.spec.to_dict()},
            "deployment": self.deployment,
            "elapsed_s": round(self.elapsed_s, 6),
            "backend": dict(self.backend),
            "ok": self.ok,
            "payload": entry.encode(self.payload),
        }

    def save(self, path) -> None:
        """Write the record as JSON (see :func:`repro.analysis.io.save_record`)."""
        from repro.analysis.io import save_record

        save_record(self.to_dict(), path)


class Session:
    """Facade running declarative scenario specs under one configuration.

    Usable as a context manager; owned worker pools shut down on exit,
    injected executors are left running for the caller to manage::

        with Session(workers=4, metrics="summary") as session:
            result = session.run(Figure1Spec(testbed="dcube"))
            result.save("figure1.json")
    """

    def __init__(
        self,
        workers: int | None = None,
        metrics: str = "full",
        cache_dir: str | None = None,
        executor=None,
    ):
        if metrics not in METRICS_MODES:
            raise SpecError(
                f"metrics must be one of {METRICS_MODES}, got {metrics!r}"
            )
        self.workers = workers
        self.metrics = metrics
        self.cache_dir = cache_dir
        self._previous_cache_dir: str | None = None
        if cache_dir:
            # The persisted commissioning cache root is process-wide
            # state (spawn workers inherit it via WorkerState), so the
            # session pins it for its lifetime and close() restores the
            # directory that was effective before.
            self._previous_cache_dir = str(diskcache.cache_dir())
            diskcache.set_cache_dir(cache_dir)
        self._external = executor
        self._owned = None

    def executor(self):
        """The campaign executor backing this session (lazily created)."""
        if self._external is not None:
            return self._external
        if self._owned is None:
            from repro.analysis.campaign import CampaignExecutor

            self._owned = CampaignExecutor(workers=self.workers)
        return self._owned

    @staticmethod
    def _coerce_spec(data: Mapping[str, Any]) -> ScenarioSpec:
        """Resolve a plain-dict spec through the registry's spec type."""
        name = data.get("scenario")
        if not isinstance(name, str) or not name:
            raise SpecError(
                "a dict spec needs a 'scenario' key naming the scenario "
                f"to run (known: {', '.join(registry.names())})"
            )
        try:
            entry = registry.get(name)
        except KeyError:
            raise SpecError(
                f"unknown scenario {name!r} "
                f"(known: {', '.join(registry.names())})"
            ) from None
        return entry.spec_type.from_dict(data)

    def _resolve_deployment(self, spec: ScenarioSpec, override: Any):
        if override is not None:
            return override
        testbed = getattr(spec, "testbed", None)
        if testbed is None:
            return None
        from repro.topology.testbeds import testbed_by_name

        try:
            return testbed_by_name(testbed)
        except TopologyError as error:
            raise SpecError(str(error)) from None

    def run(
        self, spec: "ScenarioSpec | Mapping[str, Any]", deployment: Any = None
    ) -> ExperimentResult:
        """Run the scenario a spec belongs to; return the uniform envelope.

        ``spec`` is either a typed :class:`ScenarioSpec` or a plain
        mapping with a ``"scenario"`` key naming the scenario (the spec-
        file shape) — the mapping is coerced through the scenario's
        ``spec_type.from_dict``, so both forms share one validation path
        (:class:`SpecError` on anything malformed) and run
        bit-identically.

        ``deployment`` overrides testbed-name resolution with a live
        :class:`~repro.topology.testbeds.TestbedSpec` (or
        :class:`~repro.topology.graph.Topology`) — the escape hatch the
        legacy ``run_*`` wrappers use for ad-hoc deployments.  Spec files
        always resolve by name.
        """
        if isinstance(spec, Mapping):
            spec = self._coerce_spec(spec)
        entry = registry.for_spec(spec)
        resolved = self._resolve_deployment(spec, deployment)
        context = RunContext(session=self, deployment=resolved)
        start = time.perf_counter()
        payload = entry.run(spec, context)
        elapsed = time.perf_counter() - start
        return ExperimentResult(
            scenario=entry.name,
            spec=spec,
            payload=payload,
            elapsed_s=elapsed,
            backend=backend_fingerprint(self.executor().workers, self.metrics),
            deployment=getattr(resolved, "name", None)
            or getattr(getattr(resolved, "topology", None), "name", None),
        )

    def close(self) -> None:
        """Shut down the owned pool; restore the prior cache directory.

        Injected executors are kept — the caller manages their lifetime.
        """
        if self._owned is not None:
            self._owned.close()
            self._owned = None
        if self._previous_cache_dir is not None:
            diskcache.set_cache_dir(self._previous_cache_dir)
            self._previous_cache_dir = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
