"""Declarative scenario specifications: frozen, validated, JSON-serializable.

A :class:`ScenarioSpec` is the *complete* description of one experiment —
testbed/size selection, crypto mode, iteration counts, sweep axes,
fault/interference/sharding knobs — with none of the cross-cutting
execution state (workers, caches, metrics wire format), which belongs to
:class:`repro.scenarios.session.Session`.  The split is what related
work argues for (MOZAIK's declarative platform API, von Maltitz et al.'s
query-driven SMC invocation): *what* to compute is data, *how* to run it
is a facade.

Every spec is a frozen dataclass that

* coerces friendly inputs on construction (lists → tuples, ``"real"`` →
  :class:`~repro.core.config.CryptoMode.REAL`), so JSON payloads and CLI
  strings construct the same value a Python caller would;
* validates itself in ``__post_init__`` and raises
  :class:`repro.errors.SpecError` with a one-line message on nonsense;
* round-trips through :meth:`ScenarioSpec.to_dict` /
  :meth:`ScenarioSpec.from_dict` exactly (``from_dict(to_dict(s)) == s``),
  rejecting unknown fields instead of silently dropping them.
"""

from __future__ import annotations

import dataclasses
import enum
import types
import typing
from dataclasses import dataclass
from typing import Any, Mapping

from repro.faultplan import SOCKET_KINDS, FaultPlan
from repro.core.config import CryptoMode
from repro.errors import SpecError

__all__ = [
    "ScenarioSpec",
    "Figure1Spec",
    "CoverageSpec",
    "DegreeSweepSpec",
    "FaultToleranceSpec",
    "AblationSpec",
    "InterferenceSpec",
    "LifetimeSpec",
    "PrivacySpec",
    "ShardedSpec",
    "MeteringSpec",
    "QuickstartSpec",
    "GridShardedSpec",
    "CellsSweepSpec",
    "ChaosSpec",
    "ServiceSoakSpec",
]


# -- coercion machinery --------------------------------------------------------


def _resolved_hints(cls: type) -> dict[str, Any]:
    """Field type hints with ``from __future__ import annotations`` undone."""
    cached = cls.__dict__.get("_spec_hints")
    if cached is None:
        cached = typing.get_type_hints(cls)
        cls._spec_hints = cached
    return cached


def _type_error(cls_name: str, name: str, hint: Any, value: Any) -> SpecError:
    want = getattr(hint, "__name__", str(hint))
    return SpecError(
        f"{cls_name}.{name} expects {want}, got {value!r}"
    )


def _coerce(cls_name: str, name: str, hint: Any, value: Any) -> Any:
    """Coerce ``value`` to the annotated field type (or raise SpecError)."""
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        args = typing.get_args(hint)
        if value is None:
            if type(None) in args:
                return None
            raise _type_error(cls_name, name, hint, value)
        inner = [a for a in args if a is not type(None)]
        if len(inner) != 1:  # pragma: no cover - specs only use X | None
            raise _type_error(cls_name, name, hint, value)
        return _coerce(cls_name, name, inner[0], value)
    if isinstance(hint, type) and issubclass(hint, enum.Enum):
        if isinstance(value, hint):
            return value
        if isinstance(value, str):
            try:
                return hint[value.strip().upper()]
            except KeyError:
                choices = ", ".join(m.name.lower() for m in hint)
                raise SpecError(
                    f"{cls_name}.{name} must be one of {choices}, got {value!r}"
                ) from None
        raise _type_error(cls_name, name, hint, value)
    if origin is tuple:
        item_type = typing.get_args(hint)[0]
        if isinstance(value, (list, tuple)):
            return tuple(
                _coerce(cls_name, name, item_type, item) for item in value
            )
        raise _type_error(cls_name, name, hint, value)
    if (
        isinstance(hint, type)
        and dataclasses.is_dataclass(hint)
        and hasattr(hint, "from_dict")
    ):
        # Nested value objects (e.g. a chaos FaultPlan) embed in specs
        # the same way specs embed in files: as their to_dict mapping.
        if isinstance(value, hint):
            return value
        if isinstance(value, Mapping):
            return hint.from_dict(value)
        raise _type_error(cls_name, name, hint, value)
    if hint is bool:
        if isinstance(value, bool):
            return value
        raise _type_error(cls_name, name, hint, value)
    if hint is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise _type_error(cls_name, name, hint, value)
    if hint is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise _type_error(cls_name, name, hint, value)
    if hint is str:
        if isinstance(value, str):
            return value
        raise _type_error(cls_name, name, hint, value)
    raise _type_error(cls_name, name, hint, value)  # pragma: no cover


@dataclass(frozen=True)
class SpecField:
    """One spec field as generic tooling (CLI generation, docs) sees it."""

    name: str
    hint: Any
    default: Any


def spec_fields(spec_type: type) -> list[SpecField]:
    """The constructor fields of a spec type, with resolved type hints."""
    hints = _resolved_hints(spec_type)
    return [
        SpecField(name=f.name, hint=hints[f.name], default=f.default)
        for f in dataclasses.fields(spec_type)
        if f.init
    ]


# -- the spec family -----------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """Base class: coercion, validation, and exact JSON round-trip."""

    def __post_init__(self) -> None:
        hints = _resolved_hints(type(self))
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            coerced = _coerce(
                type(self).__name__, spec_field.name, hints[spec_field.name], value
            )
            if coerced is not value:
                object.__setattr__(self, spec_field.name, coerced)
        self.validate()

    def validate(self) -> None:
        """Per-scenario invariants; subclasses raise :class:`SpecError`."""

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe field mapping (enums → lowercase names, tuples → lists)."""
        out: dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, enum.Enum):
                value = value.name.lower()
            elif isinstance(value, tuple):
                value = list(value)
            elif dataclasses.is_dataclass(value) and hasattr(value, "to_dict"):
                value = value.to_dict()
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown fields are an error.

        A ``"scenario"`` key is tolerated (spec files carry one for
        self-description) but not interpreted here — the registry checks
        it against the scenario being invoked.
        """
        if not isinstance(data, Mapping):
            raise SpecError(
                f"{cls.__name__} wants a JSON object, got {type(data).__name__}"
            )
        payload = {k: v for k, v in data.items() if k != "scenario"}
        known = {f.name for f in dataclasses.fields(cls) if f.init}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"{cls.__name__} does not accept field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**payload)

    # shared validation helpers ------------------------------------------------

    def _at_least(self, name: str, value: int, floor: int) -> None:
        if value < floor:
            raise SpecError(
                f"{type(self).__name__}.{name} must be >= {floor}, got {value}"
            )


@dataclass(frozen=True)
class Figure1Spec(ScenarioSpec):
    """The Fig. 1 node-count sweep (S3 vs S4) on one testbed."""

    testbed: str = "flocklab"
    iterations: int = 30
    seed: int = 1
    crypto_mode: CryptoMode = CryptoMode.STUB
    sizes: tuple[int, ...] | None = None

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)
        if self.sizes is not None:
            if not self.sizes:
                raise SpecError("Figure1Spec.sizes must be non-empty when given")
            for size in self.sizes:
                self._at_least("sizes", size, 3)


@dataclass(frozen=True)
class CoverageSpec(ScenarioSpec):
    """The NTX → coverage curve (§III non-linearity, claims C3+C5)."""

    testbed: str = "flocklab"
    ntx_values: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 10, 12)
    iterations: int = 20
    seed: int = 3

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)
        if not self.ntx_values:
            raise SpecError("CoverageSpec.ntx_values must be non-empty")
        for ntx in self.ntx_values:
            self._at_least("ntx_values", ntx, 1)


@dataclass(frozen=True)
class DegreeSweepSpec(ScenarioSpec):
    """S4 cost vs polynomial degree at full network size (claim C4)."""

    testbed: str = "flocklab"
    degrees: tuple[int, ...] | None = None
    iterations: int = 15
    seed: int = 5
    crypto_mode: CryptoMode = CryptoMode.STUB

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)
        if self.degrees is not None:
            if not self.degrees:
                raise SpecError("DegreeSweepSpec.degrees must be non-empty when given")
            for degree in self.degrees:
                self._at_least("degrees", degree, 1)


@dataclass(frozen=True)
class FaultToleranceSpec(ScenarioSpec):
    """Collector-failure tolerance (§III resilience, ablation A1)."""

    testbed: str = "flocklab"
    failure_counts: tuple[int, ...] = (0, 1, 2, 3)
    iterations: int = 15
    seed: int = 7
    crypto_mode: CryptoMode = CryptoMode.STUB

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)
        if not self.failure_counts:
            raise SpecError("FaultToleranceSpec.failure_counts must be non-empty")
        for count in self.failure_counts:
            self._at_least("failure_counts", count, 0)


@dataclass(frozen=True)
class AblationSpec(ScenarioSpec):
    """Which S4 optimization buys what (ablation A2)."""

    testbed: str = "flocklab"
    iterations: int = 10
    seed: int = 11
    crypto_mode: CryptoMode = CryptoMode.STUB

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)


@dataclass(frozen=True)
class InterferenceSpec(ScenarioSpec):
    """S3/S4 under D-Cube-style jamming levels (extension E1)."""

    testbed: str = "flocklab"
    levels: tuple[int, ...] = (0, 1, 2, 3)
    iterations: int = 10
    seed: int = 13
    crypto_mode: CryptoMode = CryptoMode.STUB

    def validate(self) -> None:
        self._at_least("iterations", self.iterations, 1)
        if not self.levels:
            raise SpecError("InterferenceSpec.levels must be non-empty")
        for level in self.levels:
            if not 0 <= level <= 3:
                raise SpecError(
                    f"InterferenceSpec.levels must be within 0..3, got {level}"
                )


@dataclass(frozen=True)
class LifetimeSpec(ScenarioSpec):
    """Battery-lifetime projection (extension E2)."""

    testbed: str = "flocklab"
    rounds: int = 10
    seed: int = 17
    crypto_mode: CryptoMode = CryptoMode.STUB

    def validate(self) -> None:
        self._at_least("rounds", self.rounds, 1)


@dataclass(frozen=True)
class PrivacySpec(ScenarioSpec):
    """Semi-honest coalition experiment on a real-crypto round."""

    testbed: str = "flocklab"
    seed: int = 1
    crypto_mode: CryptoMode = CryptoMode.REAL


@dataclass(frozen=True)
class ShardedSpec(ScenarioSpec):
    """Scale-out: MPC cells plus the cross-cell aggregation round."""

    testbed: str = "flocklab"
    cells: int = 4
    iterations: int = 10
    seed: int = 1
    crypto_mode: CryptoMode = CryptoMode.STUB
    simulate: bool | None = None

    def validate(self) -> None:
        self._at_least("cells", self.cells, 1)
        self._at_least("iterations", self.iterations, 1)


@dataclass(frozen=True)
class ChaosSpec(ScenarioSpec):
    """Fault-injected sharded campaign: the sharded base plus a fault plan.

    ``faults`` embeds a :class:`repro.chaos.FaultPlan` (as its JSON
    mapping in spec files); ``replication`` is the coded-redundancy
    factor (copies of each cell's work unit on sibling hosts);
    ``max_attempts``/``retry_backoff_s`` bound the executor's retry of
    killed workers.  ``allow_degraded=False`` (the default) makes losses
    past the survivable bound a structured
    :class:`~repro.errors.ChaosError`; ``True`` returns a degraded
    result with ``None`` totals for those rounds instead.
    """

    testbed: str = "flocklab"
    cells: int = 6
    iterations: int = 8
    seed: int = 1
    crypto_mode: CryptoMode = CryptoMode.STUB
    simulate: bool | None = None
    replication: int = 2
    faults: FaultPlan = FaultPlan()
    max_attempts: int = 4
    retry_backoff_s: float = 0.0
    allow_degraded: bool = False

    def validate(self) -> None:
        self._at_least("cells", self.cells, 1)
        self._at_least("iterations", self.iterations, 1)
        self._at_least("replication", self.replication, 1)
        self._at_least("max_attempts", self.max_attempts, 1)
        if self.replication > self.cells:
            raise SpecError(
                f"ChaosSpec.replication must be <= cells "
                f"({self.cells}), got {self.replication}"
            )
        if self.retry_backoff_s < 0:
            raise SpecError(
                f"ChaosSpec.retry_backoff_s must be >= 0, "
                f"got {self.retry_backoff_s}"
            )
        self.faults.validate_for(self.cells, self.iterations)
        for event in self.faults.events:
            # Preflight what would otherwise fail mid-campaign, after the
            # worker pool has already spawned: a unit whose planned kill
            # count exhausts the retry budget can never succeed.
            if event.kind == "kill_worker" and event.kills >= self.max_attempts:
                raise SpecError(
                    f"ChaosSpec fault plan kills cell {event.cell}'s unit "
                    f"{event.kills} time(s) but max_attempts is "
                    f"{self.max_attempts}; the unit could never complete"
                )


@dataclass(frozen=True)
class ServiceSoakSpec(ScenarioSpec):
    """Soak of the crash-safe aggregation service (:mod:`repro.service`).

    The metering workload as a *stream*: ``devices`` meters submit one
    reading per billing window, the service closes each window at its
    deadline, and the soak driver fires the plan's service faults along
    the way.  ``kill_at`` is sugar for ``kill_daemon`` events: each
    offset hard-kills the service after that many accepted submissions
    and restarts it from the journals — the run must still close every
    window bit-identically.  ``faults`` takes service-kind events only
    (``kill_daemon``/``pause_ingest``; a ``kill_daemon`` event's
    ``cell`` anchors on that *shard's* accepted count); ``rate``
    throttles ingest to that many shares/sec (0 = unthrottled);
    ``duplicate_every`` re-sends every Nth accepted share to prove
    dedup (0 = off); ``late_replays > 0`` re-sends a closed window's
    share to prove the deadline is final.

    Scale-out knobs: ``shards`` gives the service that many journals
    (device ``d`` lands on shard ``d % shards``, each shard is one MPC
    cell of the window fold); ``producers`` feeds it from that many
    concurrent threads; ``transport`` picks how they reach the daemon
    (``"inproc"`` = direct calls, ``"queue"`` = through the bounded
    ingestion front, ``"socket"`` = over TCP to one daemon *process*
    per shard under supervisor restart).  ``pause_ingest`` events need
    ``producers == 1`` — a pause window anchored on a global submission
    offset has no deterministic meaning when several producers race
    past it.  The socket-only fault kinds (``kill_shard_process``,
    ``drop_connection``, ``delay_response``) need
    ``transport="socket"`` — they inject at a process boundary the
    in-process transports do not have.
    """

    devices: int = 12
    windows: int = 4
    seed: int = 9000
    base_load_wh: int = 180
    cells: int = 3
    shards: int = 1
    producers: int = 1
    transport: str = "inproc"
    queue_capacity: int = 4096
    window_capacity: int = 1024
    rate: float = 0.0
    kill_at: tuple[int, ...] = ()
    faults: FaultPlan = FaultPlan()
    duplicate_every: int = 5
    late_replays: int = 1
    fsync: bool = True

    def validate(self) -> None:
        self._at_least("devices", self.devices, 1)
        self._at_least("windows", self.windows, 1)
        self._at_least("cells", self.cells, 1)
        self._at_least("shards", self.shards, 1)
        self._at_least("producers", self.producers, 1)
        self._at_least("queue_capacity", self.queue_capacity, 1)
        self._at_least("window_capacity", self.window_capacity, 1)
        self._at_least("base_load_wh", self.base_load_wh, 0)
        self._at_least("duplicate_every", self.duplicate_every, 0)
        self._at_least("late_replays", self.late_replays, 0)
        if self.transport not in ("inproc", "queue", "socket"):
            raise SpecError(
                f"ServiceSoakSpec.transport must be 'inproc', 'queue' or "
                f"'socket', got {self.transport!r}"
            )
        if self.shards > self.devices:
            raise SpecError(
                f"ServiceSoakSpec.shards ({self.shards}) cannot exceed "
                f"devices ({self.devices}); empty shards carry no traffic"
            )
        if self.rate < 0:
            raise SpecError(
                f"ServiceSoakSpec.rate must be >= 0, got {self.rate}"
            )
        total = self.devices * self.windows
        for offset in self.kill_at:
            if not 1 <= offset <= total:
                raise SpecError(
                    f"ServiceSoakSpec.kill_at offsets must be within "
                    f"1..{total} (accepted submissions), got {offset}"
                )
        shard_devices = tuple(
            self.devices // self.shards
            + (1 if shard < self.devices % self.shards else 0)
            for shard in range(self.shards)
        )
        self.faults.validate_for_service(
            total,
            shards=self.shards,
            shard_submissions=tuple(n * self.windows for n in shard_devices),
        )
        socket_only = sorted(
            {e.kind for e in self.faults.events if e.kind in SOCKET_KINDS}
        )
        if socket_only and self.transport != "socket":
            raise SpecError(
                f"fault kind(s) {', '.join(socket_only)} need "
                f"transport='socket' (they inject at a process boundary); "
                f"got transport={self.transport!r}"
            )
        if self.producers > 1 and any(
            e.kind == "pause_ingest" for e in self.faults.events
        ):
            raise SpecError(
                "pause_ingest faults need producers == 1; a pause anchored "
                "on a submission offset is not deterministic under "
                "concurrent producers"
            )


@dataclass(frozen=True)
class MeteringSpec(ScenarioSpec):
    """Smart-metering billing window: periodic totals over one testbed.

    The paper's motivating scenario as a first-class experiment: a
    head-end collects one private neighbourhood total per billing period
    and folds the window's aggregate, re-running rounds that fail to
    converge (a retry costs latency, never privacy).
    """

    testbed: str = "flocklab"
    periods: int = 3
    seed: int = 9000
    crypto_mode: CryptoMode = CryptoMode.REAL
    base_load_wh: int = 180
    max_retries: int = 3

    def validate(self) -> None:
        self._at_least("periods", self.periods, 1)
        self._at_least("max_retries", self.max_retries, 0)
        self._at_least("base_load_wh", self.base_load_wh, 0)


@dataclass(frozen=True)
class QuickstartSpec(ScenarioSpec):
    """One private-aggregation round on a small generated grid."""

    columns: int = 4
    rows: int = 2
    spacing_m: float = 7.0
    jitter_m: float = 0.5
    topology_seed: int = 1
    degree: int = 2
    sharing_ntx: int = 5
    reconstruction_ntx: int = 6
    redundancy: int = 1
    bootstrap_iterations: int = 8
    crypto_mode: CryptoMode = CryptoMode.REAL
    seed: int = 2024

    def validate(self) -> None:
        self._at_least("columns", self.columns, 1)
        self._at_least("rows", self.rows, 1)
        if self.columns * self.rows < 3:
            raise SpecError("QuickstartSpec needs at least 3 nodes")
        self._at_least("degree", self.degree, 1)
        self._at_least("sharing_ntx", self.sharing_ntx, 1)
        self._at_least("reconstruction_ntx", self.reconstruction_ntx, 1)
        self._at_least("redundancy", self.redundancy, 0)
        self._at_least("bootstrap_iterations", self.bootstrap_iterations, 1)


@dataclass(frozen=True)
class GridShardedSpec(ScenarioSpec):
    """MPC-only sharded campaign over a generated grid deployment.

    What scales the demo to 10k+ nodes: every cell runs the share
    algebra without a radio schedule, then the cross-cell round must
    reproduce the flat deployment's sums bit-for-bit.
    """

    nodes: int = 10_000
    cells: int = 200
    iterations: int = 2
    seed: int = 1
    spacing_m: float = 10.0
    jitter_m: float = 1.0
    grid_seed: int = 7

    def validate(self) -> None:
        self._at_least("nodes", self.nodes, 4)
        self._at_least("cells", self.cells, 1)
        self._at_least("iterations", self.iterations, 1)
        if self.cells > self.nodes:
            raise SpecError(
                f"GridShardedSpec wants cells <= nodes, "
                f"got {self.cells} cells for {self.nodes} nodes"
            )


@dataclass(frozen=True)
class CellsSweepSpec(ScenarioSpec):
    """Mixed-cell-size sweep: one deployment, several shard granularities.

    Runs the same grid deployment as MPC cells at every cell count in
    ``cell_counts`` and checks each sharding reproduces the flat sums —
    the exactness contract is granularity-invariant.
    """

    nodes: int = 180
    cell_counts: tuple[int, ...] = (2, 3, 6)
    iterations: int = 2
    seed: int = 1
    spacing_m: float = 10.0
    jitter_m: float = 1.0
    grid_seed: int = 7

    def validate(self) -> None:
        self._at_least("nodes", self.nodes, 4)
        self._at_least("iterations", self.iterations, 1)
        if not self.cell_counts:
            raise SpecError("CellsSweepSpec.cell_counts must be non-empty")
        for count in self.cell_counts:
            self._at_least("cell_counts", count, 1)
            if count > self.nodes:
                raise SpecError(
                    f"CellsSweepSpec wants cell_counts <= nodes, "
                    f"got {count} cells for {self.nodes} nodes"
                )
