"""The scenario registry: one named entry per runnable experiment.

A *scenario* binds together everything the Scenario API needs to run,
render, and persist one experiment kind:

* a **name** (``"figure1"``, ``"sharded"``, ...) — the CLI handle;
* a **spec type** (:mod:`repro.scenarios.spec`) — the declarative input;
* a **run function** ``run(spec, ctx) -> payload`` that plans work
  (typically :class:`~repro.analysis.campaign.CampaignUnit` batches over
  the session's executor) and folds results;
* an **encoder** mapping the payload into the uniform JSON record;
* optional **table/rows** renderers for human and CSV output, a
  **check** predicate (exit-code contract), and a **smoke** field-override
  mapping that describes the scenario's minimal honest configuration
  (what CI runs for every registered scenario).

Registration happens through the :func:`scenario` decorator::

    @scenario(
        "billing",
        spec_type=MeteringSpec,
        description="billing-window aggregate",
        encode=lambda payload: payload,
    )
    def _run_billing(spec: MeteringSpec, ctx) -> dict:
        ...

Names and spec types are both unique: a duplicate of either is a
:class:`repro.errors.SpecError` at import time, because two scenarios
sharing a spec type would make ``Session.run(spec)`` ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import SpecError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["Scenario", "scenario", "register", "get", "for_spec", "names", "all_scenarios"]


def _same_payload(payload: Any) -> Any:
    """Default encoder for payloads that are already JSON-safe rows."""
    return payload


def _always_ok(payload: Any) -> bool:
    return True


@dataclass(frozen=True)
class Scenario:
    """One registry entry (see module docstring for the field contract)."""

    name: str
    spec_type: type[ScenarioSpec]
    run: Callable[[ScenarioSpec, Any], Any]
    description: str
    encode: Callable[[Any], Any] = _same_payload
    table: Callable[[Any], str] | None = None
    rows: Callable[[Any], list[dict]] | None = None
    check: Callable[[Any], bool] = _always_ok
    smoke: Mapping[str, Any] = field(default_factory=dict)
    legacy_alias: bool = False

    def smoke_spec(self) -> ScenarioSpec:
        """The minimal-size spec CI uses to smoke-run this scenario."""
        return self.spec_type.from_dict(dict(self.smoke))


_REGISTRY: dict[str, Scenario] = {}
_BY_SPEC_TYPE: dict[type[ScenarioSpec], Scenario] = {}


def register(entry: Scenario) -> Scenario:
    """Add a scenario; duplicate names or spec types are errors."""
    if entry.name in _REGISTRY:
        raise SpecError(f"scenario {entry.name!r} is already registered")
    if not issubclass(entry.spec_type, ScenarioSpec):
        raise SpecError(
            f"scenario {entry.name!r} spec_type must subclass ScenarioSpec, "
            f"got {entry.spec_type!r}"
        )
    if entry.spec_type in _BY_SPEC_TYPE:
        raise SpecError(
            f"spec type {entry.spec_type.__name__} already serves scenario "
            f"{_BY_SPEC_TYPE[entry.spec_type].name!r}"
        )
    _REGISTRY[entry.name] = entry
    _BY_SPEC_TYPE[entry.spec_type] = entry
    return entry


def scenario(
    name: str,
    *,
    spec_type: type[ScenarioSpec],
    description: str,
    encode: Callable[[Any], Any] = _same_payload,
    table: Callable[[Any], str] | None = None,
    rows: Callable[[Any], list[dict]] | None = None,
    check: Callable[[Any], bool] = _always_ok,
    smoke: Mapping[str, Any] | None = None,
    legacy_alias: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`register`; returns the run function."""

    def wrap(run: Callable[[ScenarioSpec, Any], Any]) -> Callable:
        register(
            Scenario(
                name=name,
                spec_type=spec_type,
                run=run,
                description=description,
                encode=encode,
                table=table,
                rows=rows,
                check=check,
                smoke=dict(smoke or {}),
                legacy_alias=legacy_alias,
            )
        )
        return run

    return wrap


def get(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario {name!r} (have: {', '.join(names())})"
        ) from None


def for_spec(spec: ScenarioSpec) -> Scenario:
    """The scenario a spec instance belongs to (exact type match)."""
    entry = _BY_SPEC_TYPE.get(type(spec))
    if entry is None:
        raise SpecError(
            f"no scenario registered for spec type {type(spec).__name__}"
        )
    return entry


def names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> list[Scenario]:
    """Registered scenarios in name order."""
    return [_REGISTRY[name] for name in names()]
