"""The unified Scenario API: declarative specs → registry → session.

Every experiment in the reproduction runs through the same three-piece
pipeline::

    spec  =  Figure1Spec(testbed="dcube", iterations=30)      # WHAT to run
    entry =  registry.get("figure1")                          # HOW it runs
    with Session(workers=4, metrics="summary") as session:    # shared config
        result = session.run(spec)                            # uniform envelope
        result.save("figure1.json")                           # one JSON format

* :mod:`repro.scenarios.spec` — frozen, validated, JSON-round-tripping
  scenario specifications;
* :mod:`repro.scenarios.registry` — the ``@scenario`` decorator registry
  binding specs to run functions, encoders, renderers and smoke configs;
* :mod:`repro.scenarios.session` — the :class:`Session` facade owning
  workers / cache / metrics once, and the :class:`ExperimentResult`
  envelope;
* :mod:`repro.scenarios.builtin` — all shipped scenarios (importing this
  package registers them).

The legacy ``run_*`` functions in :mod:`repro.analysis` delegate here,
so both surfaces stay bit-identical.
"""

from repro.scenarios import registry
from repro.scenarios.registry import Scenario, scenario
from repro.scenarios.session import ExperimentResult, RunContext, Session
from repro.scenarios.spec import (
    AblationSpec,
    CellsSweepSpec,
    ChaosSpec,
    CoverageSpec,
    DegreeSweepSpec,
    FaultToleranceSpec,
    Figure1Spec,
    GridShardedSpec,
    InterferenceSpec,
    LifetimeSpec,
    MeteringSpec,
    PrivacySpec,
    QuickstartSpec,
    ScenarioSpec,
    ServiceSoakSpec,
    ShardedSpec,
)

# Importing the built-ins is what populates the registry.
from repro.scenarios import builtin  # noqa: E402

__all__ = [
    "registry",
    "Scenario",
    "scenario",
    "Session",
    "RunContext",
    "ExperimentResult",
    "ScenarioSpec",
    "Figure1Spec",
    "CoverageSpec",
    "DegreeSweepSpec",
    "FaultToleranceSpec",
    "AblationSpec",
    "InterferenceSpec",
    "LifetimeSpec",
    "PrivacySpec",
    "ShardedSpec",
    "MeteringSpec",
    "QuickstartSpec",
    "GridShardedSpec",
    "CellsSweepSpec",
    "ChaosSpec",
    "ServiceSoakSpec",
    "builtin",
]
