"""The built-in scenarios: every experiment, registered behind one API.

This module is where the experiment *orchestration* bodies live — the
code that turns a declarative spec into
:class:`~repro.analysis.campaign.CampaignUnit` batches (via the existing
planners), runs them on the session's executor, and folds the results.
The legacy ``run_*`` functions in :mod:`repro.analysis.experiments` and
:mod:`repro.analysis.sharding` are thin wrappers over these entries, so
both call paths are byte-for-byte the same computation.

Each registration also carries the presentation the old hand-rolled CLI
commands used to inline: a JSON encoder for the uniform record, a table
renderer, CSV rows, the exit-code predicate, and a minimal smoke
configuration for CI.

A new scenario is a ~50-line plugin: a frozen spec dataclass plus one
``@scenario``-decorated run function (see ``metering`` or
``cells_sweep`` below for the template).
"""

from __future__ import annotations

from typing import Any

from repro.analysis import campaign
from repro.analysis.experiments import (
    Figure1Result,
    _engine_without_early_off,
    _point_from_rounds,
    build_engines,
    degree_for,
    round_secrets,
    run_rounds,
)
from repro.analysis.reporting import format_figure1_table, format_table
from repro.analysis.stats import summarize
from repro.core.config import CryptoMode
from repro.core.metrics import RoundSummary
from repro.ct.packet import sharing_psdu_bytes
from repro.errors import ChaosError, ConfigurationError, ProtocolError, ReconstructionError
from repro.field.prime_field import PrimeField
from repro.phy.channel import ChannelModel
from repro.phy.link import cached_link_table
from repro.scenarios.registry import scenario
from repro.service.loadgen import metering_reading
from repro.scenarios.spec import (
    AblationSpec,
    CellsSweepSpec,
    ChaosSpec,
    CoverageSpec,
    DegreeSweepSpec,
    FaultToleranceSpec,
    Figure1Spec,
    GridShardedSpec,
    InterferenceSpec,
    LifetimeSpec,
    MeteringSpec,
    PrivacySpec,
    QuickstartSpec,
    ServiceSoakSpec,
    ShardedSpec,
)
from repro.sim.seeds import stable_seed


# -- figure1 -------------------------------------------------------------------


def _figure1_rows(result: Figure1Result) -> list[dict]:
    return [
        {
            "n": p.num_nodes,
            "degree": p.degree,
            "s3_latency_ms": p.s3_latency_ms.mean,
            "s4_latency_ms": p.s4_latency_ms.mean,
            "latency_ratio": p.latency_ratio,
            "s3_radio_ms": p.s3_radio_ms.mean,
            "s4_radio_ms": p.s4_radio_ms.mean,
            "radio_ratio": p.radio_ratio,
            "s3_success": p.s3_success,
            "s4_success": p.s4_success,
        }
        for p in result.points
    ]


def _figure1_table(result) -> str:
    head = result.payload.full_network_point
    return (
        format_figure1_table(result.payload)
        + f"\n\nComplete network (n={head.num_nodes}): S4 is "
        f"{head.latency_ratio:.1f}x faster and uses "
        f"{head.radio_ratio:.1f}x less radio-on time than S3."
    )


def _encode_figure1(result: Figure1Result) -> dict:
    from repro.analysis.io import figure1_to_dict

    return figure1_to_dict(result)


@scenario(
    "figure1",
    spec_type=Figure1Spec,
    description="Fig. 1 node-count sweep (S3 vs S4)",
    encode=_encode_figure1,
    table=_figure1_table,
    rows=_figure1_rows,
    smoke={"testbed": "flocklab", "iterations": 2, "sizes": [3]},
    legacy_alias=True,
)
def _run_figure1(spec: Figure1Spec, ctx) -> Figure1Result:
    bed = ctx.deployment
    sizes = tuple(spec.sizes) if spec.sizes is not None else tuple(bed.source_sweep)
    executor = ctx.executor()
    units = campaign.plan_figure1_units(
        bed,
        sizes,
        spec.iterations,
        spec.seed,
        spec.crypto_mode,
        executor.workers,
        metrics=ctx.metrics,
    )
    results = executor.run_units(units)
    merged: dict[tuple[int, str], list] = {
        (size, variant): [] for size in sizes for variant in ("s3", "s4")
    }
    for unit, rounds in zip(units, results):
        merged[(unit.size, unit.variant)].extend(rounds)
    points = tuple(
        _point_from_rounds(size, merged[(size, "s3")], merged[(size, "s4")])
        for size in sizes
    )
    return Figure1Result(testbed=bed.name, points=points, iterations=spec.iterations)


# -- coverage ------------------------------------------------------------------


def _coverage_table(result) -> str:
    return format_table(
        ["NTX", "mean reachable", "mean delivery", "full coverage"],
        [
            [
                int(r["ntx"]),
                r["mean_reachable"],
                r["mean_delivery"],
                r["full_coverage_fraction"],
            ]
            for r in result.payload
        ],
        title=f"NTX coverage profile — {result.deployment}",
    )


@scenario(
    "coverage",
    spec_type=CoverageSpec,
    description="NTX coverage curve (§III)",
    table=_coverage_table,
    rows=lambda payload: payload,
    smoke={"testbed": "flocklab", "ntx_values": [2], "iterations": 2},
    legacy_alias=True,
)
def _run_coverage(spec: CoverageSpec, ctx) -> list[dict[str, float]]:
    bed = ctx.deployment
    executor = ctx.executor()
    prebuilt = None
    if executor.workers <= 1:
        # Serial execution shares one table across the whole curve — on
        # the reference path nothing else deduplicates it.
        channel = ChannelModel(bed.channel)
        frame = 6 + sharing_psdu_bytes()
        prebuilt = cached_link_table(bed.topology.positions, channel, frame)
    units = [
        campaign.CoverageUnit(
            spec=bed,
            ntx=int(ntx),
            iterations=spec.iterations,
            seed=spec.seed,
            prebuilt_links=prebuilt,
        )
        for ntx in spec.ntx_values
    ]
    return sorted(executor.run_units(units), key=lambda row: row["ntx"])


# -- degrees -------------------------------------------------------------------


def _degrees_table(result) -> str:
    return format_table(
        ["degree", "chain", "latency ms", "radio ms", "success"],
        [
            [
                int(r["degree"]),
                int(r["chain_length"]),
                r["latency_ms"],
                r["radio_ms"],
                r["success"],
            ]
            for r in result.payload
        ],
        title=f"S4 cost vs polynomial degree — {result.deployment}",
    )


@scenario(
    "degrees",
    spec_type=DegreeSweepSpec,
    description="S4 cost vs polynomial degree",
    table=_degrees_table,
    rows=lambda payload: payload,
    smoke={"testbed": "flocklab", "degrees": [1], "iterations": 2},
    legacy_alias=True,
)
def _run_degrees(spec: DegreeSweepSpec, ctx) -> list[dict[str, float]]:
    bed = ctx.deployment
    degrees = spec.degrees
    if degrees is None:
        top = degree_for(len(bed.topology))
        degrees = tuple(sorted({max(1, top // 4), max(1, top // 2), top}))
    units = [
        campaign.DegreeUnit(
            spec=bed,
            degree=int(degree),
            iterations=spec.iterations,
            seed=spec.seed,
            crypto_mode=spec.crypto_mode,
        )
        for degree in degrees
    ]
    return ctx.executor().run_units(units)


# -- faults --------------------------------------------------------------------


def _faults_table(result) -> str:
    return format_table(
        ["failed collectors", "redundancy", "success fraction"],
        [
            [
                int(r["failed_collectors"]),
                int(r["redundancy"]),
                r["success_fraction"],
            ]
            for r in result.payload
        ],
        title=f"S4 collector-failure tolerance — {result.deployment}",
    )


@scenario(
    "faults",
    spec_type=FaultToleranceSpec,
    description="collector-failure tolerance",
    table=_faults_table,
    rows=lambda payload: payload,
    smoke={"testbed": "flocklab", "failure_counts": [0, 1], "iterations": 2},
    legacy_alias=True,
)
def _run_faults(spec: FaultToleranceSpec, ctx) -> list[dict[str, float]]:
    bed = ctx.deployment
    _, s4 = build_engines(bed, crypto_mode=spec.crypto_mode)
    nodes = bed.topology.node_ids
    bootstrap = s4.bootstrap_for(nodes)
    collectors = list(bootstrap.collectors)
    rows = []
    for count in spec.failure_counts:
        if count > len(collectors):
            # Unsurvivable by construction: structured one-line failure
            # (exit 1 via ReproError), never an unhandled traceback.
            raise ChaosError(
                f"cannot fail {count} of {len(collectors)} collectors — "
                f"unsurvivable loss (threshold {s4.config.degree + 1}, "
                f"redundancy {len(collectors) - (s4.config.degree + 1)})"
            )
        successes = []
        for iteration in range(spec.iterations):
            secrets = round_secrets(nodes, iteration)
            victims = collectors[:count]
            # Victims die halfway through the sharing round.
            fail_slot = max(1, bootstrap.sharing_slots // 2)
            failures = {victim: fail_slot for victim in victims}
            try:
                summary = RoundSummary.from_metrics(
                    s4.run(
                        secrets,
                        seed=stable_seed(spec.seed, count, iteration),
                        sharing_failures=failures,
                    )
                )
                successes.append(summary.success_fraction)
            except (ProtocolError, ReconstructionError):
                successes.append(0.0)
        rows.append(
            {
                "failed_collectors": float(count),
                "redundancy": float(len(collectors) - (s4.config.degree + 1)),
                "success_fraction": sum(successes) / len(successes),
            }
        )
    return rows


# -- ablation ------------------------------------------------------------------


def _ablation_table(result) -> str:
    return format_table(
        ["variant", "latency ms", "radio ms"],
        [[r["variant"], r["latency_ms"], r["radio_ms"]] for r in result.payload],
        title=f"Optimization ablation — {result.deployment}",
    )


@scenario(
    "ablation",
    spec_type=AblationSpec,
    description="optimization split ablation",
    table=_ablation_table,
    rows=lambda payload: payload,
    smoke={"testbed": "flocklab", "iterations": 2},
    legacy_alias=True,
)
def _run_ablation(spec: AblationSpec, ctx) -> list[dict[str, float]]:
    bed = ctx.deployment
    nodes = bed.topology.node_ids
    s3, s4 = build_engines(bed, crypto_mode=spec.crypto_mode)
    s4_always_on = _engine_without_early_off(bed, spec.crypto_mode)
    rows = []
    for label, engine in (
        ("s3", s3),
        ("s4_no_early_off", s4_always_on),
        ("s4", s4),
    ):
        # Streaming wire format: rounds arrive as flat RoundSummary
        # scalars, so the ablation never holds dense per-node maps.
        rounds = run_rounds(
            engine,
            nodes,
            spec.iterations,
            stable_seed(spec.seed, label),
            metrics="summary",
        )
        latencies = [r.max_latency_us / 1000.0 for r in rounds if r.has_latency]
        radio = [r.mean_radio_on_us / 1000.0 for r in rounds]
        rows.append(
            {
                "variant": label,
                "latency_ms": summarize(latencies).mean if latencies else float("nan"),
                "radio_ms": summarize(radio).mean,
            }
        )
    return rows


# -- interference --------------------------------------------------------------


def _interference_table(result) -> str:
    return format_table(
        [
            "jamming level",
            "S3 success",
            "S3 latency ms",
            "S4 success",
            "S4 latency ms",
        ],
        [
            [
                int(r["level"]),
                r["s3_success"],
                r["s3_latency_ms"],
                r["s4_success"],
                r["s4_latency_ms"],
            ]
            for r in result.payload
        ],
        title=f"Interference robustness — {result.deployment} "
        "(extension: D-Cube jamming levels)",
    )


@scenario(
    "interference",
    spec_type=InterferenceSpec,
    description="jamming-level robustness (extension)",
    table=_interference_table,
    rows=lambda payload: payload,
    smoke={"testbed": "flocklab", "levels": [0, 1], "iterations": 2},
    legacy_alias=True,
)
def _run_interference(spec: InterferenceSpec, ctx) -> list[dict[str, float]]:
    from repro.core.config import ProtocolConfig, S3Config, S4Config
    from repro.core.s3 import S3Engine
    from repro.core.s4 import S4Engine
    from repro.phy.interference import dcube_jamming

    bed = ctx.deployment
    nodes = bed.topology.node_ids
    degree = degree_for(len(nodes))
    base = ProtocolConfig(degree=degree, crypto_mode=spec.crypto_mode)
    rows = []
    for level in spec.levels:
        field = dcube_jamming(level, bed.topology.bounding_box())
        s3 = S3Engine(
            bed.topology,
            bed.channel,
            S3Config(base=base, ntx=bed.full_coverage_ntx),
            interference=field,
        )
        s4 = S4Engine(
            bed.topology,
            bed.channel,
            S4Config(
                base=base,
                sharing_ntx=bed.extras.get("s4_sharing_ntx", bed.sharing_ntx),
                reconstruction_ntx=bed.full_coverage_ntx,
                collector_redundancy=bed.extras.get("s4_redundancy", 1),
            ),
            interference=field,
        )
        row: dict[str, float] = {"level": float(level)}
        for label, engine in (("s3", s3), ("s4", s4)):
            try:
                # Streaming wire format (see faults): the jamming sweep's
                # biggest configurations are exactly the ones that should
                # not hold per-node round maps.
                results = run_rounds(
                    engine,
                    nodes,
                    spec.iterations,
                    stable_seed(spec.seed, level, label),
                    metrics="summary",
                )
            except (ProtocolError, ConfigurationError):
                row[f"{label}_success"] = 0.0
                row[f"{label}_latency_ms"] = float("nan")
                continue
            latencies = [
                r.max_latency_us / 1000.0 for r in results if r.has_latency
            ]
            row[f"{label}_success"] = sum(
                r.success_fraction for r in results
            ) / len(results)
            row[f"{label}_latency_ms"] = (
                summarize(latencies).mean if latencies else float("nan")
            )
        rows.append(row)
    return rows


# -- lifetime ------------------------------------------------------------------


def _lifetime_table(result) -> str:
    out = result.payload
    table = format_table(
        ["variant", "projected lifetime (days)", "campaign reliability"],
        [
            ["S3", out["s3_lifetime_days"], f"{out['s3_reliability']:.2f}"],
            ["S4", out["s4_lifetime_days"], f"{out['s4_reliability']:.2f}"],
        ],
        title=f"Battery lifetime projection — {result.deployment} "
        "(96 rounds/day, AA-class cell, first-node-death)",
    )
    return table + f"\n\nS4 extends network lifetime {out['lifetime_gain']:.1f}x."


@scenario(
    "lifetime",
    spec_type=LifetimeSpec,
    description="battery lifetime projection (extension)",
    table=_lifetime_table,
    smoke={"testbed": "flocklab", "rounds": 2},
    legacy_alias=True,
)
def _run_lifetime(spec: LifetimeSpec, ctx) -> dict[str, float]:
    from repro.core.campaign import run_campaign

    bed = ctx.deployment
    s3, s4 = build_engines(bed, crypto_mode=spec.crypto_mode)
    campaign_s3 = run_campaign(s3, rounds=spec.rounds, seed=spec.seed)
    campaign_s4 = run_campaign(s4, rounds=spec.rounds, seed=spec.seed)
    return {
        "s3_lifetime_days": campaign_s3.lifetime_days(),
        "s4_lifetime_days": campaign_s4.lifetime_days(),
        "s3_reliability": campaign_s3.reliability,
        "s4_reliability": campaign_s4.reliability,
        "lifetime_gain": campaign_s4.lifetime_days() / campaign_s3.lifetime_days(),
    }


# -- privacy -------------------------------------------------------------------


def _privacy_table(result) -> str:
    payload = result.payload
    return format_table(
        ["coalition", "size", "breaches threshold", "secrets recovered"],
        [
            [
                "below threshold",
                payload["below"]["coalition_size"],
                payload["below"]["breaches_threshold"],
                payload["below"]["recovered_count"],
            ],
            [
                "above threshold",
                payload["above"]["coalition_size"],
                payload["above"]["breaches_threshold"],
                payload["above"]["recovered_count"],
            ],
        ],
        title=f"Semi-honest coalition experiment — {result.deployment} "
        f"(degree {payload['degree']})",
    )


@scenario(
    "privacy",
    spec_type=PrivacySpec,
    description="coalition privacy experiment",
    table=_privacy_table,
    check=lambda payload: payload["below"]["recovered_count"] == 0,
    smoke={"testbed": "flocklab"},
    legacy_alias=True,
)
def _run_privacy(spec: PrivacySpec, ctx) -> dict[str, Any]:
    from repro.privacy.analysis import run_protocol_coalition_experiment

    bed = ctx.deployment
    _, s4 = build_engines(bed, crypto_mode=spec.crypto_mode)
    nodes = bed.topology.node_ids
    secrets = round_secrets(nodes, 0)
    degree = s4.config.degree
    collectors = list(s4.bootstrap_for(nodes).collectors)

    def outcome(members) -> dict[str, Any]:
        report = run_protocol_coalition_experiment(
            s4, secrets, members, seed=spec.seed
        )
        return {
            "coalition_size": int(report["coalition_size"]),
            "breaches_threshold": bool(report["breaches_threshold"]),
            "recovered_count": len(report["recovered_secrets"]),
        }

    return {
        "degree": degree,
        "num_nodes": len(nodes),
        "below": outcome(collectors[:degree]),
        "above": outcome(collectors[: degree + 1]),
    }


# -- sharded (and its grid/sweep variants) -------------------------------------


def _sharded_outcome(
    deployment,
    cells: int,
    iterations: int,
    seed: int,
    metrics: str,
    simulate: bool | None,
    crypto_mode: CryptoMode,
    executor,
):
    """Plan, execute, and cross-aggregate one sharded campaign."""
    from repro.analysis.sharding import (
        ShardedResult,
        cross_cell_aggregate,
        plan_cell_units,
    )

    units = plan_cell_units(
        deployment,
        cells,
        iterations,
        seed,
        metrics=metrics,
        simulate=simulate,
        crypto_mode=crypto_mode,
    )
    results = executor.run_units(units)
    totals, degree = cross_cell_aggregate(results, iterations, seed)
    prime = PrimeField().prime
    expected = tuple(
        sum(cell.expected[round_index] for cell in results) % prime
        for round_index in range(iterations)
    )
    return ShardedResult(
        cells=tuple(results),
        totals=totals,
        expected=expected,
        cross_degree=degree,
        iterations=iterations,
        seed=seed,
    )


def _cell_rows(result_payload) -> list[dict]:
    rows = []
    for cell in result_payload.cells:
        if cell.rounds:
            success = sum(r.success_fraction for r in cell.rounds) / len(cell.rounds)
        else:  # MPC-only cells have no radio schedule to measure
            success = float("nan")
        rows.append(
            {
                "cell": cell.index,
                "nodes": len(cell.node_ids),
                "reconstructed_rounds": sum(
                    1 for value in cell.sums if value is not None
                ),
                "matched_rounds": sum(
                    1 for a, b in zip(cell.sums, cell.expected) if a == b
                ),
                "success_fraction": round(success, 4) if success == success else success,
            }
        )
    return rows


def _sharded_table(result) -> str:
    payload = result.payload
    iterations = payload.iterations
    rows = _cell_rows(payload)
    table = format_table(
        ["cell", "nodes", "rounds ok", "rounds match", "success"],
        [
            [
                r["cell"],
                r["nodes"],
                f"{r['reconstructed_rounds']}/{iterations}",
                f"{r['matched_rounds']}/{iterations}",
                f"{r['success_fraction']:.2f}"
                if r["success_fraction"] == r["success_fraction"]
                else "-",
            ]
            for r in rows
        ],
        title=f"Sharded campaign — {result.deployment}: "
        f"{payload.num_nodes} nodes in {payload.num_cells} MPC cells "
        f"({result.backend.get('metrics', 'full')} metrics)",
    )
    return table + (
        f"\n\nCross-cell aggregate (degree {payload.cross_degree}) matches "
        f"the flat deployment sum in {payload.matched_rounds}/"
        f"{iterations} rounds."
    )


def _encode_sharded(payload) -> dict:
    return {
        "num_nodes": payload.num_nodes,
        "num_cells": payload.num_cells,
        "iterations": payload.iterations,
        "seed": payload.seed,
        "cross_degree": payload.cross_degree,
        "totals": list(payload.totals),
        "expected": list(payload.expected),
        "matched_rounds": payload.matched_rounds,
        "all_match": payload.all_match,
        "cell_sizes": [len(cell.node_ids) for cell in payload.cells],
        "cells": _cell_rows(payload),
    }


@scenario(
    "sharded",
    spec_type=ShardedSpec,
    description="sharded MPC cells + cross-cell aggregation",
    encode=_encode_sharded,
    table=_sharded_table,
    rows=_cell_rows,
    check=lambda payload: payload.all_match,
    smoke={"testbed": "flocklab", "cells": 4, "iterations": 2},
    legacy_alias=True,
)
def _run_sharded(spec: ShardedSpec, ctx):
    return _sharded_outcome(
        ctx.deployment,
        spec.cells,
        spec.iterations,
        spec.seed,
        metrics=ctx.metrics,
        simulate=spec.simulate,
        crypto_mode=spec.crypto_mode,
        executor=ctx.executor(),
    )


# -- chaos (new): fault-injected sharded campaigns ------------------------------


def _chaos_rows(payload) -> list[dict]:
    rows = []
    for index, summary in enumerate(payload.summaries):
        total = payload.totals[index]
        rows.append(
            {
                "round": index,
                "lost_points": summary.lost_cells,
                "recovered_cells": summary.recovered_cells,
                "surviving_points": summary.completed_count,
                "total": total,
                "expected": payload.expected[index],
                "match": total == payload.expected[index],
            }
        )
    return rows


def _chaos_table(result) -> str:
    payload = result.payload
    num_points = max(payload.num_cells, payload.cross_degree + 1)
    table = format_table(
        ["round", "lost", "recovered", "points", "total", "match"],
        [
            [
                r["round"],
                r["lost_points"],
                r["recovered_cells"],
                f"{r['surviving_points']}/{num_points}",
                "-" if r["total"] is None else r["total"],
                "yes" if r["match"] else "DEGRADED",
            ]
            for r in _chaos_rows(payload)
        ],
        title=f"Chaos campaign — {result.deployment}: "
        f"{payload.num_nodes} nodes in {payload.num_cells} cells, "
        f"replication {payload.replication}, "
        f"{len(payload.faults.events)} injected faults",
    )
    return table + (
        f"\n\nSurvivable point losses per round: "
        f"{payload.survivable_losses} (cross degree "
        f"{payload.cross_degree}); matched {payload.matched_rounds}/"
        f"{payload.iterations} rounds, {len(payload.degraded)} degraded, "
        f"{payload.worker_retries} worker retries, redundancy overhead "
        f"{payload.redundancy_overhead:.1f}x."
    )


def _encode_chaos(payload) -> dict:
    import dataclasses as _dataclasses

    return {
        "num_nodes": payload.num_nodes,
        "num_cells": payload.num_cells,
        "iterations": payload.iterations,
        "seed": payload.seed,
        "cross_degree": payload.cross_degree,
        "replication": payload.replication,
        "survivable_losses": payload.survivable_losses,
        "totals": list(payload.totals),
        "expected": list(payload.expected),
        "matched_rounds": payload.matched_rounds,
        "all_match": payload.all_match,
        "exact_under_loss": payload.exact_under_loss,
        "faults": payload.faults.to_dict(),
        "degraded": [_dataclasses.asdict(d) for d in payload.degraded],
        "lost_points": [list(entry) for entry in payload.lost_points],
        "recovered": [list(entry) for entry in payload.recovered],
        "worker_retries": payload.worker_retries,
        "units_run": payload.units_run,
        "redundancy_overhead": payload.redundancy_overhead,
        "rounds": _chaos_rows(payload),
    }


def _chaos_ok(payload) -> bool:
    # The degradation contract: every round either reproduced the flat
    # sum exactly or is a recorded DegradedRound — a wrong total is
    # never acceptable, degraded rounds only in allow_degraded mode.
    return (
        payload.exact_under_loss
        and payload.matched_rounds + len(payload.degraded)
        == payload.iterations
    )


@scenario(
    "chaos",
    spec_type=ChaosSpec,
    description="fault-injected sharded campaign "
    "(deterministic chaos + coded redundancy)",
    encode=_encode_chaos,
    table=_chaos_table,
    rows=_chaos_rows,
    check=_chaos_ok,
    smoke={
        "testbed": "flocklab",
        "cells": 4,
        "iterations": 2,
        "replication": 2,
        "faults": {
            "events": [
                {"kind": "corrupt", "cell": 1, "round": 0},
                {"kind": "crash", "cell": 2, "round": 1},
                {"kind": "kill_worker", "cell": 0, "kills": 1},
            ]
        },
    },
)
def _run_chaos(spec: ChaosSpec, ctx):
    from repro.chaos import run_chaos_campaign

    return run_chaos_campaign(
        ctx.deployment,
        spec.cells,
        spec.iterations,
        spec.seed,
        faults=spec.faults,
        replication=spec.replication,
        metrics=ctx.metrics,
        simulate=spec.simulate,
        crypto_mode=spec.crypto_mode,
        executor=ctx.executor(),
        max_attempts=spec.max_attempts,
        backoff_s=spec.retry_backoff_s,
        strict=not spec.allow_degraded,
    )


# -- metering (new): the paper's motivating scenario as a billing window -------


def _metering_table(result) -> str:
    payload = result.payload
    table = format_table(
        ["period", "true total (Wh)", "aggregated (Wh)", "latency ms", "retries"],
        [
            [
                r["period"],
                r["true_total_wh"],
                r["aggregate_wh"],
                r["latency_ms"],
                r["retries"],
            ]
            for r in payload["periods"]
        ],
        title=f"Smart-metering billing window — {result.deployment} "
        f"({len(payload['periods'])} periods)",
    )
    return table + (
        f"\n\nBilling-window total: {payload['window_total_wh']} Wh across "
        f"{len(payload['periods'])} periods; every period aggregated privately."
    )


@scenario(
    "metering",
    spec_type=MeteringSpec,
    description="smart-metering billing-window aggregate (new workload)",
    table=_metering_table,
    rows=lambda payload: payload["periods"],
    check=lambda payload: payload["all_correct"],
    smoke={"testbed": "flocklab", "periods": 1, "crypto_mode": "stub"},
)
def _run_metering(spec: MeteringSpec, ctx) -> dict[str, Any]:
    bed = ctx.deployment
    _, engine = build_engines(bed, crypto_mode=spec.crypto_mode)
    nodes = bed.topology.node_ids
    rows: list[dict[str, Any]] = []
    window_total = 0
    period = 0
    attempt = 0
    while len(rows) < spec.periods:
        # The consumption model is shared with the service load
        # generator, so batch billing totals are the service oracle.
        readings = {
            node: metering_reading(node, period, spec.base_load_wh)
            for node in nodes
        }
        metrics = engine.run(readings, seed=spec.seed + period * 13 + attempt)
        if metrics.all_correct:
            total = sum(readings.values())
            window_total += total
            rows.append(
                {
                    "period": period,
                    "true_total_wh": total,
                    "aggregate_wh": metrics.expected_aggregate,
                    "latency_ms": round(metrics.max_latency_us / 1000.0, 3),
                    "mean_radio_ms": round(metrics.mean_radio_on_us / 1000.0, 3),
                    "retries": attempt,
                }
            )
            period += 1
            attempt = 0
        else:
            # A head-end re-runs a round that did not converge; the retry
            # costs one round of latency, never privacy.
            attempt += 1
            if attempt > spec.max_retries:
                raise ProtocolError(
                    f"billing period {period} failed to converge after "
                    f"{spec.max_retries} retries"
                )
    return {
        "periods": rows,
        "window_total_wh": window_total,
        "all_correct": all(
            r["true_total_wh"] == r["aggregate_wh"] for r in rows
        ),
    }


# -- quickstart (new): one private round on a generated grid -------------------


def _quickstart_table(result) -> str:
    payload = result.payload
    table = format_table(
        ["node", "aggregate", "latency ms", "radio ms"],
        [
            [
                r["node"],
                r["aggregate"] if r["aggregate"] is not None else "-",
                r["latency_ms"] if r["latency_ms"] is not None else "never",
                r["radio_ms"],
            ]
            for r in payload["per_node"]
        ],
        title=f"Quickstart — {payload['num_nodes']} nodes, "
        f"true sum {payload['true_sum']}",
    )
    verdict = (
        f"all {payload['num_nodes']} nodes agree on the sum "
        f"{payload['expected_aggregate']} — and none ever saw a raw reading."
        if payload["all_correct"]
        else "round did not converge; re-run with a different seed."
    )
    return table + "\n\n" + verdict


@scenario(
    "quickstart",
    spec_type=QuickstartSpec,
    description="one private-aggregation round on a small generated grid (new)",
    table=_quickstart_table,
    check=lambda payload: payload["all_correct"],
    smoke={},
)
def _run_quickstart(spec: QuickstartSpec, ctx) -> dict[str, Any]:
    from repro.core.config import ProtocolConfig, S4Config
    from repro.core.s4 import S4Engine
    from repro.phy.channel import ChannelParameters
    from repro.topology.generators import grid

    topology = grid(
        spec.columns,
        spec.rows,
        spacing_m=spec.spacing_m,
        jitter_m=spec.jitter_m,
        seed=spec.topology_seed,
    )
    # Indoor 2.4 GHz channel (log-distance path loss + mild shadowing).
    channel = ChannelParameters(
        path_loss_exponent=4.0,
        reference_loss_db=52.0,
        shadowing_sigma_db=1.0,
    )
    config = S4Config(
        base=ProtocolConfig(degree=spec.degree, crypto_mode=spec.crypto_mode),
        sharing_ntx=spec.sharing_ntx,
        reconstruction_ntx=spec.reconstruction_ntx,
        collector_redundancy=spec.redundancy,
        bootstrap_iterations=spec.bootstrap_iterations,
    )
    engine = S4Engine(topology, channel, config)
    readings = {node: 3 + (node * 7) % 11 for node in topology.node_ids}
    metrics = engine.run(readings, seed=spec.seed)
    per_node = [
        {
            "node": node,
            "aggregate": m.aggregate,
            "latency_ms": round(m.latency_us / 1000.0, 3) if m.latency_us else None,
            "radio_ms": round(m.radio_on_us / 1000.0, 3),
        }
        for node, m in sorted(metrics.per_node.items())
    ]
    return {
        "num_nodes": len(topology),
        "readings": [[node, readings[node]] for node in topology.node_ids],
        "true_sum": sum(readings.values()),
        "expected_aggregate": metrics.expected_aggregate,
        "per_node": per_node,
        "all_correct": metrics.all_correct,
    }


# -- sharded_grid (new): the 10k-node MPC-only demo as a scenario --------------


def _grid_deployment(spec) -> tuple[Any, int, int]:
    """The generated-grid deployment shared by the grid scenarios."""
    from repro.topology.generators import grid
    from repro.topology.graph import Topology

    columns = max(1, round(spec.nodes**0.5))
    rows = -(-spec.nodes // columns)
    full = grid(
        columns,
        rows,
        spacing_m=spec.spacing_m,
        jitter_m=spec.jitter_m,
        seed=spec.grid_seed,
    )
    keep = full.node_ids[: spec.nodes]
    topology = Topology(
        {node: full.position(node) for node in keep},
        name=f"grid-{spec.nodes}",
    )
    return topology, columns, rows


def _grid_sharded_table(result) -> str:
    payload = result.payload
    marker = "bit for bit" if payload["matches_flat"] else "MISMATCH vs flat oracle"
    return (
        f"sharded grid: {payload['nodes']} nodes "
        f"({payload['columns']}x{payload['rows']}) in {payload['num_cells']} "
        f"MPC cells (cross-cell degree {payload['cross_degree']}) — "
        f"{payload['matched_rounds']}/{payload['iterations']} rounds match "
        f"the flat deployment sums, {marker}."
    )


@scenario(
    "sharded_grid",
    spec_type=GridShardedSpec,
    description="MPC-only sharded campaign over a generated grid (new, 10k+ nodes)",
    table=_grid_sharded_table,
    check=lambda payload: payload["all_match"] and payload["matches_flat"],
    smoke={"nodes": 200, "cells": 8, "iterations": 2},
)
def _run_sharded_grid(spec: GridShardedSpec, ctx) -> dict[str, Any]:
    from repro.analysis.sharding import flat_expected_sums

    topology, columns, rows = _grid_deployment(spec)
    result = _sharded_outcome(
        topology,
        spec.cells,
        spec.iterations,
        spec.seed,
        metrics="summary",
        simulate=None,
        crypto_mode=CryptoMode.STUB,
        executor=ctx.executor(),
    )
    flat = flat_expected_sums(topology.node_ids, spec.iterations)
    return {
        "nodes": spec.nodes,
        "columns": columns,
        "rows": rows,
        "num_cells": result.num_cells,
        "iterations": spec.iterations,
        "seed": spec.seed,
        "cross_degree": result.cross_degree,
        "totals": list(result.totals),
        "expected": list(result.expected),
        "flat_expected": list(flat),
        "matched_rounds": result.matched_rounds,
        "all_match": result.all_match,
        "matches_flat": tuple(result.totals) == flat,
        "cell_sizes": [len(cell.node_ids) for cell in result.cells],
    }


# -- cells_sweep (new): the exactness contract across shard granularities ------


def _cells_sweep_table(result) -> str:
    return format_table(
        ["cells", "min cell", "max cell", "cross degree", "rounds match", "exact"],
        [
            [
                r["cells"],
                r["min_cell"],
                r["max_cell"],
                r["cross_degree"],
                f"{r['matched_rounds']}/{r['iterations']}",
                "yes" if r["all_match"] else "NO",
            ]
            for r in result.payload
        ],
        title="Mixed-cell-size sharded sweep — same deployment, "
        "every shard granularity must reproduce the flat sums",
    )


@scenario(
    "cells_sweep",
    spec_type=CellsSweepSpec,
    description="mixed-cell-size sharded sweep over one grid deployment (new)",
    table=_cells_sweep_table,
    rows=lambda payload: payload,
    check=lambda payload: all(r["all_match"] for r in payload),
    smoke={"nodes": 120, "cell_counts": [2, 3], "iterations": 2},
)
def _run_cells_sweep(spec: CellsSweepSpec, ctx) -> list[dict[str, Any]]:
    from repro.analysis.sharding import flat_expected_sums

    topology, _, _ = _grid_deployment(spec)
    flat = flat_expected_sums(topology.node_ids, spec.iterations)
    rows = []
    for cells in spec.cell_counts:
        result = _sharded_outcome(
            topology,
            cells,
            spec.iterations,
            spec.seed,
            metrics="summary",
            simulate=None,
            crypto_mode=CryptoMode.STUB,
            executor=ctx.executor(),
        )
        sizes = [len(cell.node_ids) for cell in result.cells]
        rows.append(
            {
                "cells": result.num_cells,
                "min_cell": min(sizes),
                "max_cell": max(sizes),
                "cross_degree": result.cross_degree,
                "iterations": spec.iterations,
                "matched_rounds": result.matched_rounds,
                "all_match": result.all_match
                and tuple(result.totals) == flat,
            }
        )
    return rows


# -- service_soak (new): the crash-safe aggregation daemon under load ----------


def _service_soak_table(result) -> str:
    payload = result.payload
    table = format_table(
        [
            "window",
            "accepted",
            "devices",
            "total (Wh)",
            "oracle (Wh)",
            "exact",
            "recovered",
            "close ms",
        ],
        [
            [
                r["window"],
                r["accepted"],
                r["devices"],
                r["total"],
                r["oracle_wh"],
                "yes" if r["exact"] else "NO",
                "yes" if r["recovered"] else "-",
                r["close_ms"],
            ]
            for r in payload["windows"]
        ],
        title=(
            f"Service soak — {len(payload['windows'])} windows, "
            f"{payload['shards']} shard(s), {payload['producers']} "
            f"producer(s) over {payload['transport']}, "
            f"{payload['kills']} hard kill(s)"
        ),
    )
    billing = payload.get("billing_exact")
    return table + (
        f"\n\nIngested {payload['accepted']} shares "
        f"({payload['shares_per_sec']}/s), journals hold "
        f"{payload['journal_records']} records; "
        f"{payload['duplicates_rejected']} duplicate and "
        f"{payload['late_rejected']} late re-sends refused; "
        f"p99 window close {payload['p99_close_ms']} ms; "
        f"store holds {payload['store_windows']} window(s), per-device "
        f"billing {'exact' if billing else 'n/a' if billing is None else 'WRONG'}."
    )


@scenario(
    "service_soak",
    spec_type=ServiceSoakSpec,
    description="sharded aggregation service soak (kill/restart bit-identity)",
    table=_service_soak_table,
    rows=lambda payload: payload["windows"],
    check=lambda payload: payload["all_exact"]
    and payload["oracle_match"]
    and payload["billing_exact"] is not False,
    smoke={
        "devices": 8,
        "windows": 2,
        "cells": 2,
        "shards": 2,
        "producers": 2,
        "transport": "queue",
        "kill_at": [5],
        "duplicate_every": 3,
    },
)
def _run_service_soak(spec: ServiceSoakSpec, ctx) -> dict[str, Any]:
    from repro.service.soak import run_service_soak

    return run_service_soak(spec)
