"""S3 — the naive SSS-over-MiniCast mapping.

The paper's baseline: "The two rounds of SSS directly map to two rounds
of MiniCast."  Concretely:

* every node is a share destination, so the sharing chain has
  ``s × n`` sub-slots (``O(n²)`` at full participation);
* without bootstrapping insight, the deployment provisions the
  conservative full-coverage NTX for both phases and sizes rounds with
  the worst-case budget-exhaustion bound;
* radios stay on for the entire scheduled round (``ALWAYS_ON``) — every
  node is a destination for every source, so no node can justify
  sleeping early.
"""

from __future__ import annotations

from typing import Sequence

from repro.ct.minicast import RadioOffPolicy
from repro.ct.packet import ChainLayout
from repro.ct.slots import RoundSchedule
from repro.core.bootstrap import network_depth
from repro.core.config import S3Config
from repro.core.protocol import AggregationEngine, PhasePlan
from repro.phy.channel import ChannelParameters
from repro.topology.graph import Topology
from repro.topology.testbeds import TestbedSpec


class S3Engine(AggregationEngine):
    """The naive protocol variant."""

    def __init__(
        self,
        topology: Topology,
        channel: ChannelParameters,
        config: S3Config,
        interference=None,
    ):
        super().__init__(topology, channel, config.base, interference=interference)
        self._s3 = config
        self._depth: int | None = None

    @classmethod
    def for_testbed(cls, spec: TestbedSpec, config: S3Config | None = None) -> "S3Engine":
        """Build an S3 engine with the paper's testbed parameters."""
        return cls(
            spec.topology,
            spec.channel,
            config if config is not None else S3Config.for_testbed(spec),
        )

    @property
    def s3_config(self) -> S3Config:
        """Variant-specific settings."""
        return self._s3

    @property
    def variant_name(self) -> str:
        """Report label."""
        return "S3"

    def _network_depth(self) -> int:
        if self._depth is None:
            # Depth is a property of the good-link graph; measure it at
            # the sharing frame size (the more pessimistic of the two).
            from repro.ct.packet import sharing_psdu_bytes

            frame = self.config.timings.phy_overhead_bytes + sharing_psdu_bytes()
            self._depth = network_depth(self.links_for(frame))
        return self._depth

    def destinations(self, sources: Sequence[int]) -> list[int]:
        """Naive SSS: every node holds a share of every source."""
        return list(self._topology.node_ids)

    def chain_sources(self, sources: Sequence[int]) -> list[int]:
        """Static n² chain: every node owns a row, filled or not."""
        return list(self._topology.node_ids)

    def sharing_plan(self, layout: ChainLayout) -> PhasePlan:
        """Budget-exhaustion schedule at the conservative NTX, radios on."""
        schedule = RoundSchedule.plan(
            chain_length=len(layout),
            psdu_bytes=layout.psdu_bytes,
            ntx=self._s3.ntx,
            depth_hint=self._network_depth(),
            timings=self.config.timings,
            slack=self.config.slack_slots,
        )
        return PhasePlan(schedule=schedule, policy=RadioOffPolicy.ALWAYS_ON)

    def reconstruction_plan(self, layout: ChainLayout) -> PhasePlan:
        """Same conservative parameters for the reconstruction flood."""
        schedule = RoundSchedule.plan(
            chain_length=len(layout),
            psdu_bytes=layout.psdu_bytes,
            ntx=self._s3.ntx,
            depth_hint=self._network_depth(),
            timings=self.config.timings,
            slack=self.config.slack_slots,
        )
        return PhasePlan(schedule=schedule, policy=RadioOffPolicy.ALWAYS_ON)
