"""Packet data path: share encryption and sum serialization.

This module is where bytes actually get built and parsed:

* **Share packets** (sharing phase) — a field element packed into one
  16-byte block, AES-128-CTR encrypted under the (source, destination)
  pairwise key with a per-round nonce, plus a truncated CBC-MAC tag under
  an independently derived MAC key.  The paper: "each packet is encrypted
  using AES-128" with keys "already shared ... during the bootstrapping
  phase".
* **Sum packets** (reconstruction phase) — plain text per the paper
  ("the reconstruction phase runs in plane text"): the field sum plus a
  contributor bitmap that lets reconstructors group sums by contributor
  set (the consistency mechanism DESIGN.md §5 describes).

A :class:`StubShareCodec` with the same interface supports
:class:`repro.core.config.CryptoMode.STUB` — identical sizes and layout,
no cipher work — so big simulation sweeps don't pay for cryptography that
cannot change the measured metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keystore import PairwiseKeyStore, derive_pairwise_key
from repro.crypto.mac import cbc_mac, verify_mac
from repro.crypto.modes import ctr_transform
from repro.errors import AuthenticationError, CryptoError, PacketError
from repro.field.prime_field import FieldElement, PrimeField

#: Width of the encrypted share value field (one AES block).
SHARE_BLOCK_BYTES = 16


@dataclass(frozen=True, slots=True)
class SharePacket:
    """Wire form of one sharing-phase sub-slot payload."""

    source: int
    destination: int
    ciphertext: bytes
    tag: bytes


class RealShareCodec:
    """AES-128-CTR + CBC-MAC share protection under pairwise keys.

    Each node pair has two independent keys (encryption, MAC) derived
    from the network master secret; the CTR nonce binds round, source and
    destination so no (key, nonce) pair ever repeats across a campaign.
    """

    __slots__ = ("_enc_store", "_mac_store", "_tag_bytes")

    def __init__(
        self,
        node_id: int,
        peers,
        master_secret: bytes,
        tag_bytes: int = 4,
    ):
        self._enc_store = PairwiseKeyStore(node_id)
        self._mac_store = PairwiseKeyStore(node_id)
        for peer in peers:
            if peer == node_id:
                continue
            self._enc_store.install_key(
                peer, derive_pairwise_key(master_secret + b"|enc", node_id, peer)
            )
            self._mac_store.install_key(
                peer, derive_pairwise_key(master_secret + b"|mac", node_id, peer)
            )
        self._tag_bytes = tag_bytes

    @property
    def node_id(self) -> int:
        """The node this codec belongs to."""
        return self._enc_store.node_id

    @staticmethod
    def _nonce(round_nonce: int, source: int, destination: int) -> bytes:
        return (
            round_nonce.to_bytes(8, "big")
            + source.to_bytes(4, "big")
            + destination.to_bytes(4, "big")
        )

    @staticmethod
    def _nonce_int(round_nonce: int, source: int, destination: int) -> int:
        """The same nonce as :meth:`_nonce`, as a 128-bit integer."""
        return (round_nonce << 64) | (source << 32) | destination

    def ciphers_for(self, peer: int):
        """(encryption, MAC) cipher pair shared with ``peer``.

        Exposed for the batched packet pipeline
        (:func:`batch_encrypt_shares` / :func:`batch_decrypt_shares`).
        """
        return self._enc_store.cipher_for(peer), self._mac_store.cipher_for(peer)

    @property
    def tag_bytes(self) -> int:
        """Truncated MAC tag length carried on the wire."""
        return self._tag_bytes

    def supports_batch(self) -> bool:
        """Whether this codec's ciphers can feed the vectorized pipeline.

        Requires table-mode ciphers (the batch kernel reads their word
        key schedules); a codec built while the fast path was disabled
        reports False and keeps the per-packet path.
        """
        peers = self._enc_store.peers()
        if not peers:
            return False
        return self._enc_store.cipher_for(peers[0]).uses_tables

    def encrypt_share(
        self,
        destination: int,
        value: FieldElement,
        round_nonce: int,
    ) -> SharePacket:
        """Encrypt one share destined for ``destination``."""
        source = self.node_id
        plaintext = value.value.to_bytes(SHARE_BLOCK_BYTES, "big")
        cipher = self._enc_store.cipher_for(destination)
        nonce = self._nonce(round_nonce, source, destination)
        ciphertext = ctr_transform(cipher, nonce, plaintext)
        mac_cipher = self._mac_store.cipher_for(destination)
        tag = cbc_mac(mac_cipher, nonce + ciphertext, self._tag_bytes)
        return SharePacket(
            source=source, destination=destination, ciphertext=ciphertext, tag=tag
        )

    def decrypt_share(
        self,
        packet: SharePacket,
        field: PrimeField,
        round_nonce: int,
    ) -> FieldElement:
        """Authenticate and decrypt a share addressed to this node.

        Raises :class:`AuthenticationError` on tag mismatch and
        :class:`CryptoError` on a non-canonical decrypted value — both of
        which a receiver treats as "drop the packet".
        """
        if packet.destination != self.node_id:
            raise CryptoError(
                f"packet for node {packet.destination} handed to node "
                f"{self.node_id}"
            )
        nonce = self._nonce(round_nonce, packet.source, packet.destination)
        mac_cipher = self._mac_store.cipher_for(packet.source)
        verify_mac(mac_cipher, nonce + packet.ciphertext, packet.tag, self._tag_bytes)
        cipher = self._enc_store.cipher_for(packet.source)
        plaintext = ctr_transform(cipher, nonce, packet.ciphertext)
        value = int.from_bytes(plaintext, "big")
        if value >= field.prime:
            raise CryptoError("decrypted share is not a canonical field element")
        return field(value)


#: Precomputed stub checksum tags: tag value (0..250) → tag bytes, one
#: table per tag width.  Saves two allocations per stub packet.
_STUB_TAG_TABLES: dict[int, tuple[bytes, ...]] = {}


def _stub_tags(tag_bytes: int) -> tuple[bytes, ...]:
    table = _STUB_TAG_TABLES.get(tag_bytes)
    if table is None:
        table = tuple(bytes([value]) * tag_bytes for value in range(251))
        _STUB_TAG_TABLES[tag_bytes] = table
    return table


class StubShareCodec:
    """Zero-cost stand-in with identical packet shapes.

    The "ciphertext" is the plaintext XORed with a (source, destination,
    round) tag, so accidentally reading a stub packet at the wrong node
    still fails loudly, and the tag is a 4-byte checksum.  Only for
    metric sweeps; privacy tests always use :class:`RealShareCodec`.
    """

    __slots__ = ("_node_id", "_tag_bytes", "_tags")

    def __init__(self, node_id: int, tag_bytes: int = 4):
        self._node_id = node_id
        self._tag_bytes = tag_bytes
        self._tags = _stub_tags(tag_bytes)

    @property
    def node_id(self) -> int:
        """The node this codec belongs to."""
        return self._node_id

    @staticmethod
    def _pad(round_nonce: int, source: int, destination: int) -> int:
        # & (2^128 - 1) is the same reduction as % 2^128 for non-negative
        # operands, without the division.
        return (
            round_nonce * 0x9E3779B97F4A7C15 + source * 0x100000001B3 + destination
        ) & ((1 << (8 * SHARE_BLOCK_BYTES)) - 1)

    def supports_batch(self) -> bool:
        """The stub pipeline always batches (pure-int ops, no numpy)."""
        return True

    def encrypt_share(
        self, destination: int, value: FieldElement, round_nonce: int
    ) -> SharePacket:
        """Tag-XOR 'encryption' with real packet dimensions."""
        plaintext = value.value ^ self._pad(round_nonce, self._node_id, destination)
        ciphertext = plaintext.to_bytes(SHARE_BLOCK_BYTES, "big")
        tag = self._tags[sum(ciphertext) % 251]
        return SharePacket(
            source=self._node_id,
            destination=destination,
            ciphertext=ciphertext,
            tag=tag,
        )

    def decrypt_share(
        self, packet: SharePacket, field: PrimeField, round_nonce: int
    ) -> FieldElement:
        """Inverse of the tag-XOR; checks the checksum tag."""
        if packet.destination != self._node_id:
            raise CryptoError(
                f"packet for node {packet.destination} handed to node "
                f"{self._node_id}"
            )
        expected_tag = self._tags[sum(packet.ciphertext) % 251]
        if packet.tag != expected_tag:
            raise AuthenticationError("stub tag mismatch")
        value = int.from_bytes(packet.ciphertext, "big") ^ self._pad(
            round_nonce, packet.source, packet.destination
        )
        if value >= field.prime:
            raise CryptoError("stub share is not a canonical field element")
        return field(value)


# -- batched share protection (numpy-accelerated REAL mode) -------------------
#
# A sharing round protects hundreds of packets under independent pairwise
# keys; batching amortises the AES round function across all of them (see
# :mod:`repro.crypto.aesbatch`).  Outputs are bit-identical to the
# per-packet methods above, and both helpers require the caller to have
# checked ``aesbatch.HAVE_NUMPY``.

#: Below this many packets the numpy setup costs more than it saves.
BATCH_THRESHOLD = 8


def batch_encrypt_shares(
    entries: "list[tuple[RealShareCodec, int, int]]",
    round_nonce: int,
) -> list[SharePacket]:
    """Encrypt many (codec, destination, value) shares in one batch.

    Bit-identical to calling ``codec.encrypt_share`` per entry.
    """
    from repro.crypto import aesbatch

    enc_ciphers = []
    mac_ciphers = []
    nonces = []
    plaintexts = []
    tag_bytes = None
    for codec, destination, value_int in entries:
        enc, mac = codec.ciphers_for(destination)
        enc_ciphers.append(enc)
        mac_ciphers.append(mac)
        nonces.append(codec._nonce_int(round_nonce, codec.node_id, destination))
        plaintexts.append(value_int)
        tag_bytes = codec.tag_bytes
    ciphertexts, tags = aesbatch.ctr_cbc_mac_batch(
        enc_ciphers, mac_ciphers, nonces, plaintexts, tag_bytes
    )
    return [
        SharePacket(
            source=codec.node_id,
            destination=destination,
            ciphertext=ct.to_bytes(SHARE_BLOCK_BYTES, "big"),
            tag=tag,
        )
        for (codec, destination, _), ct, tag in zip(entries, ciphertexts, tags)
    ]


def batch_decrypt_values(
    entries: "list[tuple[RealShareCodec, SharePacket]]",
    field: PrimeField,
    round_nonce: int,
) -> list[int | None]:
    """Authenticate and decrypt many received shares in one batch.

    Each entry is (receiving codec, packet addressed to it).  Returns the
    decrypted canonical residue per entry, or ``None`` where the scalar
    path would have raised (tag mismatch, non-canonical value) — the
    caller treats those as dropped packets.  Raw ints keep the share-sum
    fold allocation-free; :func:`batch_decrypt_shares` wraps them when
    elements are wanted.
    """
    from repro.crypto import aesbatch

    enc_ciphers = []
    mac_ciphers = []
    nonces = []
    ciphertexts = []
    tag_bytes = None
    for codec, packet in entries:
        if packet.destination != codec.node_id:
            raise CryptoError(
                f"packet for node {packet.destination} handed to node "
                f"{codec.node_id}"
            )
        enc, mac = codec.ciphers_for(packet.source)
        enc_ciphers.append(enc)
        mac_ciphers.append(mac)
        nonces.append(
            codec._nonce_int(round_nonce, packet.source, packet.destination)
        )
        ciphertexts.append(int.from_bytes(packet.ciphertext, "big"))
        tag_bytes = codec.tag_bytes
    plaintexts, expected_tags = aesbatch.ctr_cbc_mac_batch(
        enc_ciphers,
        mac_ciphers,
        nonces,
        ciphertexts,
        tag_bytes,
        mac_over_input=True,
    )
    results: list[int | None] = []
    prime = field.prime
    for (codec, packet), plaintext, expected in zip(
        entries, plaintexts, expected_tags
    ):
        if packet.tag != expected or plaintext >= prime:
            results.append(None)
        else:
            results.append(plaintext)
    return results


def batch_decrypt_shares(
    entries: "list[tuple[RealShareCodec, SharePacket]]",
    field: PrimeField,
    round_nonce: int,
) -> list[FieldElement | None]:
    """:func:`batch_decrypt_values` with element-wrapped results."""
    return [
        None if value is None else FieldElement(field, value)
        for value in batch_decrypt_values(entries, field, round_nonce)
    ]


# -- batched stub share protection (pure-int, no numpy needed) -----------------


def stub_batch_encrypt(
    entries: "list[tuple[StubShareCodec, int, int]]",
    round_nonce: int,
) -> list[SharePacket]:
    """Encrypt many (stub codec, destination, value) shares in one pass.

    Bit-identical to calling ``codec.encrypt_share`` per entry; the win
    is purely interpreter overhead — hoisted pad arithmetic and tag
    tables instead of a method call, two attribute walks and a
    ``FieldElement`` per packet.  STUB campaigns protect thousands of
    packets per sweep, which is why this path exists at all.
    """
    mask = (1 << (8 * SHARE_BLOCK_BYTES)) - 1
    nonce_term = round_nonce * 0x9E3779B97F4A7C15
    packets = []
    for codec, destination, value_int in entries:
        pad = (
            nonce_term + codec._node_id * 0x100000001B3 + destination
        ) & mask
        ciphertext = (value_int ^ pad).to_bytes(SHARE_BLOCK_BYTES, "big")
        packets.append(
            SharePacket(
                source=codec._node_id,
                destination=destination,
                ciphertext=ciphertext,
                tag=codec._tags[sum(ciphertext) % 251],
            )
        )
    return packets


def stub_batch_decrypt(
    entries: "list[tuple[StubShareCodec, SharePacket]]",
    field: PrimeField,
    round_nonce: int,
) -> list[int | None]:
    """Check and un-pad many stub packets; raw residues like the REAL batch.

    ``None`` marks packets the scalar path would reject (tag mismatch,
    non-canonical value, wrong destination is still a hard error).
    """
    mask = (1 << (8 * SHARE_BLOCK_BYTES)) - 1
    nonce_term = round_nonce * 0x9E3779B97F4A7C15
    prime = field.prime
    results: list[int | None] = []
    for codec, packet in entries:
        if packet.destination != codec._node_id:
            raise CryptoError(
                f"packet for node {packet.destination} handed to node "
                f"{codec._node_id}"
            )
        ciphertext = packet.ciphertext
        if packet.tag != codec._tags[sum(ciphertext) % 251]:
            results.append(None)
            continue
        pad = (
            nonce_term + packet.source * 0x100000001B3 + packet.destination
        ) & mask
        value = int.from_bytes(ciphertext, "big") ^ pad
        results.append(value if value < prime else None)
    return results


# -- reconstruction-phase sum packets (plain text) ----------------------------


def encode_sum_packet(
    total: FieldElement,
    contributors,
    num_nodes: int,
    element_size: int,
) -> bytes:
    """Serialize a holder's (sum, contributor bitmap) payload."""
    if any(c < 0 or c >= num_nodes for c in contributors):
        raise PacketError("contributor id outside the network")
    bitmap = 0
    for contributor in contributors:
        bitmap |= 1 << contributor
    bitmap_bytes = (num_nodes + 7) // 8
    return total.value.to_bytes(element_size, "big") + bitmap.to_bytes(
        bitmap_bytes, "big"
    )


def decode_sum_packet(
    payload: bytes,
    field: PrimeField,
    num_nodes: int,
    element_size: int,
) -> tuple[FieldElement, frozenset[int]]:
    """Parse a sum packet back into (sum, contributor set)."""
    bitmap_bytes = (num_nodes + 7) // 8
    if len(payload) != element_size + bitmap_bytes:
        raise PacketError(
            f"sum packet must be {element_size + bitmap_bytes} bytes, "
            f"got {len(payload)}"
        )
    value = int.from_bytes(payload[:element_size], "big")
    if value >= field.prime:
        raise PacketError("sum value is not a canonical field element")
    bitmap = int.from_bytes(payload[element_size:], "big")
    contributors = frozenset(
        node for node in range(num_nodes) if (bitmap >> node) & 1
    )
    return field(value), contributors
