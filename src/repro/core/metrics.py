"""Metric containers for protocol rounds.

The paper's two metrics:

* **Latency** — "time required to obtain the final aggregation in each
  node": sharing-phase schedule duration plus the node's
  reconstruction-phase completion time.
* **Radio-on time** — "time necessary to complete the communication
  process in a round": the node's total TX + RX time across both phases.

:class:`RoundMetrics` carries both per node, plus correctness
book-keeping (did the node reconstruct, did it get the right value, whose
secrets are inside), and offers the summary statistics the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ProtocolError


@dataclass(frozen=True, slots=True)
class NodeMetrics:
    """One node's outcome for one aggregation round.

    Attributes:
        node: node id.
        latency_us: time to the final aggregate at this node (None if the
            node never reconstructed).
        radio_on_us: TX + RX time over both phases.
        tx_us / rx_us: the TX/RX split of ``radio_on_us``.
        aggregate: the reconstructed sum (None on failure).
        contributors: whose secrets the aggregate provably contains.
        correct: aggregate equals the true sum over ``contributors``.
    """

    node: int
    latency_us: int | None
    radio_on_us: int
    tx_us: int
    rx_us: int
    aggregate: int | None
    contributors: frozenset[int]
    correct: bool


@dataclass(frozen=True)
class RoundMetrics:
    """Network-wide outcome of one aggregation round."""

    per_node: dict[int, NodeMetrics]
    expected_aggregate: int
    sources: frozenset[int]
    sharing_duration_us: int
    reconstruction_duration_us: int
    sharing_slots: int
    reconstruction_slots: int
    chain_length_sharing: int
    chain_length_reconstruction: int
    failures: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.per_node:
            raise ProtocolError("round produced no per-node metrics")

    # -- success ---------------------------------------------------------------

    @property
    def nodes(self) -> list[int]:
        """Sorted participating node ids."""
        return sorted(self.per_node)

    @property
    def completed_nodes(self) -> list[int]:
        """Nodes that obtained an aggregate."""
        return [n for n, m in sorted(self.per_node.items()) if m.latency_us is not None]

    @property
    def success_fraction(self) -> float:
        """Fraction of nodes that reconstructed a correct aggregate."""
        correct = sum(1 for m in self.per_node.values() if m.correct)
        return correct / len(self.per_node)

    @property
    def all_correct(self) -> bool:
        """Every node reconstructed the true aggregate of all sources."""
        return all(
            m.correct and m.contributors == self.sources
            for m in self.per_node.values()
        )

    # -- the paper's metrics -----------------------------------------------------

    def latencies_us(self) -> list[int]:
        """Per-node latencies of nodes that completed."""
        return [
            m.latency_us
            for m in self.per_node.values()
            if m.latency_us is not None
        ]

    @property
    def max_latency_us(self) -> int:
        """Network latency: when the *last* node obtained the aggregate."""
        latencies = self.latencies_us()
        if not latencies:
            raise ProtocolError("no node completed; latency undefined")
        return max(latencies)

    @property
    def mean_latency_us(self) -> float:
        """Mean per-node latency over completing nodes."""
        latencies = self.latencies_us()
        if not latencies:
            raise ProtocolError("no node completed; latency undefined")
        return sum(latencies) / len(latencies)

    @property
    def mean_radio_on_us(self) -> float:
        """Mean per-node radio-on time — the paper's energy proxy."""
        values = [m.radio_on_us for m in self.per_node.values()]
        return sum(values) / len(values)

    @property
    def max_radio_on_us(self) -> int:
        """Worst-case per-node radio-on time."""
        return max(m.radio_on_us for m in self.per_node.values())

    @property
    def total_schedule_us(self) -> int:
        """End-to-end scheduled duration of the round."""
        return self.sharing_duration_us + self.reconstruction_duration_us


def summarize_rounds(rounds: Iterable[RoundMetrics]) -> dict[str, float]:
    """Mean-of-rounds summary used by the experiment harness.

    Latency figures are means over rounds of the per-round maximum (the
    network is done when its slowest node is), radio-on figures are means
    of per-round means; both in milliseconds to match the paper's axes.
    """
    rounds = list(rounds)
    if not rounds:
        raise ProtocolError("cannot summarize zero rounds")
    completed = [r for r in rounds if r.latencies_us()]
    summary = {
        "rounds": float(len(rounds)),
        "completed_rounds": float(len(completed)),
        "success_fraction": sum(r.success_fraction for r in rounds) / len(rounds),
        "all_correct_fraction": sum(1.0 for r in rounds if r.all_correct)
        / len(rounds),
        "mean_radio_on_ms": sum(r.mean_radio_on_us for r in rounds)
        / len(rounds)
        / 1000.0,
    }
    if completed:
        summary["latency_ms"] = sum(r.max_latency_us for r in completed) / len(
            completed
        ) / 1000.0
        summary["mean_node_latency_ms"] = sum(
            r.mean_latency_us for r in completed
        ) / len(completed) / 1000.0
    return summary
