"""Metric containers for protocol rounds.

The paper's two metrics:

* **Latency** — "time required to obtain the final aggregation in each
  node": sharing-phase schedule duration plus the node's
  reconstruction-phase completion time.
* **Radio-on time** — "time necessary to complete the communication
  process in a round": the node's total TX + RX time across both phases.

:class:`RoundMetrics` carries both per node, plus correctness
book-keeping (did the node reconstruct, did it get the right value, whose
secrets are inside), and offers the summary statistics the figures plot.

:class:`RoundSummary` is the *streaming* form of the same round: every
aggregate the figures (and the cross-cell aggregation layer) consume —
correctness counts, durations, slot counts, failure counts — with the
dense ``per_node`` mapping dropped.  A sharded campaign returning
summaries keeps worker IPC flat in deployment size: the payload per
round is a fixed handful of scalars however many nodes a cell holds.
Both classes answer the same summary questions (``success_fraction``,
``all_correct``, ``max_latency_us``, ``mean_radio_on_us``, ...), so
:func:`summarize_rounds` and the experiment harness accept either form.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ProtocolError


@dataclass(frozen=True, slots=True)
class NodeMetrics:
    """One node's outcome for one aggregation round.

    Attributes:
        node: node id.
        latency_us: time to the final aggregate at this node (None if the
            node never reconstructed).
        radio_on_us: TX + RX time over both phases.
        tx_us / rx_us: the TX/RX split of ``radio_on_us``.
        aggregate: the reconstructed sum (None on failure).
        contributors: whose secrets the aggregate provably contains.
        correct: aggregate equals the true sum over ``contributors``.
    """

    node: int
    latency_us: int | None
    radio_on_us: int
    tx_us: int
    rx_us: int
    aggregate: int | None
    contributors: frozenset[int]
    correct: bool


@dataclass(frozen=True)
class RoundMetrics:
    """Network-wide outcome of one aggregation round."""

    per_node: dict[int, NodeMetrics]
    expected_aggregate: int
    sources: frozenset[int]
    sharing_duration_us: int
    reconstruction_duration_us: int
    sharing_slots: int
    reconstruction_slots: int
    chain_length_sharing: int
    chain_length_reconstruction: int
    failures: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.per_node:
            raise ProtocolError("round produced no per-node metrics")

    # -- success ---------------------------------------------------------------

    @property
    def nodes(self) -> list[int]:
        """Sorted participating node ids."""
        return sorted(self.per_node)

    @property
    def completed_nodes(self) -> list[int]:
        """Nodes that obtained an aggregate."""
        return [n for n, m in sorted(self.per_node.items()) if m.latency_us is not None]

    @property
    def success_fraction(self) -> float:
        """Fraction of nodes that reconstructed a correct aggregate."""
        correct = sum(1 for m in self.per_node.values() if m.correct)
        return correct / len(self.per_node)

    @property
    def all_correct(self) -> bool:
        """Every node reconstructed the true aggregate of all sources."""
        return all(
            m.correct and m.contributors == self.sources
            for m in self.per_node.values()
        )

    # -- the paper's metrics -----------------------------------------------------

    def latencies_us(self) -> list[int]:
        """Per-node latencies of nodes that completed."""
        return [
            m.latency_us
            for m in self.per_node.values()
            if m.latency_us is not None
        ]

    @property
    def has_latency(self) -> bool:
        """True when at least one node completed (latency is defined)."""
        return any(m.latency_us is not None for m in self.per_node.values())

    @property
    def max_latency_us(self) -> int:
        """Network latency: when the *last* node obtained the aggregate."""
        latencies = self.latencies_us()
        if not latencies:
            raise ProtocolError("no node completed; latency undefined")
        return max(latencies)

    @property
    def mean_latency_us(self) -> float:
        """Mean per-node latency over completing nodes."""
        latencies = self.latencies_us()
        if not latencies:
            raise ProtocolError("no node completed; latency undefined")
        return sum(latencies) / len(latencies)

    @property
    def mean_radio_on_us(self) -> float:
        """Mean per-node radio-on time — the paper's energy proxy."""
        values = [m.radio_on_us for m in self.per_node.values()]
        return sum(values) / len(values)

    @property
    def max_radio_on_us(self) -> int:
        """Worst-case per-node radio-on time."""
        return max(m.radio_on_us for m in self.per_node.values())

    @property
    def total_schedule_us(self) -> int:
        """End-to-end scheduled duration of the round."""
        return self.sharing_duration_us + self.reconstruction_duration_us


#: Accepted per-round metrics payload modes for campaign work units.
METRICS_MODES = ("full", "summary")


def consensus_aggregate(metrics: RoundMetrics) -> int | None:
    """The most common reconstructed aggregate among correct nodes.

    The single consensus rule shared by :meth:`RoundSummary.from_metrics`
    and the sharded campaign's cell sums — tweak it here or the two views
    of a round would silently diverge.
    """
    counter = Counter(
        m.aggregate
        for m in metrics.per_node.values()
        if m.correct and m.aggregate is not None
    )
    return counter.most_common(1)[0][0] if counter else None


@dataclass(frozen=True, slots=True)
class RoundSummary:
    """Streaming (reduced) outcome of one aggregation round.

    The wire format of a sharded campaign: every field is a scalar, so a
    cell of any size serialises to the same flat payload.  Built from a
    full :class:`RoundMetrics` with :meth:`from_metrics`; by construction
    the shared summary API (``success_fraction``, ``all_correct``,
    ``max_latency_us``, ``mean_radio_on_us``, ...) answers identically on
    both forms for the same round.

    Attributes:
        num_nodes: participating node count.
        completed_count: nodes that obtained an aggregate.
        correct_count: nodes whose aggregate equals the true sum.
        all_correct: every node reconstructed the true aggregate of all
            sources (the consistency bit the figures report).
        expected_aggregate: the true sum over all sources.
        aggregate: consensus reconstructed value — the most common
            aggregate among correct nodes (``None`` if no node was
            correct).  This is what the cross-cell round deals onward.
        num_sources: how many nodes sourced a secret.
        max_latency_us / mean_latency_us: the paper's latency metric over
            completing nodes (``None`` when no node completed).
        mean_radio_on_us / max_radio_on_us: the paper's energy proxy.
        sharing_duration_us / reconstruction_duration_us: phase durations.
        sharing_slots / reconstruction_slots: schedule slot counts.
        chain_length_sharing / chain_length_reconstruction: chain lengths.
        failure_count: injected node failures during the round.
        lost_cells: cells whose collector point was lost this round
            (chaos campaigns only; 0 elsewhere).
        recovered_cells: cells whose contribution was recovered from a
            coded replica this round (chaos campaigns only; 0 elsewhere).
    """

    num_nodes: int
    completed_count: int
    correct_count: int
    all_correct: bool
    expected_aggregate: int
    aggregate: int | None
    num_sources: int
    max_latency_us: int | None
    mean_latency_us: float | None
    mean_radio_on_us: float
    max_radio_on_us: int
    sharing_duration_us: int
    reconstruction_duration_us: int
    sharing_slots: int
    reconstruction_slots: int
    chain_length_sharing: int
    chain_length_reconstruction: int
    failure_count: int
    lost_cells: int = 0
    recovered_cells: int = 0

    @classmethod
    def from_metrics(cls, metrics: RoundMetrics) -> "RoundSummary":
        """Reduce a dense round to its streaming summary."""
        latencies = metrics.latencies_us()
        return cls(
            num_nodes=len(metrics.per_node),
            completed_count=len(latencies),
            correct_count=sum(1 for m in metrics.per_node.values() if m.correct),
            all_correct=metrics.all_correct,
            expected_aggregate=metrics.expected_aggregate,
            aggregate=consensus_aggregate(metrics),
            num_sources=len(metrics.sources),
            max_latency_us=max(latencies) if latencies else None,
            mean_latency_us=(
                sum(latencies) / len(latencies) if latencies else None
            ),
            mean_radio_on_us=metrics.mean_radio_on_us,
            max_radio_on_us=metrics.max_radio_on_us,
            sharing_duration_us=metrics.sharing_duration_us,
            reconstruction_duration_us=metrics.reconstruction_duration_us,
            sharing_slots=metrics.sharing_slots,
            reconstruction_slots=metrics.reconstruction_slots,
            chain_length_sharing=metrics.chain_length_sharing,
            chain_length_reconstruction=metrics.chain_length_reconstruction,
            failure_count=len(metrics.failures),
        )

    @property
    def has_latency(self) -> bool:
        """True when at least one node completed (latency is defined)."""
        return self.completed_count > 0

    @property
    def success_fraction(self) -> float:
        """Fraction of nodes that reconstructed a correct aggregate."""
        return self.correct_count / self.num_nodes

    @property
    def total_schedule_us(self) -> int:
        """End-to-end scheduled duration of the round."""
        return self.sharing_duration_us + self.reconstruction_duration_us


@dataclass(frozen=True, slots=True)
class WindowSummary:
    """Streaming outcome of one closed billing window (service layer).

    The service-side sibling of :class:`RoundSummary`: every field is a
    flat scalar, so a window of any size serialises to the same fixed
    payload — this is the shape the service wire format
    (:mod:`repro.service.wire`) frames and the window journal replays.

    The correctness contract mirrors the chaos layer's: ``total`` is the
    cross-cell reconstructed aggregate over the submissions that were
    *accepted* before the deadline — exact over those contributors, or
    ``None`` for an empty window — and ``expected`` is the plain modular
    sum oracle over the same set, so ``total == expected`` is the
    bit-identity check.  ``degraded`` flags incomplete device coverage at
    the deadline (a straggler missed the window); it never means a wrong
    total.

    Attributes:
        window: billing-window index.
        accepted: submissions folded into the aggregate.
        devices: distinct contributing devices.
        duplicates: submissions rejected as already journaled.
        late: submissions rejected after the window closed.
        shed: submissions shed by per-window admission control.
        retried: retry-after responses issued while the window was open.
        total: reconstructed window aggregate (``None`` when empty).
        expected: modular-sum oracle over the accepted submissions.
        degraded: coverage was incomplete at the deadline (never a wrong
            total — the aggregate is exact over who did contribute).
        close_latency_us: wall time the close aggregation took.
        recovered: the window was closed (or re-verified) by a daemon
            that restarted from the journal.
    """

    window: int
    accepted: int
    devices: int
    duplicates: int
    late: int
    shed: int
    retried: int
    total: int | None
    expected: int
    degraded: bool
    close_latency_us: int
    recovered: bool = False

    @property
    def exact(self) -> bool:
        """The reconstructed total equals the modular-sum oracle."""
        return self.total is not None and self.total == self.expected


def summarize_rounds(
    rounds: Iterable["RoundMetrics | RoundSummary"],
) -> dict[str, float]:
    """Mean-of-rounds summary used by the experiment harness.

    Latency figures are means over rounds of the per-round maximum (the
    network is done when its slowest node is), radio-on figures are means
    of per-round means; both in milliseconds to match the paper's axes.
    Accepts full :class:`RoundMetrics` and streaming :class:`RoundSummary`
    rounds interchangeably (even mixed).
    """
    rounds = list(rounds)
    if not rounds:
        raise ProtocolError("cannot summarize zero rounds")
    completed = [r for r in rounds if r.has_latency]
    summary = {
        "rounds": float(len(rounds)),
        "completed_rounds": float(len(completed)),
        "success_fraction": sum(r.success_fraction for r in rounds) / len(rounds),
        "all_correct_fraction": sum(1.0 for r in rounds if r.all_correct)
        / len(rounds),
        "mean_radio_on_ms": sum(r.mean_radio_on_us for r in rounds)
        / len(rounds)
        / 1000.0,
    }
    if completed:
        summary["latency_ms"] = sum(r.max_latency_us for r in completed) / len(
            completed
        ) / 1000.0
        summary["mean_node_latency_ms"] = sum(
            r.mean_latency_us for r in completed
        ) / len(completed) / 1000.0
    return summary
