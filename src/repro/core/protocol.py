"""The two-phase SSS-over-MiniCast round engine.

Both protocol variants execute the same pipeline; they differ only in the
*parameters* each phase gets (destination set, NTX, schedule length,
radio policy).  The pipeline per round:

1. **Deal** — every source draws a random degree-p polynomial hiding its
   secret and evaluates it at the public point of every destination.
2. **Protect** — each evaluation is packed into a share packet
   (AES-128-CTR + CBC-MAC under the pairwise key, or the stub codec).
3. **Sharing phase** — one MiniCast round carries the chain of share
   packets; destinations decrypt what reached them and fold it into
   per-point share sums with contributor tracking.
4. **Reconstruction phase** — a second MiniCast round floods each
   holder's (sum, contributor bitmap) packet network-wide; every node
   groups received sums by contributor set and Lagrange-interpolates the
   aggregate from a consistent group.
5. **Metrics** — per-node latency (sharing schedule + local
   reconstruction completion) and radio-on time (TX + RX over both
   phases), plus correctness against ground truth.

The engine is deliberately oblivious to *why* the parameters are what
they are — that knowledge lives in :mod:`repro.core.s3` /
:mod:`repro.core.s4` and, for S4, in the bootstrap measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.crypto.prng import AesCtrDrbg
from repro.ct.coverage import arm_offsets
from repro.ct.minicast import (
    MiniCastResult,
    MiniCastRound,
    RadioOffPolicy,
    Requirement,
)
from repro.ct.packet import ChainLayout
from repro.ct.slots import RoundSchedule
from repro.errors import (
    CryptoError,
    FieldError,
    ProtocolError,
    ReconstructionError,
)
from repro.field.polynomial import Polynomial
from repro.phy.channel import ChannelModel, ChannelParameters
from repro.phy.link import LinkTable
from repro.core.config import CryptoMode, ProtocolConfig
from repro.core.metrics import NodeMetrics, RoundMetrics
from repro.core.payload import (
    RealShareCodec,
    SharePacket,
    StubShareCodec,
    decode_sum_packet,
    encode_sum_packet,
)
from repro.sss.aggregation import ShareAccumulator, reconstruct_aggregate
from repro.sss.public_points import PublicPointRegistry
from repro.sim.seeds import stable_seed
from repro.sss.shares import Share
from repro.topology.graph import Topology


@dataclass(frozen=True)
class PhasePlan:
    """Everything one MiniCast phase needs: schedule + policy."""

    schedule: RoundSchedule
    policy: RadioOffPolicy


class AggregationEngine:
    """Shared machinery; subclasses implement the planning hooks.

    Args:
        topology: node placement.
        channel: propagation parameters.
        config: shared protocol settings.
    """

    def __init__(
        self,
        topology: Topology,
        channel: ChannelParameters,
        config: ProtocolConfig,
        interference=None,
    ):
        if len(topology) < config.threshold:
            raise ProtocolError(
                f"{len(topology)} nodes cannot support degree {config.degree} "
                f"(need at least {config.threshold})"
            )
        self._topology = topology
        self._channel_model = ChannelModel(channel)
        self._config = config
        self._interference = interference
        self._registry = PublicPointRegistry(config.field, topology.node_ids)
        self._links_cache: dict[int, LinkTable] = {}
        self._codec_cache: dict[int, RealShareCodec | StubShareCodec] = {}

    # -- shared infrastructure ---------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The deployment this engine runs on."""
        return self._topology

    @property
    def config(self) -> ProtocolConfig:
        """Shared protocol settings."""
        return self._config

    @property
    def registry(self) -> PublicPointRegistry:
        """Node → public point mapping."""
        return self._registry

    def links_for(self, frame_bytes: int) -> LinkTable:
        """Link table at a given on-air frame size (cached)."""
        table = self._links_cache.get(frame_bytes)
        if table is None:
            table = LinkTable(
                self._topology.positions,
                self._channel_model,
                frame_bytes,
                interference=self._interference,
            )
            self._links_cache[frame_bytes] = table
        return table

    def codec(self, node: int):
        """The share codec (cipher + keys) node ``node`` was provisioned with."""
        existing = self._codec_cache.get(node)
        if existing is not None:
            return existing
        if self._config.crypto_mode is CryptoMode.REAL:
            built = RealShareCodec(
                node,
                self._topology.node_ids,
                self._config.master_secret,
                tag_bytes=self._config.mac_tag_bytes,
            )
        else:
            built = StubShareCodec(node, tag_bytes=self._config.mac_tag_bytes)
        self._codec_cache[node] = built
        return built

    # -- variant hooks -------------------------------------------------------------

    def destinations(self, sources: Sequence[int]) -> list[int]:
        """Share destinations (every node for S3, collectors for S4)."""
        raise NotImplementedError

    def chain_sources(self, sources: Sequence[int]) -> list[int]:
        """Which nodes get a sub-slot row reserved in the sharing chain.

        S4 constructs the chain from bootstrapping knowledge, so only
        actual sources get rows.  The naive S3 chain is static TDMA — "the
        chain size is extended to contain n² sub-slots" — so every node
        owns a row whether it sources data this round or not; unfilled
        sub-slots are silence but still occupy airtime.
        """
        return list(sources)

    def sharing_plan(self, layout: ChainLayout) -> PhasePlan:
        """Schedule + policy of the sharing phase."""
        raise NotImplementedError

    def reconstruction_plan(self, layout: ChainLayout) -> PhasePlan:
        """Schedule + policy of the reconstruction phase."""
        raise NotImplementedError

    @property
    def variant_name(self) -> str:
        """Short name used in reports ("S3"/"S4")."""
        raise NotImplementedError

    # -- the round ----------------------------------------------------------------

    def run(
        self,
        secrets: Mapping[int, int],
        seed: int,
        sharing_failures: Mapping[int, int] | None = None,
        reconstruction_failures: Mapping[int, int] | None = None,
    ) -> RoundMetrics:
        """Execute one full aggregation round.

        Args:
            secrets: source node → secret value.
            seed: round seed; drives both crypto and channel randomness
                through independent streams.
            sharing_failures: node → sharing chain-slot at which it dies.
            reconstruction_failures: same for the reconstruction phase.
        """
        config = self._config
        field = config.field
        degree = config.degree
        sources = sorted(secrets)
        if not sources:
            raise ProtocolError("no sources given")
        unknown = [s for s in sources if s not in self._topology]
        if unknown:
            raise ProtocolError(f"sources not in topology: {unknown}")
        if len(sources) != len(set(sources)):
            raise ProtocolError("duplicate sources")

        destinations = self.destinations(sources)
        if len(destinations) < config.threshold:
            raise ProtocolError(
                f"{len(destinations)} destinations cannot reach threshold "
                f"{config.threshold}"
            )

        round_nonce = seed & ((1 << 64) - 1)
        dealer_root = AesCtrDrbg.from_seed(f"round-{seed}")

        # 1+2. Deal polynomials and build the encrypted sub-slot payloads.
        layout = ChainLayout.sharing(self.chain_sources(sources), destinations)
        payloads: dict[int, SharePacket] = {}
        for src in sources:
            polynomial = Polynomial.random_with_secret(
                field,
                secrets[src],
                degree,
                dealer_root.fork(f"dealer-{src}"),
            )
            src_codec = self.codec(src)
            for dst in destinations:
                value = polynomial(self._registry.point_of(dst))
                if dst == src:
                    # A node's share to itself never leaves the node; the
                    # sub-slot still exists (and costs airtime) in the
                    # naive static chain, but carries no cipher work.
                    packet = SharePacket(
                        source=src,
                        destination=dst,
                        ciphertext=value.value.to_bytes(16, "big"),
                        tag=b"",
                    )
                else:
                    packet = src_codec.encrypt_share(dst, value, round_nonce)
                payloads[layout.index_of(src, dst)] = packet

        # 3. Sharing phase.
        plan = self.sharing_plan(layout)
        links = self.links_for(
            config.timings.phy_overhead_bytes + layout.psdu_bytes
        )
        sharing_round = MiniCastRound(
            links,
            plan.schedule,
            capture=config.capture,
            policy=plan.policy,
            tx_probability=config.tx_probability,
        )
        # Only rows of actual sources carry data; reserved-but-unfilled
        # rows (naive static chains) are silence nobody can receive.
        filled = 0
        for src in sources:
            filled |= layout.source_mask(src)
        initial = {
            node: (layout.source_mask(node) if node in secrets else 0)
            for node in self._topology.node_ids
        }
        requirements = {
            dst: Requirement.all_of(layout.destination_mask(dst) & filled)
            for dst in destinations
        }
        sharing_result = sharing_round.run(
            random.Random(stable_seed(seed, "sharing")),
            initial_knowledge=initial,
            requirements=requirements,
            initiators=[sources[0]],
            failures=sharing_failures,
            arm_schedule=arm_offsets(links, sources[0]),
        )

        failed_in_sharing = set(sharing_result.failures)
        alive_after_sharing = set(self._topology.node_ids) - failed_in_sharing

        # Decrypt and fold into per-point sums.
        accumulators: dict[int, ShareAccumulator] = {}
        for dst in destinations:
            if dst not in alive_after_sharing:
                continue
            dst_codec = self.codec(dst)
            point = self._registry.point_of(dst)
            accumulator = ShareAccumulator.empty(point)
            view = sharing_result.knowledge[dst] & layout.destination_mask(dst)
            while view:
                low_bit = view & -view
                index = low_bit.bit_length() - 1
                view ^= low_bit
                packet = payloads[index]
                try:
                    if packet.source == dst:
                        value = field.element_from_bytes(
                            packet.ciphertext[-field.element_size_bytes :]
                        )
                    else:
                        value = dst_codec.decrypt_share(
                            packet, field, round_nonce
                        )
                except (CryptoError, FieldError):
                    continue  # corrupted/forged packet: drop
                accumulator.add(
                    Share(dealer_id=packet.source, x=point, y=value)
                )
            if accumulator.contributors:
                accumulators[dst] = accumulator

        if not accumulators:
            raise ProtocolError(
                "no destination received a single share; the sharing NTX "
                "is catastrophically low for this deployment"
            )

        # 4. Reconstruction phase.
        holders = sorted(accumulators)
        recon_layout = ChainLayout.reconstruction(
            holders,
            num_nodes=max(self._topology.node_ids) + 1,
            element_size=field.element_size_bytes,
        )
        sum_payloads: dict[int, bytes] = {}
        for holder in holders:
            accumulator = accumulators[holder]
            sum_payloads[recon_layout.index_of(holder, None)] = encode_sum_packet(
                accumulator.total,
                accumulator.contributors,
                num_nodes=max(self._topology.node_ids) + 1,
                element_size=field.element_size_bytes,
            )

        recon_plan = self.reconstruction_plan(recon_layout)
        recon_links = self.links_for(
            config.timings.phy_overhead_bytes + recon_layout.psdu_bytes
        )
        recon_round = MiniCastRound(
            recon_links,
            recon_plan.schedule,
            capture=config.capture,
            policy=recon_plan.policy,
            tx_probability=config.tx_probability,
        )
        recon_initial = {
            node: (
                recon_layout.source_mask(node) if node in accumulators else 0
            )
            for node in self._topology.node_ids
        }
        recon_requirement = Requirement.count_of(
            recon_layout.full_mask(), min(config.threshold, len(holders))
        )
        recon_requirements = {
            node: recon_requirement for node in alive_after_sharing
        }
        recon_result = recon_round.run(
            random.Random(stable_seed(seed, "reconstruction")),
            initial_knowledge=recon_initial,
            requirements=recon_requirements,
            initiators=[holders[0]],
            alive=alive_after_sharing,
            failures=reconstruction_failures,
            arm_schedule=arm_offsets(recon_links, holders[0]),
        )

        # 5. Per-node reconstruction and metrics.
        return self._assemble_metrics(
            secrets=secrets,
            sources=sources,
            layout=layout,
            recon_layout=recon_layout,
            sum_payloads=sum_payloads,
            sharing_result=sharing_result,
            recon_result=recon_result,
        )

    # -- metric assembly -------------------------------------------------------

    def _assemble_metrics(
        self,
        secrets: Mapping[int, int],
        sources: list[int],
        layout: ChainLayout,
        recon_layout: ChainLayout,
        sum_payloads: dict[int, bytes],
        sharing_result: MiniCastResult,
        recon_result: MiniCastResult,
    ) -> RoundMetrics:
        config = self._config
        field = config.field
        degree = config.degree
        num_nodes = max(self._topology.node_ids) + 1
        expected = field.sum(secrets[s] for s in sources)
        sharing_duration = sharing_result.schedule.round_duration_us
        all_failures = dict(sharing_result.failures)
        all_failures.update(recon_result.failures)

        per_node: dict[int, NodeMetrics] = {}
        for node in self._topology.node_ids:
            tx_us = sharing_result.tx_us.get(node, 0) + recon_result.tx_us.get(
                node, 0
            )
            rx_us = sharing_result.rx_us.get(node, 0) + recon_result.rx_us.get(
                node, 0
            )
            aggregate: int | None = None
            contributors: frozenset[int] = frozenset()
            correct = False
            latency: int | None = None

            dead = node in all_failures
            if not dead:
                view = recon_result.knowledge.get(node, 0)
                sums: list[ShareAccumulator] = []
                bits = view
                while bits:
                    low_bit = bits & -bits
                    index = low_bit.bit_length() - 1
                    bits ^= low_bit
                    holder = recon_layout.spec(index).source
                    value, contributor_set = decode_sum_packet(
                        sum_payloads[index],
                        field,
                        num_nodes=num_nodes,
                        element_size=field.element_size_bytes,
                    )
                    sums.append(
                        ShareAccumulator(
                            x=self._registry.point_of(holder),
                            total=value,
                            contributors=set(contributor_set),
                        )
                    )
                try:
                    result = reconstruct_aggregate(field, sums, degree)
                except (ReconstructionError, ProtocolError):
                    result = None
                if result is not None:
                    aggregate = result.value.value
                    contributors = result.contributors
                    truth = field.sum(
                        secrets[s] for s in contributors if s in secrets
                    )
                    correct = (
                        bool(contributors)
                        and contributors <= frozenset(sources)
                        and aggregate == truth.value
                    )
                    completion = recon_result.completion_us(node)
                    if completion is not None:
                        latency = sharing_duration + completion

            per_node[node] = NodeMetrics(
                node=node,
                latency_us=latency,
                radio_on_us=tx_us + rx_us,
                tx_us=tx_us,
                rx_us=rx_us,
                aggregate=aggregate,
                contributors=contributors,
                correct=correct,
            )

        return RoundMetrics(
            per_node=per_node,
            expected_aggregate=expected.value,
            sources=frozenset(sources),
            sharing_duration_us=sharing_duration,
            reconstruction_duration_us=recon_result.schedule.round_duration_us,
            sharing_slots=sharing_result.schedule.num_slots,
            reconstruction_slots=recon_result.schedule.num_slots,
            chain_length_sharing=len(layout),
            chain_length_reconstruction=len(recon_layout),
            failures=all_failures,
        )
