"""The two-phase SSS-over-MiniCast round engine.

Both protocol variants execute the same pipeline; they differ only in the
*parameters* each phase gets (destination set, NTX, schedule length,
radio policy).  The pipeline per round:

1. **Deal** — every source draws a random degree-p polynomial hiding its
   secret and evaluates it at the public point of every destination.
2. **Protect** — each evaluation is packed into a share packet
   (AES-128-CTR + CBC-MAC under the pairwise key, or the stub codec).
3. **Sharing phase** — one MiniCast round carries the chain of share
   packets; destinations decrypt what reached them and fold it into
   per-point share sums with contributor tracking.
4. **Reconstruction phase** — a second MiniCast round floods each
   holder's (sum, contributor bitmap) packet network-wide; every node
   groups received sums by contributor set and Lagrange-interpolates the
   aggregate from a consistent group.
5. **Metrics** — per-node latency (sharing schedule + local
   reconstruction completion) and radio-on time (TX + RX over both
   phases), plus correctness against ground truth.

The engine is deliberately oblivious to *why* the parameters are what
they are — that knowledge lives in :mod:`repro.core.s3` /
:mod:`repro.core.s4` and, for S4, in the bootstrap measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import diskcache, fastpath
from repro.crypto.prng import AesCtrDrbg
from repro.ct.coverage import arm_offsets
from repro.ct.minicast import (
    MiniCastResult,
    MiniCastRound,
    RadioOffPolicy,
    Requirement,
)
from repro.ct.packet import ChainLayout
from repro.ct.slots import RoundSchedule
from repro.errors import (
    CryptoError,
    FieldError,
    ProtocolError,
    ReconstructionError,
)
from repro.field.polynomial import Polynomial
from repro.field.prime_field import FieldElement
from repro.phy.channel import ChannelModel, ChannelParameters
from repro.phy.link import LinkTable
from repro.core.config import CryptoMode, ProtocolConfig
from repro.core.metrics import NodeMetrics, RoundMetrics
from repro.core.payload import (
    BATCH_THRESHOLD,
    RealShareCodec,
    SharePacket,
    StubShareCodec,
    batch_decrypt_values,
    batch_encrypt_shares,
    decode_sum_packet,
    encode_sum_packet,
    stub_batch_decrypt,
    stub_batch_encrypt,
)
from repro.sss.aggregation import ShareAccumulator, reconstruct_aggregate
from repro.sss.public_points import PublicPointRegistry
from repro.sim.seeds import stable_seed
from repro.sss.shares import Share
from repro.topology.graph import Topology


@dataclass(frozen=True)
class PhasePlan:
    """Everything one MiniCast phase needs: schedule + policy."""

    schedule: RoundSchedule
    policy: RadioOffPolicy


#: Process-wide codec pool (fast path): a node's provisioned key material
#: is a pure function of (mode, node, peer set, master secret, tag size),
#: so repeated engine constructions over one deployment — every campaign
#: sweep point, REAL mode especially — share the expanded AES schedules
#: instead of re-deriving hundreds of pairwise keys.  Codecs are
#: read-only after construction.
_CODEC_POOL: dict[tuple, "RealShareCodec | StubShareCodec"] = {}
_CODEC_POOL_MAX = 4096

#: Process-wide chain-layout pool (fast path): layouts are pure functions
#: of their source/destination tuples and are immutable, so every engine
#: instantiation across a campaign shares them.
_LAYOUT_POOL: dict[tuple, ChainLayout] = {}
_LAYOUT_POOL_MAX = 4096

#: Process-wide dealt-share pool (fast path).  A dealer's polynomial is a
#: pure function of its fork key (itself derived from the round seed),
#: the secret, the degree and the field, so the evaluated share vector
#: for a given destination-point tuple is replayable: repeated rounds —
#: warm service restarts, re-run campaigns, the steady-state bench —
#: skip the DRBG draws and the Horner pass entirely and still produce
#: bit-identical packets.  Same precedent as the cipher pool in
#: :mod:`repro.crypto.prng` and the coverage-row disk cache.
_DEAL_POOL: dict[tuple, list[int]] = {}
_DEAL_POOL_MAX = 16384

#: Per-engine cap on pooled per-(layout, sources) round constants.
_ROUND_CONST_MAX = 128


def _batch_crypto_available() -> bool:
    """Whether the numpy-vectorized share pipeline can be used."""
    from repro.crypto import aesbatch

    return aesbatch.HAVE_NUMPY


def _pooled_layout(key: tuple, build) -> ChainLayout:
    layout = _LAYOUT_POOL.get(key)
    if layout is None:
        layout = build()
        if len(_LAYOUT_POOL) >= _LAYOUT_POOL_MAX:
            _LAYOUT_POOL.clear()
        _LAYOUT_POOL[key] = layout
    return layout


class AggregationEngine:
    """Shared machinery; subclasses implement the planning hooks.

    Args:
        topology: node placement.
        channel: propagation parameters.
        config: shared protocol settings.
    """

    def __init__(
        self,
        topology: Topology,
        channel: ChannelParameters,
        config: ProtocolConfig,
        interference=None,
    ):
        if len(topology) < config.threshold:
            raise ProtocolError(
                f"{len(topology)} nodes cannot support degree {config.degree} "
                f"(need at least {config.threshold})"
            )
        self._topology = topology
        self._channel_model = ChannelModel(channel)
        self._config = config
        self._interference = interference
        self._registry = PublicPointRegistry(config.field, topology.node_ids)
        self._links_cache: dict[int, LinkTable] = {}
        self._codec_cache: dict[int, RealShareCodec | StubShareCodec] = {}
        #: Fast-path pool of per-(chain sources, destinations, sources)
        #: round constants — initial-knowledge and requirement maps,
        #: destination points — which are pure functions of commissioning
        #: state and identical for every iteration of a sweep point.
        self._round_consts: dict[tuple, tuple] = {}

    # -- shared infrastructure ---------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The deployment this engine runs on."""
        return self._topology

    @property
    def config(self) -> ProtocolConfig:
        """Shared protocol settings."""
        return self._config

    @property
    def registry(self) -> PublicPointRegistry:
        """Node → public point mapping."""
        return self._registry

    def links_for(self, frame_bytes: int) -> LinkTable:
        """Link table at a given on-air frame size (cached).

        On the fast path the table also comes from the process-wide
        :func:`repro.phy.link.cached_link_table` pool, so S3 and S4
        engines over the same deployment (and repeated engine
        constructions across a campaign) share one instance.
        """
        table = self._links_cache.get(frame_bytes)
        if table is None:
            from repro.phy.link import cached_link_table

            table = cached_link_table(
                self._topology.positions,
                self._channel_model,
                frame_bytes,
                interference=self._interference,
            )
            self._links_cache[frame_bytes] = table
        return table

    def _minicast_round(
        self, links: LinkTable, plan: PhasePlan
    ) -> MiniCastRound:
        """A (cached) MiniCast round executor for one phase configuration.

        :class:`MiniCastRound` is stateless across ``run`` calls, so one
        instance per (links, schedule, policy) can serve every round of a
        campaign — its construction-time receive-order precomputation is
        the part worth not repeating.
        """
        if not fastpath.enabled():
            return MiniCastRound(
                links,
                plan.schedule,
                capture=self._config.capture,
                policy=plan.policy,
                tx_probability=self._config.tx_probability,
            )
        key = (
            "round",
            plan.schedule,
            plan.policy,
            self._config.capture,
            self._config.tx_probability,
        )
        cached = links.derived_cache.get(key)
        if cached is None:
            cached = MiniCastRound(
                links,
                plan.schedule,
                capture=self._config.capture,
                policy=plan.policy,
                tx_probability=self._config.tx_probability,
            )
            links.derived_cache[key] = cached
        return cached

    def codec(self, node: int):
        """The share codec (cipher + keys) node ``node`` was provisioned with."""
        existing = self._codec_cache.get(node)
        if existing is not None:
            return existing
        pool_key = None
        if fastpath.enabled():
            pool_key = (
                self._config.crypto_mode,
                node,
                self._topology.node_ids,
                self._config.master_secret,
                self._config.mac_tag_bytes,
            )
            pooled = _CODEC_POOL.get(pool_key)
            if pooled is not None:
                self._codec_cache[node] = pooled
                return pooled
        # REAL codecs are worth persisting: provisioning expands two AES
        # schedules per peer, and the pickled form carries the expanded
        # key schedule words (see AES128.__getstate__), so a cold process
        # reloads commissioning-time key material instead of re-deriving
        # it — exactly how firmware ships provisioned keys.
        disk_key = None
        if (
            pool_key is not None
            and self._config.crypto_mode is CryptoMode.REAL
            and diskcache.enabled()
        ):
            disk_key = diskcache.content_key(
                "codec",
                self._config.crypto_mode,
                node,
                self._topology.node_ids,
                self._config.master_secret,
                self._config.mac_tag_bytes,
            )
            stored = diskcache.load("codec", disk_key)
            if isinstance(stored, RealShareCodec):
                self._codec_cache[node] = stored
                if len(_CODEC_POOL) >= _CODEC_POOL_MAX:
                    _CODEC_POOL.clear()
                _CODEC_POOL[pool_key] = stored
                return stored
        if self._config.crypto_mode is CryptoMode.REAL:
            built = RealShareCodec(
                node,
                self._topology.node_ids,
                self._config.master_secret,
                tag_bytes=self._config.mac_tag_bytes,
            )
        else:
            built = StubShareCodec(node, tag_bytes=self._config.mac_tag_bytes)
        self._codec_cache[node] = built
        if pool_key is not None:
            if len(_CODEC_POOL) >= _CODEC_POOL_MAX:
                _CODEC_POOL.clear()
            _CODEC_POOL[pool_key] = built
        if disk_key is not None:
            diskcache.store("codec", disk_key, built)
        return built

    # -- variant hooks -------------------------------------------------------------

    def destinations(self, sources: Sequence[int]) -> list[int]:
        """Share destinations (every node for S3, collectors for S4)."""
        raise NotImplementedError

    def chain_sources(self, sources: Sequence[int]) -> list[int]:
        """Which nodes get a sub-slot row reserved in the sharing chain.

        S4 constructs the chain from bootstrapping knowledge, so only
        actual sources get rows.  The naive S3 chain is static TDMA — "the
        chain size is extended to contain n² sub-slots" — so every node
        owns a row whether it sources data this round or not; unfilled
        sub-slots are silence but still occupy airtime.
        """
        return list(sources)

    def sharing_plan(self, layout: ChainLayout) -> PhasePlan:
        """Schedule + policy of the sharing phase."""
        raise NotImplementedError

    def reconstruction_plan(self, layout: ChainLayout) -> PhasePlan:
        """Schedule + policy of the reconstruction phase."""
        raise NotImplementedError

    @property
    def variant_name(self) -> str:
        """Short name used in reports ("S3"/"S4")."""
        raise NotImplementedError

    def _sharing_constants(
        self, layout: ChainLayout, sources: list[int], destinations: list[int]
    ) -> tuple[list[int], dict[int, int], dict[int, Requirement]]:
        """Per-round sharing-phase constants, shared by both compute paths.

        Only rows of actual sources carry data; reserved-but-unfilled
        rows (naive static chains) are silence nobody can receive, so
        requirements mask down to the filled sub-slots.  One definition
        serves the fast and reference branches — the requirement
        semantics must never fork between them.
        """
        destination_points = [
            self._registry.point_of(dst).value for dst in destinations
        ]
        filled = 0
        for src in sources:
            filled |= layout.source_mask(src)
        source_set = set(sources)
        initial = {
            node: (layout.source_mask(node) if node in source_set else 0)
            for node in self._topology.node_ids
        }
        requirements = {
            dst: Requirement.all_of(layout.destination_mask(dst) & filled)
            for dst in destinations
        }
        return destination_points, initial, requirements

    # -- the round ----------------------------------------------------------------

    def run(
        self,
        secrets: Mapping[int, int],
        seed: int,
        sharing_failures: Mapping[int, int] | None = None,
        reconstruction_failures: Mapping[int, int] | None = None,
    ) -> RoundMetrics:
        """Execute one full aggregation round.

        Args:
            secrets: source node → secret value.
            seed: round seed; drives both crypto and channel randomness
                through independent streams.
            sharing_failures: node → sharing chain-slot at which it dies.
            reconstruction_failures: same for the reconstruction phase.
        """
        config = self._config
        field = config.field
        degree = config.degree
        sources = sorted(secrets)
        if not sources:
            raise ProtocolError("no sources given")
        unknown = [s for s in sources if s not in self._topology]
        if unknown:
            raise ProtocolError(f"sources not in topology: {unknown}")
        if len(sources) != len(set(sources)):
            raise ProtocolError("duplicate sources")

        destinations = self.destinations(sources)
        if len(destinations) < config.threshold:
            raise ProtocolError(
                f"{len(destinations)} destinations cannot reach threshold "
                f"{config.threshold}"
            )

        round_nonce = seed & ((1 << 64) - 1)
        dealer_root = AesCtrDrbg.from_seed(f"round-{seed}")

        # 1+2. Deal polynomials and build the encrypted sub-slot payloads.
        fast = fastpath.enabled()
        chain_sources = self.chain_sources(sources)
        if fast:
            layout = _pooled_layout(
                ("sharing", tuple(chain_sources), tuple(destinations)),
                lambda: ChainLayout.sharing(chain_sources, destinations),
            )
            consts_key = (
                tuple(chain_sources),
                tuple(destinations),
                tuple(sources),
            )
            consts = self._round_consts.get(consts_key)
            if consts is None:
                destination_points, initial, requirements = (
                    self._sharing_constants(layout, sources, destinations)
                )
                index_rows = {
                    src: [layout.index_of(src, dst) for dst in destinations]
                    for src in sources
                }
                if len(self._round_consts) >= _ROUND_CONST_MAX:
                    self._round_consts.clear()
                consts = (destination_points, initial, requirements, index_rows)
                self._round_consts[consts_key] = consts
            destination_points, initial, requirements, index_rows = consts
        else:
            layout = ChainLayout.sharing(chain_sources, destinations)
            destination_points, initial, requirements = self._sharing_constants(
                layout, sources, destinations
            )
        use_batch_crypto = False
        if fast and len(sources) * len(destinations) >= BATCH_THRESHOLD:
            if config.crypto_mode is CryptoMode.REAL:
                use_batch_crypto = (
                    _batch_crypto_available()
                    and self.codec(sources[0]).supports_batch()
                )
            else:
                # The stub pipeline batches in pure ints — no numpy
                # required, so no availability guard.
                use_batch_crypto = self.codec(sources[0]).supports_batch()
        payloads: dict[int, SharePacket] = {}
        batch_entries: list[tuple] = []
        batch_indices: list[int] = []
        if fast:
            # Batched dealing: the per-dealer fork derivations collapse
            # into one buffered parent read, the missing forks' keystream
            # is prefetched through the aesbatch lane kernel, and share
            # vectors replay from the dealt-share pool when this exact
            # round was dealt before — all bit-identical to the scalar
            # sequence below.
            dealers = dealer_root.fork_many(
                [f"dealer-{src}" for src in sources]
            )
            prime = field.prime
            points_key = tuple(destination_points)
            bytes_per_draw = (prime.bit_length() + 7) // 8
            values_by_src: dict[int, list[int]] = {}
            missing: list[tuple] = []
            for src, dealer in zip(sources, dealers):
                deal_key = (
                    dealer.key_bytes,
                    degree,
                    prime,
                    field(secrets[src]).value,
                    points_key,
                )
                values = _DEAL_POOL.get(deal_key)
                if values is None:
                    missing.append((src, dealer, deal_key))
                else:
                    values_by_src[src] = values
            if missing:
                AesCtrDrbg.prefill_many(
                    [dealer for _, dealer, _ in missing],
                    degree * bytes_per_draw + 8,
                )
                for src, dealer, deal_key in missing:
                    polynomial = Polynomial.random_with_secret(
                        field, secrets[src], degree, dealer
                    )
                    # Bulk raw-int evaluation: one Horner pass per
                    # destination without a FieldElement per product.
                    values = polynomial.evaluate_values(destination_points)
                    if len(_DEAL_POOL) >= _DEAL_POOL_MAX:
                        _DEAL_POOL.clear()
                    _DEAL_POOL[deal_key] = values
                    values_by_src[src] = values
            for src in sources:
                src_codec = self.codec(src)
                for dst, value_int, index in zip(
                    destinations, values_by_src[src], index_rows[src]
                ):
                    if dst == src:
                        # A node's share to itself never leaves the node;
                        # the sub-slot still exists (and costs airtime) in
                        # the naive static chain, but carries no cipher
                        # work.
                        payloads[index] = SharePacket(
                            source=src,
                            destination=dst,
                            ciphertext=value_int.to_bytes(16, "big"),
                            tag=b"",
                        )
                    elif use_batch_crypto:
                        batch_entries.append((src_codec, dst, value_int))
                        batch_indices.append(index)
                    else:
                        payloads[index] = src_codec.encrypt_share(
                            dst, FieldElement(field, value_int), round_nonce
                        )
        else:
            for src in sources:
                polynomial = Polynomial.random_with_secret(
                    field,
                    secrets[src],
                    degree,
                    dealer_root.fork(f"dealer-{src}"),
                )
                src_codec = self.codec(src)
                values = polynomial.evaluate_values(destination_points)
                for dst, value_int in zip(destinations, values):
                    if dst == src:
                        payloads[layout.index_of(src, dst)] = SharePacket(
                            source=src,
                            destination=dst,
                            ciphertext=value_int.to_bytes(16, "big"),
                            tag=b"",
                        )
                    else:
                        payloads[layout.index_of(src, dst)] = (
                            src_codec.encrypt_share(
                                dst, FieldElement(field, value_int), round_nonce
                            )
                        )
        if batch_entries:
            if config.crypto_mode is CryptoMode.REAL:
                batch_packets = batch_encrypt_shares(batch_entries, round_nonce)
            else:
                batch_packets = stub_batch_encrypt(batch_entries, round_nonce)
            for index, packet in zip(batch_indices, batch_packets):
                payloads[index] = packet

        # 3. Sharing phase.
        plan = self.sharing_plan(layout)
        links = self.links_for(
            config.timings.phy_overhead_bytes + layout.psdu_bytes
        )
        sharing_round = self._minicast_round(links, plan)
        sharing_result = sharing_round.run(
            random.Random(stable_seed(seed, "sharing")),
            initial_knowledge=initial,
            requirements=requirements,
            initiators=[sources[0]],
            failures=sharing_failures,
            arm_schedule=arm_offsets(links, sources[0]),
        )

        failed_in_sharing = set(sharing_result.failures)
        alive_after_sharing = set(self._topology.node_ids) - failed_in_sharing

        # Decrypt and fold into per-point sums.
        accumulators: dict[int, ShareAccumulator] = {}
        prime = field.prime
        element_size = field.element_size_bytes
        decrypted_batch: dict[int, int | None] = {}
        if use_batch_crypto:
            # Gather every delivered foreign share across all destinations
            # and authenticate + decrypt them in one batched pass.
            gather_entries = []
            gather_indices = []
            for dst in destinations:
                if dst not in alive_after_sharing:
                    continue
                dst_codec = self.codec(dst)
                view = (
                    sharing_result.knowledge[dst] & layout.destination_mask(dst)
                )
                while view:
                    low_bit = view & -view
                    index = low_bit.bit_length() - 1
                    view ^= low_bit
                    packet = payloads[index]
                    if packet.source != dst:
                        gather_entries.append((dst_codec, packet))
                        gather_indices.append(index)
            if gather_entries:
                if config.crypto_mode is CryptoMode.REAL:
                    decoded_values = batch_decrypt_values(
                        gather_entries, field, round_nonce
                    )
                else:
                    decoded_values = stub_batch_decrypt(
                        gather_entries, field, round_nonce
                    )
                for index, value in zip(gather_indices, decoded_values):
                    decrypted_batch[index] = value
        for dst in destinations:
            if dst not in alive_after_sharing:
                continue
            dst_codec = self.codec(dst)
            point = self._registry.point_of(dst)
            view = sharing_result.knowledge[dst] & layout.destination_mask(dst)
            if fast:
                # Allocation-light fold: raw-int running sum plus a plain
                # contributor set; Share/FieldElement objects are built
                # once per accumulator instead of once per received share.
                total = 0
                contributors: set[int] = set()
                while view:
                    low_bit = view & -view
                    index = low_bit.bit_length() - 1
                    view ^= low_bit
                    packet = payloads[index]
                    try:
                        if packet.source == dst:
                            value = field.element_from_bytes(
                                packet.ciphertext[-element_size:]
                            ).value
                        elif use_batch_crypto:
                            value = decrypted_batch.get(index)
                            if value is None:
                                continue  # corrupted/forged packet: drop
                        else:
                            value = dst_codec.decrypt_share(
                                packet, field, round_nonce
                            ).value
                    except (CryptoError, FieldError):
                        continue  # corrupted/forged packet: drop
                    total += value
                    contributors.add(packet.source)
                if contributors:
                    accumulators[dst] = ShareAccumulator(
                        x=point,
                        total=FieldElement(field, total % prime),
                        contributors=contributors,
                    )
                continue
            accumulator = ShareAccumulator.empty(point)
            while view:
                low_bit = view & -view
                index = low_bit.bit_length() - 1
                view ^= low_bit
                packet = payloads[index]
                try:
                    if packet.source == dst:
                        value = field.element_from_bytes(
                            packet.ciphertext[-field.element_size_bytes :]
                        )
                    else:
                        value = dst_codec.decrypt_share(
                            packet, field, round_nonce
                        )
                except (CryptoError, FieldError):
                    continue  # corrupted/forged packet: drop
                accumulator.add(
                    Share(dealer_id=packet.source, x=point, y=value)
                )
            if accumulator.contributors:
                accumulators[dst] = accumulator

        if not accumulators:
            raise ProtocolError(
                "no destination received a single share; the sharing NTX "
                "is catastrophically low for this deployment"
            )

        # 4. Reconstruction phase.
        holders = sorted(accumulators)
        num_nodes_total = max(self._topology.node_ids) + 1
        if fast:
            recon_layout = _pooled_layout(
                (
                    "reconstruction",
                    tuple(holders),
                    num_nodes_total,
                    field.element_size_bytes,
                ),
                lambda: ChainLayout.reconstruction(
                    holders,
                    num_nodes=num_nodes_total,
                    element_size=field.element_size_bytes,
                ),
            )
        else:
            recon_layout = ChainLayout.reconstruction(
                holders,
                num_nodes=num_nodes_total,
                element_size=field.element_size_bytes,
            )
        sum_payloads: dict[int, bytes] = {}
        for holder in holders:
            accumulator = accumulators[holder]
            sum_payloads[recon_layout.index_of(holder, None)] = encode_sum_packet(
                accumulator.total,
                accumulator.contributors,
                num_nodes=max(self._topology.node_ids) + 1,
                element_size=field.element_size_bytes,
            )

        recon_plan = self.reconstruction_plan(recon_layout)
        recon_links = self.links_for(
            config.timings.phy_overhead_bytes + recon_layout.psdu_bytes
        )
        recon_round = self._minicast_round(recon_links, recon_plan)
        recon_initial = {
            node: (
                recon_layout.source_mask(node) if node in accumulators else 0
            )
            for node in self._topology.node_ids
        }
        recon_requirement = Requirement.count_of(
            recon_layout.full_mask(), min(config.threshold, len(holders))
        )
        recon_requirements = {
            node: recon_requirement for node in alive_after_sharing
        }
        recon_result = recon_round.run(
            random.Random(stable_seed(seed, "reconstruction")),
            initial_knowledge=recon_initial,
            requirements=recon_requirements,
            initiators=[holders[0]],
            alive=alive_after_sharing,
            failures=reconstruction_failures,
            arm_schedule=arm_offsets(recon_links, holders[0]),
        )

        # 5. Per-node reconstruction and metrics.
        return self._assemble_metrics(
            secrets=secrets,
            sources=sources,
            layout=layout,
            recon_layout=recon_layout,
            sum_payloads=sum_payloads,
            sharing_result=sharing_result,
            recon_result=recon_result,
        )

    # -- metric assembly -------------------------------------------------------

    def _assemble_metrics(
        self,
        secrets: Mapping[int, int],
        sources: list[int],
        layout: ChainLayout,
        recon_layout: ChainLayout,
        sum_payloads: dict[int, bytes],
        sharing_result: MiniCastResult,
        recon_result: MiniCastResult,
    ) -> RoundMetrics:
        config = self._config
        field = config.field
        degree = config.degree
        num_nodes = max(self._topology.node_ids) + 1
        expected = field.sum(secrets[s] for s in sources)
        sharing_duration = sharing_result.schedule.round_duration_us
        all_failures = dict(sharing_result.failures)
        all_failures.update(recon_result.failures)

        fast = fastpath.enabled()
        # The reconstruction a node performs depends only on its final
        # view of the sum chain; after a healthy flood most nodes share
        # the full view, so memoising per distinct view collapses n
        # interpolations into one or two.  Decoded packets are likewise
        # shared across every node that received the same sub-slot.
        decoded_cache: dict[int, tuple] = {}
        outcome_cache: dict[int, tuple] = {}

        def decode_view(view: int) -> tuple:
            sums: list[ShareAccumulator] = []
            bits = view
            while bits:
                low_bit = bits & -bits
                index = low_bit.bit_length() - 1
                bits ^= low_bit
                decoded = decoded_cache.get(index) if fast else None
                if decoded is None:
                    holder = recon_layout.spec(index).source
                    value, contributor_set = decode_sum_packet(
                        sum_payloads[index],
                        field,
                        num_nodes=num_nodes,
                        element_size=field.element_size_bytes,
                    )
                    decoded = (self._registry.point_of(holder), value, contributor_set)
                    if fast:
                        decoded_cache[index] = decoded
                point, value, contributor_set = decoded
                sums.append(
                    ShareAccumulator(
                        x=point,
                        total=value,
                        contributors=set(contributor_set),
                    )
                )
            try:
                result = reconstruct_aggregate(field, sums, degree)
            except (ReconstructionError, ProtocolError):
                result = None
            if result is None:
                return (None, frozenset(), False)
            aggregate = result.value.value
            contributors = result.contributors
            truth = field.sum(secrets[s] for s in contributors if s in secrets)
            correct = (
                bool(contributors)
                and contributors <= frozenset(sources)
                and aggregate == truth.value
            )
            return (aggregate, contributors, correct)

        per_node: dict[int, NodeMetrics] = {}
        for node in self._topology.node_ids:
            tx_us = sharing_result.tx_us.get(node, 0) + recon_result.tx_us.get(
                node, 0
            )
            rx_us = sharing_result.rx_us.get(node, 0) + recon_result.rx_us.get(
                node, 0
            )
            aggregate: int | None = None
            contributors: frozenset[int] = frozenset()
            correct = False
            latency: int | None = None

            dead = node in all_failures
            if not dead:
                view = recon_result.knowledge.get(node, 0)
                outcome = outcome_cache.get(view) if fast else None
                if outcome is None:
                    outcome = decode_view(view)
                    if fast:
                        outcome_cache[view] = outcome
                aggregate, contributors, correct = outcome
                if aggregate is not None:
                    completion = recon_result.completion_us(node)
                    if completion is not None:
                        latency = sharing_duration + completion

            per_node[node] = NodeMetrics(
                node=node,
                latency_us=latency,
                radio_on_us=tx_us + rx_us,
                tx_us=tx_us,
                rx_us=rx_us,
                aggregate=aggregate,
                contributors=contributors,
                correct=correct,
            )

        return RoundMetrics(
            per_node=per_node,
            expected_aggregate=expected.value,
            sources=frozenset(sources),
            sharing_duration_us=sharing_duration,
            reconstruction_duration_us=recon_result.schedule.round_duration_us,
            sharing_slots=sharing_result.schedule.num_slots,
            reconstruction_slots=recon_result.schedule.num_slots,
            chain_length_sharing=len(layout),
            chain_length_reconstruction=len(recon_layout),
            failures=all_failures,
        )
