"""Protocol configuration objects.

A :class:`ProtocolConfig` holds everything S3 and S4 share — field,
polynomial degree, crypto settings, radio/capture models.  The
variant-specific knobs live in :class:`S3Config` / :class:`S4Config`,
each with a ``for_testbed`` constructor that applies the paper's
evaluation parameters (degree ⌊n/3⌋, NTX 6/5 for S4's sharing phase, the
over-provisioned full-coverage NTX for S3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field

from repro.errors import ConfigurationError
from repro.field.prime_field import DEFAULT_PRIME, PrimeField
from repro.phy.capture import CaptureModel
from repro.phy.radio import NRF52840_154, RadioTimings
from repro.topology.testbeds import TestbedSpec


class CryptoMode(enum.Enum):
    """How sharing-phase payloads are protected in simulation.

    ``REAL`` runs the full data path — AES-128-CTR encryption and
    truncated CBC-MAC per (source, destination) packet under pairwise
    keys — exactly what the nRF52840 does in hardware.  ``STUB`` replaces
    the cipher with a reversible tagging scheme; the chain layout, packet
    sizes and timing are identical, so the paper's *metrics* are
    unaffected while large parameter sweeps run an order of magnitude
    faster.  Tests cover both; benchmarks default to ``STUB`` and the
    crypto-fidelity suite pins REAL ≡ STUB metric equality.
    """

    REAL = "real"
    STUB = "stub"


@dataclass(frozen=True)
class ProtocolConfig:
    """Settings shared by both protocol variants.

    Attributes:
        degree: Shamir polynomial degree p (collusion threshold).
        prime: field modulus.
        master_secret: key-derivation root for pairwise keys.
        crypto_mode: REAL or STUB packet protection.
        timings: radio timing model.
        capture: concurrent-reception model.
        tx_probability: per-slot transmit probability of armed nodes.
        slack_slots: scheduling slack added to analytic round lengths.
        mac_tag_bytes: truncated MAC tag size carried by share packets.
    """

    degree: int
    prime: int = DEFAULT_PRIME
    master_secret: bytes = b"repro-network-master"
    crypto_mode: CryptoMode = CryptoMode.REAL
    timings: RadioTimings = NRF52840_154
    capture: CaptureModel = dataclass_field(default_factory=CaptureModel)
    tx_probability: float = 0.5
    slack_slots: int = 3
    mac_tag_bytes: int = 4

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigurationError(
                f"degree must be >= 1 for any privacy, got {self.degree}"
            )
        if not 0.0 < self.tx_probability <= 1.0:
            raise ConfigurationError(
                f"tx_probability must be in (0, 1], got {self.tx_probability}"
            )
        if self.slack_slots < 0:
            raise ConfigurationError(
                f"slack_slots must be >= 0, got {self.slack_slots}"
            )

    @property
    def field(self) -> PrimeField:
        """The prime field instance (interned by modulus)."""
        return PrimeField(self.prime)

    @property
    def threshold(self) -> int:
        """Shares needed to reconstruct: degree + 1."""
        return self.degree + 1


@dataclass(frozen=True)
class S3Config:
    """Naive variant: one conservative NTX for both phases.

    Attributes:
        base: shared protocol settings.
        ntx: the over-provisioned full-coverage NTX used throughout.
    """

    base: ProtocolConfig
    ntx: int

    def __post_init__(self) -> None:
        if self.ntx < 1:
            raise ConfigurationError(f"ntx must be >= 1, got {self.ntx}")

    @classmethod
    def for_testbed(
        cls, spec: TestbedSpec, crypto_mode: CryptoMode = CryptoMode.REAL
    ) -> "S3Config":
        """The paper's S3 parameters on the given testbed."""
        base = ProtocolConfig(
            degree=spec.polynomial_degree, crypto_mode=crypto_mode
        )
        return cls(base=base, ntx=spec.full_coverage_ntx)


@dataclass(frozen=True)
class S4Config:
    """Scalable variant: trimmed chain, low NTX, truncated schedule.

    Attributes:
        base: shared protocol settings.
        sharing_ntx: the low, bootstrap-profiled NTX of the sharing phase
            (6 on FlockLab, 5 on DCube per the paper).
        reconstruction_ntx: NTX of the network-wide reconstruction flood.
        collector_redundancy: collectors beyond the required degree + 1
            (fault-tolerance headroom).
        collector_threshold: minimum bootstrap-measured delivery
            probability a node must offer every source to be electable.
        completion_quantile: quantile of bootstrap-measured collector
            completion slots used to truncate the sharing schedule.
        sharing_slack_slots: slack added after the completion quantile.
        bootstrap_iterations: probe rounds used by the bootstrap phase.
        bootstrap_seed: RNG seed of the bootstrap phase.
    """

    base: ProtocolConfig
    sharing_ntx: int
    reconstruction_ntx: int
    collector_redundancy: int = 1
    collector_threshold: float = 0.9
    completion_quantile: float = 0.95
    sharing_slack_slots: int = 2
    bootstrap_iterations: int = 20
    bootstrap_seed: int = 0xB007

    def __post_init__(self) -> None:
        if self.sharing_ntx < 1 or self.reconstruction_ntx < 1:
            raise ConfigurationError("NTX values must be >= 1")
        if self.collector_redundancy < 0:
            raise ConfigurationError(
                f"collector_redundancy must be >= 0, got {self.collector_redundancy}"
            )
        if not 0.0 < self.completion_quantile <= 1.0:
            raise ConfigurationError(
                f"completion_quantile must be in (0, 1], got "
                f"{self.completion_quantile}"
            )
        if self.bootstrap_iterations < 1:
            raise ConfigurationError(
                f"bootstrap_iterations must be >= 1, got {self.bootstrap_iterations}"
            )

    @property
    def num_collectors(self) -> int:
        """m = degree + 1 + redundancy."""
        return self.base.degree + 1 + self.collector_redundancy

    @classmethod
    def for_testbed(
        cls, spec: TestbedSpec, crypto_mode: CryptoMode = CryptoMode.REAL
    ) -> "S4Config":
        """The paper's S4 parameters on the given testbed.

        The sharing NTX and collector redundancy come from the testbed's
        calibration (``spec.extras``) when present: the paper profiled
        "enough" NTX values on its physical testbeds, and our synthetic
        channels need their own profiled operating point (documented in
        EXPERIMENTS.md).
        """
        base = ProtocolConfig(
            degree=spec.polynomial_degree, crypto_mode=crypto_mode
        )
        return cls(
            base=base,
            sharing_ntx=spec.extras.get("s4_sharing_ntx", spec.sharing_ntx),
            reconstruction_ntx=spec.full_coverage_ntx,
            collector_redundancy=spec.extras.get("s4_redundancy", 1),
        )
