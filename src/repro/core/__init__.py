"""The paper's contribution: SSS-over-MiniCast aggregation protocols.

* :mod:`repro.core.config` — protocol configuration (field, degree,
  crypto mode, radio parameters) and per-variant settings.
* :mod:`repro.core.payload` — the packet data path: share encryption
  (AES-128-CTR + CBC-MAC under pairwise keys) and sum-packet
  serialization with contributor bitmaps.
* :mod:`repro.core.bootstrap` — the bootstrapping phase: key
  provisioning, NTX-coverage profiling, collector election, and
  completion-time profiling for S4's truncated sharing schedule.
* :mod:`repro.core.protocol` — the two-phase round engine shared by both
  variants.
* :mod:`repro.core.s3` — **S3**, the naive SSS mapping (n² sharing chain,
  conservative full-coverage NTX, radios on all round).
* :mod:`repro.core.s4` — **S4**, the scalable variant (collector-trimmed
  chain, low profiled NTX, truncated schedule, early radio-off).
* :mod:`repro.core.metrics` — per-node and per-round metric containers.
"""

from repro.core.config import CryptoMode, ProtocolConfig, S3Config, S4Config
from repro.core.metrics import NodeMetrics, RoundMetrics
from repro.core.s3 import S3Engine
from repro.core.s4 import S4Engine

__all__ = [
    "CryptoMode",
    "ProtocolConfig",
    "S3Config",
    "S4Config",
    "NodeMetrics",
    "RoundMetrics",
    "S3Engine",
    "S4Engine",
]
