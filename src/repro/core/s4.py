"""S4 — the scalable SSS variant (the paper's contribution).

Three optimizations over S3, all enabled by the low polynomial degree
``p`` and the bootstrapping measurements:

1. **Trimmed chain** — shares go only to ``m = p + 1 + redundancy``
   elected collectors, shrinking the sharing chain from ``s × n`` to
   ``s × m`` sub-slots.
2. **Low NTX + truncated schedule** — the sharing flood runs at the
   profiled low NTX (6 on FlockLab, 5 on DCube) and the round is cut at
   the bootstrap-measured completion quantile instead of the worst-case
   budget bound ("the process completes fast with low NTX and enters the
   reconstruction phase").
3. **Early radio-off** — nodes power down as soon as their budget is
   spent and their local requirement met (Glossy-style termination).

Fault tolerance falls out of the redundancy: any ``p + 1`` collectors
with consistent contributor sets reconstruct, so ``redundancy`` collector
failures are survivable by construction.
"""

from __future__ import annotations

from typing import Sequence

from repro import diskcache, fastpath
from repro.ct.minicast import RadioOffPolicy
from repro.ct.packet import ChainLayout, sharing_psdu_bytes
from repro.ct.slots import RoundSchedule
from repro.core.bootstrap import S4Bootstrap, bootstrap_s4, network_depth
from repro.core.config import S4Config
from repro.core.protocol import AggregationEngine, PhasePlan
from repro.errors import BootstrapError
from repro.phy.channel import ChannelParameters
from repro.topology.graph import Topology
from repro.topology.testbeds import TestbedSpec


class S4Engine(AggregationEngine):
    """The scalable protocol variant.

    The engine bootstraps lazily per source-set signature: collector
    election depends on who may source data, and the truncated schedule
    depends on the resulting chain — both are commissioning-time
    measurements in a real deployment.
    """

    def __init__(
        self,
        topology: Topology,
        channel: ChannelParameters,
        config: S4Config,
        interference=None,
    ):
        super().__init__(topology, channel, config.base, interference=interference)
        self._s4 = config
        self._depth: int | None = None
        self._bootstrap_cache: dict[tuple[int, ...], S4Bootstrap] = {}
        self._current_bootstrap: S4Bootstrap | None = None

    @classmethod
    def for_testbed(cls, spec: TestbedSpec, config: S4Config | None = None) -> "S4Engine":
        """Build an S4 engine with the paper's testbed parameters."""
        return cls(
            spec.topology,
            spec.channel,
            config if config is not None else S4Config.for_testbed(spec),
        )

    @property
    def s4_config(self) -> S4Config:
        """Variant-specific settings."""
        return self._s4

    @property
    def variant_name(self) -> str:
        """Report label."""
        return "S4"

    def _network_depth(self) -> int:
        if self._depth is None:
            frame = self.config.timings.phy_overhead_bytes + sharing_psdu_bytes()
            self._depth = network_depth(self.links_for(frame))
        return self._depth

    # -- bootstrapping ---------------------------------------------------------

    def bootstrap_for(self, sources: Sequence[int]) -> S4Bootstrap:
        """Bootstrap measurements for a given source set (cached).

        Besides the per-engine cache, the fast path memoises the result on
        the shared link table: bootstrapping is a deterministic function
        of (links, timings, sources, S4 parameters), and it models a
        *commissioning-time* measurement — a deployment performs it once,
        not once per analysis object.  With
        :func:`repro.phy.link.cached_link_table` deduplicating tables
        process-wide, every engine over the same deployment shares one
        bootstrap instead of re-profiling ~40 MiniCast probe rounds.
        """
        key = tuple(sorted(sources))
        cached = self._bootstrap_cache.get(key)
        if cached is not None:
            return cached
        frame = self.config.timings.phy_overhead_bytes + sharing_psdu_bytes()
        links = self.links_for(frame)
        shared_key = None
        if fastpath.enabled():
            shared_key = (
                "s4-bootstrap",
                key,
                self.config.timings,
                min(self._s4.num_collectors, len(self._topology)),
                self._s4.sharing_ntx,
                self.config.capture,
                self.config.tx_probability,
                self._s4.collector_threshold,
                self._s4.completion_quantile,
                self._s4.sharing_slack_slots,
                self._s4.bootstrap_iterations,
                self._s4.bootstrap_seed,
                self.config.threshold,
            )
            shared = links.derived_cache.get(shared_key)
            if shared is not None:
                self._bootstrap_cache[key] = shared
                return shared
        # Persisted commissioning: the bootstrap is the dominant cold-start
        # cost (it replays the reference MiniCast probe loop), and it is a
        # pure function of the link table content plus the S4 parameters —
        # exactly what the disk key hashes.  A hit is bit-identical to a
        # fresh measurement because the stored object round-trips exactly.
        disk_key = None
        if shared_key is not None and diskcache.enabled():
            disk_key = diskcache.content_key(
                "s4-bootstrap", links.content_digest(), shared_key[1:]
            )
            stored = diskcache.load("s4-bootstrap", disk_key)
            if isinstance(stored, S4Bootstrap):
                self._bootstrap_cache[key] = stored
                links.derived_cache[shared_key] = stored
                return stored
        result = bootstrap_s4(
            links=links,
            timings=self.config.timings,
            sources=list(key),
            # Redundancy is clamped by the deployment size: a subnetwork of
            # n nodes can never field more than n collectors.
            num_collectors=min(self._s4.num_collectors, len(self._topology)),
            sharing_ntx=self._s4.sharing_ntx,
            capture=self.config.capture,
            tx_probability=self.config.tx_probability,
            collector_threshold=self._s4.collector_threshold,
            completion_quantile=self._s4.completion_quantile,
            slack_slots=self._s4.sharing_slack_slots,
            iterations=self._s4.bootstrap_iterations,
            seed=self._s4.bootstrap_seed,
            satisfy_count=self.config.threshold,
        )
        self._bootstrap_cache[key] = result
        if shared_key is not None:
            links.derived_cache[shared_key] = result
        if disk_key is not None:
            diskcache.store("s4-bootstrap", disk_key, result)
        return result

    # -- variant hooks -----------------------------------------------------------

    def destinations(self, sources: Sequence[int]) -> list[int]:
        """The elected collectors for this source set."""
        bootstrap = self.bootstrap_for(sources)
        self._current_bootstrap = bootstrap
        return list(bootstrap.collectors)

    def sharing_plan(self, layout: ChainLayout) -> PhasePlan:
        """Truncated schedule at the low NTX, early radio-off."""
        bootstrap = self._current_bootstrap
        if bootstrap is None:
            raise BootstrapError("sharing_plan called before destinations()")
        schedule = RoundSchedule(
            chain_length=len(layout),
            psdu_bytes=layout.psdu_bytes,
            ntx=self._s4.sharing_ntx,
            num_slots=bootstrap.sharing_slots,
            timings=self.config.timings,
        )
        return PhasePlan(schedule=schedule, policy=RadioOffPolicy.EARLY_OFF)

    def reconstruction_plan(self, layout: ChainLayout) -> PhasePlan:
        """Full-coverage flood of the m sums, early radio-off."""
        schedule = RoundSchedule.plan(
            chain_length=len(layout),
            psdu_bytes=layout.psdu_bytes,
            ntx=self._s4.reconstruction_ntx,
            depth_hint=self._network_depth(),
            timings=self.config.timings,
            slack=self.config.slack_slots,
        )
        return PhasePlan(schedule=schedule, policy=RadioOffPolicy.EARLY_OFF)
