"""The bootstrapping phase.

The paper assumes a bootstrapping phase that (a) installs pairwise keys
and (b) has "every node take note of which neighbor is reachable at what
NTX value".  S4 additionally derives from those measurements:

* the **collector set** — ``m = degree + 1 + redundancy`` nodes that every
  potential source reaches reliably at the low sharing NTX;
* the **truncated sharing schedule** — instead of the worst-case
  budget-exhaustion bound, S4 schedules the sharing round to the profiled
  quantile of collector completion times plus slack ("the process
  completes fast with low NTX and enters the reconstruction phase").

Everything here is measurement-driven: no oracle topology knowledge leaks
into the protocol, only statistics a real deployment could gather during
commissioning.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro import fastpath

from repro.ct.coverage import (
    CoverageStats,
    arm_offsets,
    elect_collectors,
    profile_coverage,
)
from repro.ct.minicast import MiniCastRound, RadioOffPolicy, Requirement
from repro.ct.packet import ChainLayout
from repro.ct.slots import RoundSchedule
from repro.errors import BootstrapError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.phy.radio import RadioTimings
from repro.sim.seeds import stable_seed
from repro.topology.graph import diameter, is_connected


@dataclass(frozen=True)
class S4Bootstrap:
    """What S4's bootstrapping phase hands the runtime protocol.

    Attributes:
        collectors: elected collector node ids (sorted).
        sharing_slots: truncated sharing-round length in chain slots.
        coverage: the NTX-coverage statistics the election used.
        network_depth: good-link diameter estimate (for the
            reconstruction schedule).
    """

    collectors: tuple[int, ...]
    sharing_slots: int
    coverage: CoverageStats
    network_depth: int


def network_depth(links: LinkTable) -> int:
    """Good-link diameter — the depth hint for full-coverage schedules.

    Memoised on the (immutable) link table: the diameter runs one BFS per
    node, and every engine over a shared table asks the same question.
    """
    if fastpath.enabled():
        cached = links.derived_cache.get("network_depth")
        if cached is not None:
            return cached
    adjacency = links.adjacency()
    if not is_connected(adjacency):
        raise BootstrapError(
            "good-link graph is disconnected; this deployment cannot "
            "support network-wide aggregation"
        )
    depth = diameter(adjacency)
    if fastpath.enabled():
        links.derived_cache["network_depth"] = depth
    return depth


def profile_completion_slots(
    round_: MiniCastRound,
    initial_knowledge: dict[int, int],
    requirements: dict[int, Requirement],
    initiators: Sequence[int],
    iterations: int,
    seed: int,
    satisfy_count: int | None = None,
    arm_schedule: dict[int, int] | None = None,
) -> list[int]:
    """Requirement-completion slot per probe run.

    By default records the slot at which the *last* watched node
    completed.  With ``satisfy_count = k``, records the slot at which the
    k-th watched node completed instead — this is how S4 converts its
    collector redundancy into schedule truncation: reconstruction only
    needs ``degree + 1`` complete collectors, so the round can end once
    that many are served.  Nodes that never complete are recorded at the
    full schedule length, so quantiles degrade gracefully instead of
    silently dropping failures.
    """
    if iterations < 1:
        raise BootstrapError(f"iterations must be >= 1, got {iterations}")
    watched = [node for node, req in requirements.items() if req.min_count > 0]
    if satisfy_count is None:
        satisfy_count = len(watched)
    if not 1 <= satisfy_count <= len(watched):
        raise BootstrapError(
            f"satisfy_count {satisfy_count} outside [1, {len(watched)}]"
        )
    per_run: list[int] = []
    for iteration in range(iterations):
        rng = random.Random(stable_seed(seed, "completion", iteration))
        result = round_.run(
            rng,
            initial_knowledge=initial_knowledge,
            requirements=requirements,
            initiators=initiators,
            arm_schedule=arm_schedule,
        )
        slots = sorted(
            (
                result.completion_slot[node]
                if result.completion_slot[node] is not None
                else round_.schedule.num_slots
            )
            for node in watched
        )
        per_run.append(slots[satisfy_count - 1])
    return per_run


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (no interpolation — slots are discrete)."""
    if not values:
        raise BootstrapError("quantile of empty sequence")
    if not 0.0 < q <= 1.0:
        raise BootstrapError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def bootstrap_s4(
    links: LinkTable,
    timings: RadioTimings,
    sources: Sequence[int],
    num_collectors: int,
    sharing_ntx: int,
    capture: CaptureModel | None = None,
    tx_probability: float = 0.5,
    collector_threshold: float = 0.9,
    completion_quantile: float = 0.95,
    slack_slots: int = 2,
    iterations: int = 20,
    seed: int = 0xB007,
    satisfy_count: int | None = None,
) -> S4Bootstrap:
    """Run the full S4 bootstrapping measurement campaign.

    1. Profile per-pair coverage at ``sharing_ntx`` (the "who is reachable
       at what NTX" table).
    2. Elect ``num_collectors`` collectors every source reaches reliably.
    3. Build the real (sources × collectors) sharing chain, profile
       collector-completion slots on it (``satisfy_count`` collectors
       complete — degree + 1 is enough thanks to redundancy), and
       truncate the schedule at ``completion_quantile`` plus slack.
    """
    depth = network_depth(links)
    coverage = profile_coverage(
        links,
        timings,
        ntx_values=[sharing_ntx],
        depth_hint=depth,
        iterations=iterations,
        seed=seed,
        capture=capture,
    ).at(sharing_ntx)

    collectors = elect_collectors(
        coverage,
        num_collectors=num_collectors,
        sources=list(sources),
        candidates=list(links.node_ids),
        threshold=collector_threshold,
    )

    # Profile completion on the real sharing chain with the generous
    # budget-exhaustion schedule, then truncate.
    sharing_layout = ChainLayout.sharing(sorted(sources), collectors)
    generous = RoundSchedule.plan(
        chain_length=len(sharing_layout),
        psdu_bytes=sharing_layout.psdu_bytes,
        ntx=sharing_ntx,
        depth_hint=depth,
        timings=timings,
    )
    probe = MiniCastRound(
        links,
        generous,
        capture=capture,
        policy=RadioOffPolicy.ALWAYS_ON,
        tx_probability=tx_probability,
        # The truncated schedule derived from these probes must be
        # bit-identical to the seed regardless of the compute path.
        force_reference=True,
    )
    initial = {
        node: sharing_layout.source_mask(node) for node in links.node_ids
    }
    requirements = {
        collector: Requirement.all_of(sharing_layout.destination_mask(collector))
        for collector in collectors
    }
    initiator = min(s for s in sources)
    completion = profile_completion_slots(
        probe,
        initial_knowledge=initial,
        requirements=requirements,
        initiators=[initiator],
        iterations=iterations,
        seed=seed,
        satisfy_count=satisfy_count,
        arm_schedule=arm_offsets(links, initiator),
    )
    sharing_slots = int(quantile(completion, completion_quantile)) + 1 + slack_slots
    sharing_slots = min(sharing_slots, generous.num_slots)

    return S4Bootstrap(
        collectors=tuple(collectors),
        sharing_slots=sharing_slots,
        coverage=coverage,
        network_depth=depth,
    )
