"""Multi-round aggregation campaigns and lifetime projection.

A deployment does not run one round — it aggregates periodically for
months.  :func:`run_campaign` strings protocol rounds together with
fresh secrets and seeds, accumulates per-node energy, tracks reliability,
and converts the energy tally into the projected node lifetime the
paper's motivation is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.metrics import RoundMetrics
from repro.errors import ConfigurationError
from repro.sim.battery import Battery, DutyCycleProfile, lifetime_days
from repro.sim.seeds import stable_seed


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a multi-round campaign.

    Attributes:
        rounds: per-round metrics, in order.
        radio_on_us_per_node: cumulative radio-on time per node.
        tx_us_per_node / rx_us_per_node: the TX/RX split of the above.
        reliability: fraction of rounds in which every alive node got a
            correct consistent aggregate.
    """

    rounds: tuple[RoundMetrics, ...]
    radio_on_us_per_node: dict[int, int]
    tx_us_per_node: dict[int, int]
    rx_us_per_node: dict[int, int]
    reliability: float

    @property
    def num_rounds(self) -> int:
        """Rounds executed."""
        return len(self.rounds)

    def mean_radio_on_us_per_round(self, node: int) -> float:
        """A node's average per-round radio-on time over the campaign."""
        return self.radio_on_us_per_node[node] / self.num_rounds

    def worst_node(self) -> int:
        """The node with the highest cumulative radio-on time.

        Network lifetime is conventionally defined by the *first* node to
        die, so the worst-case consumer is the number that matters.
        """
        return max(
            self.radio_on_us_per_node, key=lambda n: self.radio_on_us_per_node[n]
        )

    def lifetime_days(
        self,
        battery: Battery | None = None,
        profile: DutyCycleProfile | None = None,
    ) -> float:
        """Projected network lifetime (first-node-death) in days."""
        worst = self.worst_node()
        per_round = self.mean_radio_on_us_per_round(worst)
        tx_share = (
            self.tx_us_per_node[worst] / self.radio_on_us_per_node[worst]
            if self.radio_on_us_per_node[worst]
            else 0.0
        )
        return lifetime_days(
            per_round,
            battery=battery,
            profile=profile,
            tx_fraction=tx_share,
        )


def run_campaign(
    engine,
    rounds: int,
    secrets_for_round: Callable[[int], Mapping[int, int]] | None = None,
    seed: int = 0,
) -> CampaignResult:
    """Run ``rounds`` aggregation rounds back to back.

    Args:
        engine: an S3 or S4 engine.
        rounds: how many rounds to run.
        secrets_for_round: round index → secrets mapping; defaults to a
            deterministic synthetic reading per node per round.
        seed: campaign seed (each round derives its own).
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    node_ids: Sequence[int] = engine.topology.node_ids
    if secrets_for_round is None:
        def secrets_for_round(index: int) -> dict[int, int]:
            return {
                node: (node * 131 + index * 17 + 7) % 1_000
                for node in node_ids
            }

    executed: list[RoundMetrics] = []
    radio_on = {node: 0 for node in node_ids}
    tx_total = {node: 0 for node in node_ids}
    rx_total = {node: 0 for node in node_ids}
    good_rounds = 0
    for index in range(rounds):
        metrics = engine.run(
            secrets_for_round(index),
            seed=stable_seed(seed, "campaign", index),
        )
        executed.append(metrics)
        for node, node_metrics in metrics.per_node.items():
            radio_on[node] += node_metrics.radio_on_us
            tx_total[node] += node_metrics.tx_us
            rx_total[node] += node_metrics.rx_us
        if metrics.all_correct:
            good_rounds += 1
    return CampaignResult(
        rounds=tuple(executed),
        radio_on_us_per_node=radio_on,
        tx_us_per_node=tx_total,
        rx_us_per_node=rx_total,
        reliability=good_rounds / rounds,
    )
