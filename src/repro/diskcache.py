"""Persisted commissioning cache: deployment artifacts on disk.

The process-wide pools (link tables, S4 bootstraps, codec key schedules)
amortise commissioning *within* one process, which is why the first
campaign in a process — and every freshly spawned campaign worker — still
pays the full reference-fidelity bootstrap.  This module closes that gap:
artifacts that are pure functions of the deployment description are
persisted to a versioned on-disk cache, so a cold process (or a
``ProcessPoolExecutor`` spawn worker) loads them instead of re-running
the reference MiniCast probe loop.

Layout and contract:

* Directory: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``; overridable
  at runtime with :func:`set_cache_dir` (the CLI's ``--cache-dir``).
* One pickle file per entry, named ``<kind>-<content-hash>.pkl``.  The
  content hash (:func:`content_key`) covers *everything* the artifact is
  derived from — topology positions, channel parameters, radio timings,
  protocol knobs — so a cache hit is bit-identical to a fresh build by
  construction and entries can never go stale through code-external
  changes.
* Each file carries a header with :data:`CACHE_VERSION`; entries written
  by an incompatible library version are ignored (and rebuilt), as are
  corrupt or truncated files.  Writes are atomic (temp file +
  ``os.replace``) so a crashed writer can at worst leave an ignorable
  temp file behind.
* The cache is an *optimisation*, never a correctness dependency: every
  read/write failure degrades to recomputation.  It is active only when
  the fast path is on (consumers gate on ``fastpath.enabled()``) and can
  be switched off wholesale with ``REPRO_DISK_CACHE=0`` or
  :func:`set_enabled`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pathlib
import pickle
import struct
import tempfile
from typing import Any, Callable

#: Bump when the serialized form of any cached artifact changes shape.
CACHE_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_DISK_CACHE"

#: Soft cap on entries written per directory; counted once per process
#: (plus our own writes) to keep ``store`` O(1) after the first call.
MAX_ENTRIES = 8192

_dir_override: pathlib.Path | None = None
_enabled_override: bool | None = None
_entry_budget: dict[str, int] = {}


def cache_dir() -> pathlib.Path:
    """The active cache directory (override > env > ``~/.cache/repro``)."""
    if _dir_override is not None:
        return _dir_override
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def set_cache_dir(path: str | os.PathLike | None) -> None:
    """Override the cache directory (``None`` restores env/default)."""
    global _dir_override
    _dir_override = pathlib.Path(path) if path is not None else None


def enabled() -> bool:
    """Whether the on-disk cache is active."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in {
        "0",
        "false",
        "off",
        "no",
    }


def set_enabled(flag: bool | None) -> bool | None:
    """Force the cache on/off (``None`` restores env); returns previous."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = flag if flag is None else bool(flag)
    return previous


# -- content hashing -----------------------------------------------------------


def _encode(part: Any, update: Callable[[bytes], None]) -> None:
    """Feed a canonical, type-tagged encoding of ``part`` to ``update``.

    Supports the value shapes commissioning keys are built from: scalars,
    bytes, containers, enums and (frozen) dataclasses such as
    ``ChannelParameters`` / ``RadioTimings`` / ``CaptureModel``.  Floats
    are encoded as IEEE-754 doubles, so the key is exact, not repr-lossy.
    """
    if part is None:
        update(b"N")
    elif isinstance(part, bool):
        update(b"o" + bytes([part]))
    elif isinstance(part, int):
        update(b"i" + part.to_bytes((part.bit_length() + 8) // 8 + 1, "big", signed=True))
    elif isinstance(part, float):
        update(b"f" + struct.pack(">d", part))
    elif isinstance(part, str):
        encoded = part.encode("utf-8")
        update(b"s" + len(encoded).to_bytes(4, "big") + encoded)
    elif isinstance(part, bytes):
        update(b"b" + len(part).to_bytes(4, "big") + part)
    elif isinstance(part, enum.Enum):
        update(b"E")
        _encode(type(part).__qualname__, update)
        _encode(part.value, update)
    elif isinstance(part, (tuple, list)):
        update(b"(" + len(part).to_bytes(4, "big"))
        for item in part:
            _encode(item, update)
    elif isinstance(part, (set, frozenset)):
        update(b"{" + len(part).to_bytes(4, "big"))
        for item in sorted(part, key=_sort_key):
            _encode(item, update)
    elif isinstance(part, dict):
        update(b"m" + len(part).to_bytes(4, "big"))
        for key in sorted(part, key=_sort_key):
            _encode(key, update)
            _encode(part[key], update)
    elif dataclasses.is_dataclass(part) and not isinstance(part, type):
        update(b"D")
        _encode(type(part).__qualname__, update)
        for field in dataclasses.fields(part):
            _encode(field.name, update)
            _encode(getattr(part, field.name), update)
    else:
        raise TypeError(
            f"cannot build a content key from {type(part).__name__!r}"
        )


def _sort_key(value: Any) -> bytes:
    hasher = hashlib.sha256()
    _encode(value, hasher.update)
    return hasher.digest()


def content_key(kind: str, *parts: Any) -> str:
    """Stable hex digest identifying an artifact by its full provenance."""
    hasher = hashlib.sha256()
    _encode(kind, hasher.update)
    for part in parts:
        _encode(part, hasher.update)
    return hasher.hexdigest()[:40]


# -- load / store --------------------------------------------------------------


def _entry_path(kind: str, key: str) -> pathlib.Path:
    return cache_dir() / f"{kind}-{key}.pkl"


def load(kind: str, key: str) -> Any | None:
    """Fetch a cached artifact; ``None`` on miss, corruption or staleness.

    Corrupt files (truncated pickles, wrong shapes) are deleted
    best-effort so they are rebuilt cleanly; files written by a different
    :data:`CACHE_VERSION` are left in place but ignored.
    """
    path = _entry_path(kind, key)
    try:
        with open(path, "rb") as handle:
            header = pickle.load(handle)
        if (
            not isinstance(header, dict)
            or header.get("kind") != kind
            or header.get("key") != key
        ):
            raise ValueError("cache entry header mismatch")
        if header.get("cache_version") != CACHE_VERSION:
            return None  # stale library version: ignore, rebuild, overwrite
        return header["payload"]
    except FileNotFoundError:
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store(kind: str, key: str, payload: Any) -> bool:
    """Persist an artifact atomically; best-effort, returns success."""
    directory = cache_dir()
    budget_key = str(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        if budget_key not in _entry_budget:
            _entry_budget[budget_key] = MAX_ENTRIES - sum(
                1 for _ in directory.glob("*.pkl")
            )
        if _entry_budget[budget_key] <= 0:
            return False
        header = {
            "cache_version": CACHE_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, prefix=".tmp-", delete=False
        )
        try:
            with handle:
                pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, _entry_path(kind, key))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        _entry_budget[budget_key] -= 1
        return True
    except Exception:
        return False


def fetch(kind: str, key: str, build: Callable[[], Any]) -> Any:
    """``load`` or ``build()``-and-``store`` an artifact."""
    cached = load(kind, key)
    if cached is not None:
        return cached
    built = build()
    store(kind, key, built)
    return built
