"""Persisted commissioning cache: deployment artifacts on disk.

The process-wide pools (link tables, S4 bootstraps, codec key schedules)
amortise commissioning *within* one process, which is why the first
campaign in a process — and every freshly spawned campaign worker — still
pays the full reference-fidelity bootstrap.  This module closes that gap:
artifacts that are pure functions of the deployment description are
persisted to a versioned on-disk cache, so a cold process (or a
``ProcessPoolExecutor`` spawn worker) loads them instead of re-running
the reference MiniCast probe loop.

Layout and contract:

* Directory: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``; overridable
  at runtime with :func:`set_cache_dir` (the CLI's ``--cache-dir``).
* One pickle file per entry, named ``<kind>-<content-hash>.pkl``.  The
  content hash (:func:`content_key`) covers *everything* the artifact is
  derived from — topology positions, channel parameters, radio timings,
  protocol knobs — so a cache hit is bit-identical to a fresh build by
  construction and entries can never go stale through code-external
  changes.
* Each file carries a header with :data:`CACHE_VERSION`; entries written
  by an incompatible library version are ignored (and rebuilt), as are
  corrupt or truncated files.  Writes are atomic (temp file +
  ``os.replace``) so a crashed writer can at worst leave an ignorable
  temp file behind.
* The cache is an *optimisation*, never a correctness dependency: every
  read/write failure degrades to recomputation.  It is active only when
  the fast path is on (consumers gate on ``fastpath.enabled()``) and can
  be switched off wholesale with ``REPRO_DISK_CACHE=0`` or
  :func:`set_enabled`.
* Lifecycle: long-running campaign services accumulate entries for
  deployments they will never see again, so :func:`sweep` applies an
  LRU / max-age policy — entries untouched for
  ``REPRO_CACHE_MAX_AGE_DAYS`` are dropped, and the newest
  ``REPRO_CACHE_MAX_ENTRIES`` survive when the directory outgrows its
  cap.  Recency is file mtime: :func:`load` touches entries it hits, so
  "old" means *unused*, not merely *written long ago*.  The sweep runs
  automatically the first time a process writes to a directory and can
  be invoked explicitly by maintenance jobs.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pathlib
import pickle
import struct
import tempfile
import time
import zlib
from typing import Any, Callable, Iterator

#: Bump when the serialized form of any cached artifact changes shape.
CACHE_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_DISK_CACHE"
_ENV_MAX_ENTRIES = "REPRO_CACHE_MAX_ENTRIES"
_ENV_MAX_AGE_DAYS = "REPRO_CACHE_MAX_AGE_DAYS"

#: Default cap on live entries per directory (override with
#: ``REPRO_CACHE_MAX_ENTRIES``); also bounds writes per process.
MAX_ENTRIES = 8192

#: A ``.tmp-*`` file older than this is a crashed writer's leftover, not
#: an in-flight write (atomic writes complete in milliseconds), and is
#: removed by :func:`sweep`.
TMP_MAX_AGE_S = 3600.0

_dir_override: pathlib.Path | None = None
_enabled_override: bool | None = None
_entry_budget: dict[str, int] = {}


def max_entries() -> int:
    """LRU capacity per cache directory (env override > default)."""
    raw = os.environ.get(_ENV_MAX_ENTRIES, "").strip()
    if not raw:
        return MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        return MAX_ENTRIES
    return max(1, value)


def max_age_days() -> float | None:
    """Expiry age for unused entries, or ``None`` when age never expires."""
    raw = os.environ.get(_ENV_MAX_AGE_DAYS, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def cache_dir() -> pathlib.Path:
    """The active cache directory (override > env > ``~/.cache/repro``)."""
    if _dir_override is not None:
        return _dir_override
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def set_cache_dir(path: str | os.PathLike | None) -> None:
    """Override the cache directory (``None`` restores env/default)."""
    global _dir_override
    _dir_override = pathlib.Path(path) if path is not None else None


def enabled() -> bool:
    """Whether the on-disk cache is active."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in {
        "0",
        "false",
        "off",
        "no",
    }


def set_enabled(flag: bool | None) -> bool | None:
    """Force the cache on/off (``None`` restores env); returns previous."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = flag if flag is None else bool(flag)
    return previous


# -- content hashing -----------------------------------------------------------


def _encode(part: Any, update: Callable[[bytes], None]) -> None:
    """Feed a canonical, type-tagged encoding of ``part`` to ``update``.

    Supports the value shapes commissioning keys are built from: scalars,
    bytes, containers, enums and (frozen) dataclasses such as
    ``ChannelParameters`` / ``RadioTimings`` / ``CaptureModel``.  Floats
    are encoded as IEEE-754 doubles, so the key is exact, not repr-lossy.
    """
    if part is None:
        update(b"N")
    elif isinstance(part, bool):
        update(b"o" + bytes([part]))
    elif isinstance(part, int):
        update(b"i" + part.to_bytes((part.bit_length() + 8) // 8 + 1, "big", signed=True))
    elif isinstance(part, float):
        update(b"f" + struct.pack(">d", part))
    elif isinstance(part, str):
        encoded = part.encode("utf-8")
        update(b"s" + len(encoded).to_bytes(4, "big") + encoded)
    elif isinstance(part, bytes):
        update(b"b" + len(part).to_bytes(4, "big") + part)
    elif isinstance(part, enum.Enum):
        update(b"E")
        _encode(type(part).__qualname__, update)
        _encode(part.value, update)
    elif isinstance(part, (tuple, list)):
        update(b"(" + len(part).to_bytes(4, "big"))
        for item in part:
            _encode(item, update)
    elif isinstance(part, (set, frozenset)):
        update(b"{" + len(part).to_bytes(4, "big"))
        for item in sorted(part, key=_sort_key):
            _encode(item, update)
    elif isinstance(part, dict):
        update(b"m" + len(part).to_bytes(4, "big"))
        for key in sorted(part, key=_sort_key):
            _encode(key, update)
            _encode(part[key], update)
    elif dataclasses.is_dataclass(part) and not isinstance(part, type):
        update(b"D")
        _encode(type(part).__qualname__, update)
        for field in dataclasses.fields(part):
            _encode(field.name, update)
            _encode(getattr(part, field.name), update)
    else:
        raise TypeError(
            f"cannot build a content key from {type(part).__name__!r}"
        )


def _sort_key(value: Any) -> bytes:
    hasher = hashlib.sha256()
    _encode(value, hasher.update)
    return hasher.digest()


def content_key(kind: str, *parts: Any) -> str:
    """Stable hex digest identifying an artifact by its full provenance."""
    hasher = hashlib.sha256()
    _encode(kind, hasher.update)
    for part in parts:
        _encode(part, hasher.update)
    return hasher.hexdigest()[:40]


# -- lifecycle -----------------------------------------------------------------


def sweep(
    directory: str | os.PathLike | None = None, *, now: float | None = None
) -> dict[str, int]:
    """Apply the LRU / max-age policy to a cache directory.

    Two passes, both best-effort (a vanished or unremovable file is
    somebody else's concurrent sweep, not an error):

    1. **max-age** — entries whose mtime is older than
       ``REPRO_CACHE_MAX_AGE_DAYS`` are deleted (off by default).
    2. **LRU cap** — if more than ``REPRO_CACHE_MAX_ENTRIES`` entries
       remain, the oldest-by-mtime overflow is deleted.  ``load`` touches
       entries on every hit, so mtime order is recency-of-use order.

    A preliminary pass removes ``.tmp-*`` leftovers from crashed writers
    once they are older than :data:`TMP_MAX_AGE_S` — young temp files may
    be a live writer mid-:func:`os.replace` and are left alone.

    Returns ``{"expired": ..., "evicted": ..., "kept": ..., "stale_tmp":
    ...}`` counts.
    """
    root = pathlib.Path(directory) if directory is not None else cache_dir()
    expired = evicted = stale_tmp = 0
    entries = []
    try:
        paths = list(root.glob("*.pkl"))
        tmp_paths = list(root.glob(".tmp-*"))
    except OSError:
        return {"expired": 0, "evicted": 0, "kept": 0, "stale_tmp": 0}
    for path in paths:
        # Per-file best-effort: a concurrent sweep (or writer) may unlink
        # files mid-scan; skipping one must not abort the whole pass.
        try:
            entries.append((path, path.stat().st_mtime))
        except OSError:
            continue
    now = time.time() if now is None else now
    for path in tmp_paths:
        try:
            if now - path.stat().st_mtime > TMP_MAX_AGE_S:
                path.unlink()
                stale_tmp += 1
        except OSError:
            continue
    age_limit = max_age_days()
    if age_limit is not None:
        cutoff = now - age_limit * 86400.0
        fresh = []
        for path, mtime in entries:
            if mtime < cutoff:
                try:
                    path.unlink()
                    expired += 1
                    continue
                except OSError:
                    pass
            fresh.append((path, mtime))
        entries = fresh
    overflow = len(entries) - max_entries()
    if overflow > 0:
        entries.sort(key=lambda item: item[1])
        survivors = []
        for path, mtime in entries:
            if overflow > 0:
                try:
                    path.unlink()
                    evicted += 1
                    overflow -= 1
                    continue
                except OSError:
                    pass
            survivors.append((path, mtime))
        entries = survivors
    return {
        "expired": expired,
        "evicted": evicted,
        "kept": len(entries),
        "stale_tmp": stale_tmp,
    }


# -- load / store --------------------------------------------------------------


def _entry_path(kind: str, key: str) -> pathlib.Path:
    return cache_dir() / f"{kind}-{key}.pkl"


def load(kind: str, key: str) -> Any | None:
    """Fetch a cached artifact; ``None`` on miss, corruption or staleness.

    Corrupt files (truncated pickles, wrong shapes) are deleted
    best-effort so they are rebuilt cleanly; files written by a different
    :data:`CACHE_VERSION` are left in place but ignored.
    """
    path = _entry_path(kind, key)
    try:
        with open(path, "rb") as handle:
            header = pickle.load(handle)
        if (
            not isinstance(header, dict)
            or header.get("kind") != kind
            or header.get("key") != key
        ):
            raise ValueError("cache entry header mismatch")
        if header.get("cache_version") != CACHE_VERSION:
            return None  # stale library version: ignore, rebuild, overwrite
        try:
            os.utime(path)  # touch: a hit is a use, for the LRU sweep
        except OSError:
            pass
        return header["payload"]
    except FileNotFoundError:
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store(kind: str, key: str, payload: Any) -> bool:
    """Persist an artifact atomically; best-effort, returns success."""
    directory = cache_dir()
    budget_key = str(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        if budget_key not in _entry_budget:
            # First write into this directory this process: run the
            # lifecycle sweep, then budget the remaining headroom.
            swept = sweep(directory)
            _entry_budget[budget_key] = max_entries() - swept["kept"]
        if _entry_budget[budget_key] <= 0:
            return False
        header = {
            "cache_version": CACHE_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, prefix=".tmp-", delete=False
        )
        try:
            with handle:
                pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, _entry_path(kind, key))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        _entry_budget[budget_key] -= 1
        return True
    except Exception:
        return False


def fetch(kind: str, key: str, build: Callable[[], Any]) -> Any:
    """``load`` or ``build()``-and-``store`` an artifact."""
    cached = load(kind, key)
    if cached is not None:
        return cached
    built = build()
    store(kind, key, built)
    return built


# -- append-only log (write-ahead journal substrate) ---------------------------

#: Per-record frame magic for :class:`AppendLog` files.
LOG_MAGIC = b"RL"

#: Frame header layout: magic(2) + payload length(4, BE) + crc32(payload)(4, BE).
_LOG_HEADER = struct.Struct(">2sII")

#: Refuse absurd frame lengths instead of trying to allocate them — a
#: corrupted length field must read as a torn tail, not a MemoryError.
LOG_MAX_RECORD = 16 * 1024 * 1024


class AppendLog:
    """Crash-safe append-only record log: the substrate of service WALs.

    The durability contract the aggregation daemon builds on:

    * **Framed records** — every :meth:`append` writes one frame:
      ``magic + length + crc32 + payload``.  A reader never has to guess
      record boundaries, and any bit flip fails the CRC.
    * **fsync'd appends** — with ``fsync=True`` (the default) ``append``
      returns only after ``os.fsync``; an acknowledged record survives a
      hard kill of the process *and* of the machine.  ``fsync=False``
      trades that for throughput (tests, benchmarks); :meth:`sync` is
      the explicit barrier either way.
    * **Torn tails tolerated** — a writer killed mid-append leaves a
      partial frame.  :meth:`replay` yields every complete, CRC-valid
      record and stops cleanly at the first damaged one; opening the log
      for appending truncates that torn tail so new records never land
      after garbage.  Data *behind* a valid frame is never touched.

    A log is reopened with the same path; ``AppendLog(path)`` recovers
    (replay + truncate) before accepting new appends.  Instances are not
    thread-safe — the daemon serializes appends by construction.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._valid_size, self.torn_bytes = self._scan()
        if self.torn_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(self._valid_size)
        self._handle = open(self.path, "ab")
        self.records = self._count

    def _scan(self) -> tuple[int, int]:
        """Byte length of the valid prefix, and torn bytes beyond it."""
        self._count = 0
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return 0, 0
        valid = 0
        with open(self.path, "rb") as handle:
            while True:
                header = handle.read(_LOG_HEADER.size)
                if len(header) < _LOG_HEADER.size:
                    break
                magic, length, crc = _LOG_HEADER.unpack(header)
                if magic != LOG_MAGIC or length > LOG_MAX_RECORD:
                    break
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                valid += _LOG_HEADER.size + length
                self._count += 1
        return valid, size - valid

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns its record index."""
        if len(payload) > LOG_MAX_RECORD:
            raise ValueError(
                f"record of {len(payload)} bytes exceeds the "
                f"{LOG_MAX_RECORD}-byte frame cap"
            )
        frame = _LOG_HEADER.pack(LOG_MAGIC, len(payload), zlib.crc32(payload))
        self._handle.write(frame + payload)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        index = self.records
        self.records += 1
        return index

    def sync(self) -> None:
        """Explicit durability barrier (useful under ``fsync=False``)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def replay(self) -> Iterator[bytes]:
        """Yield every complete record in append order (torn tail skipped)."""
        with open(self.path, "rb") as handle:
            while True:
                header = handle.read(_LOG_HEADER.size)
                if len(header) < _LOG_HEADER.size:
                    return
                magic, length, crc = _LOG_HEADER.unpack(header)
                if magic != LOG_MAGIC or length > LOG_MAX_RECORD:
                    return
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return
                yield payload

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "AppendLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_log_records(path: str | os.PathLike) -> Iterator[bytes]:
    """Read-only replay of an append log's valid record prefix.

    Unlike constructing an :class:`AppendLog`, this never truncates a
    torn tail and never opens the file for writing — safe to run against
    a journal another process (or a live daemon in this process) still
    holds open for appending.  A missing file yields nothing.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return
    with handle:
        while True:
            header = handle.read(_LOG_HEADER.size)
            if len(header) < _LOG_HEADER.size:
                return
            magic, length, crc = _LOG_HEADER.unpack(header)
            if magic != LOG_MAGIC or length > LOG_MAX_RECORD:
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield payload
