"""Fault-plan value objects: the data half of :mod:`repro.chaos`.

:class:`FaultEvent` / :class:`FaultPlan` are frozen, validated,
JSON-round-trip-exact descriptions of *what* to inject — they carry no
execution machinery, so scenario specs can embed them without importing
the campaign stack (:mod:`repro.chaos` re-exports them alongside the
runner that interprets them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import SpecError
from repro.sim.seeds import child_seed

__all__ = [
    "CAMPAIGN_KINDS",
    "FAULT_KINDS",
    "SERVICE_KINDS",
    "SOCKET_KINDS",
    "FaultEvent",
    "FaultPlan",
]

#: Fault kinds interpreted by the batch chaos campaign (cell-targeted).
CAMPAIGN_KINDS = ("crash", "straggle", "corrupt", "kill_worker")

#: Fault kinds interpreted by the service soak driver against the
#: *socket* transport only — they need a real process boundary:
#: ``kill_shard_process`` SIGKILLs shard ``cell``'s daemon process once
#: that shard has accepted ``round`` submissions (the supervisor's
#: monitor restarts it from its WAL); ``drop_connection`` makes shard
#: ``cell`` admit-then-drop its next ``duration`` submission connections
#: without replying (lost acks), armed once ``round`` submissions have
#: been accepted globally; ``delay_response`` makes shard ``cell`` stall
#: its next ``duration`` admission replies past the client's request
#: deadline, armed the same way.
SOCKET_KINDS = ("kill_shard_process", "drop_connection", "delay_response")

#: Fault kinds interpreted by the service soak driver (daemon-targeted):
#: ``kill_daemon`` hard-kills the daemon after ``round`` accepted
#: submissions (then restarts it from the journals) — in a *sharded*
#: service ``cell`` selects the shard whose accepted count anchors the
#: kill, so a plan can land the kill relative to one journal's traffic;
#: ``pause_ingest`` pauses admission at submission offset ``round`` for
#: ``duration`` submissions (``cell`` unused; keep it 0).  The
#: ``SOCKET_KINDS`` ride along, valid only under ``transport="socket"``.
SERVICE_KINDS = ("kill_daemon", "pause_ingest") + SOCKET_KINDS

#: Recognized fault kinds, in documentation order.
FAULT_KINDS = CAMPAIGN_KINDS + SERVICE_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, pinned to a cell and a starting round.

    ``duration`` only matters for ``straggle``/``corrupt`` (how many
    rounds the effect lasts); ``kills`` only for ``kill_worker`` (how
    many attempts of the cell's primary unit die before one survives).

    The service kinds reuse the same schema with service semantics:
    ``kill_daemon`` hard-kills the aggregation daemon once ``round``
    submissions have been accepted — ``cell`` names the *shard* whose
    accepted count anchors the kill (0 is the whole service when it runs
    unsharded); ``pause_ingest`` pauses admission at submission offset
    ``round`` for ``duration`` attempts (``cell`` ignored).
    """

    kind: str
    cell: int = 0
    round: int = 0
    duration: int = 1
    kills: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"FaultEvent.kind must be one of {', '.join(FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        for name, floor in (
            ("cell", 0),
            ("round", 0),
            ("duration", 1),
            ("kills", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(
                    f"FaultEvent.{name} must be an integer, got {value!r}"
                )
            if value < floor:
                raise SpecError(
                    f"FaultEvent.{name} must be >= {floor}, got {value}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "cell": self.cell,
            "round": self.round,
            "duration": self.duration,
            "kills": self.kills,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Build an event from a JSON mapping; unknown keys are an error."""
        if not isinstance(data, Mapping):
            raise SpecError(
                f"FaultEvent wants a JSON object, got {type(data).__name__}"
            )
        known = {"kind", "cell", "round", "duration", "kills"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"FaultEvent does not accept key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "kind" not in data:
            raise SpecError("FaultEvent requires a 'kind' key")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of injected faults (JSON round-trip exact).

    Like a :class:`~repro.scenarios.spec.ScenarioSpec`, a plan is data:
    ``FaultPlan.from_dict(plan.to_dict()) == plan`` holds exactly, so
    plans embed in spec files and the uniform result record verbatim.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.events, (list, tuple)):
            raise SpecError(
                f"FaultPlan.events must be a list, got {type(self.events).__name__}"
            )
        coerced = tuple(
            event
            if isinstance(event, FaultEvent)
            else FaultEvent.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", coerced)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping; inverse of :meth:`from_dict`."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON mapping; unknown keys are an error."""
        if not isinstance(data, Mapping):
            raise SpecError(
                f"FaultPlan wants a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"events"})
        if unknown:
            raise SpecError(
                f"FaultPlan does not accept key(s): {', '.join(unknown)} "
                f"(known: events)"
            )
        return cls(events=tuple(data.get("events", ())))

    def validate_for(self, cells: int, iterations: int) -> None:
        """Check every event fits a *campaign* of this shape.

        Service-only kinds (``kill_daemon``, ``pause_ingest``) are a
        spec error here: the batch chaos campaign has no daemon to kill,
        and silently reinterpreting them (the compiler's fallthrough
        would read them as ``kill_worker``) would be a wrong experiment,
        not a degraded one.
        """
        for event in self.events:
            if event.kind in SERVICE_KINDS:
                raise SpecError(
                    f"fault kind {event.kind!r} is service-only (valid in "
                    f"service soaks, not batch chaos campaigns)"
                )
            if event.cell >= cells:
                raise SpecError(
                    f"fault plan targets cell {event.cell} of a "
                    f"{cells}-cell campaign"
                )
            if event.round >= iterations:
                raise SpecError(
                    f"fault plan targets round {event.round} of a "
                    f"{iterations}-round campaign"
                )

    def validate_for_service(
        self,
        submissions: int,
        shards: int = 1,
        shard_submissions: "tuple[int, ...] | None" = None,
    ) -> None:
        """Check every event fits a *service soak* of this many submissions.

        The mirror of :meth:`validate_for`: campaign-only kinds have no
        daemon-side meaning, and events anchored past the last submission
        offset would silently never fire.  For a sharded soak pass
        ``shards`` (and optionally ``shard_submissions``, the per-shard
        submission totals): ``kill_daemon.cell`` must name a real shard
        and its anchor must be reachable on that shard's own traffic.
        """
        for event in self.events:
            if event.kind not in SERVICE_KINDS:
                raise SpecError(
                    f"fault kind {event.kind!r} is campaign-only (valid in "
                    f"batch chaos campaigns, not service soaks)"
                )
            if event.kind in ("kill_daemon", "kill_shard_process"):
                if event.cell >= shards:
                    raise SpecError(
                        f"{event.kind} targets shard {event.cell} of a "
                        f"{shards}-shard service"
                    )
                # Anchored on *accepted* counts: fires once the target
                # shard has acknowledged `round` submissions.
                bound = submissions
                if shard_submissions is not None:
                    bound = shard_submissions[event.cell]
                if not 1 <= event.round <= bound:
                    raise SpecError(
                        f"{event.kind} anchors at accepted count "
                        f"{event.round} on shard {event.cell}; that shard "
                        f"accepts at most {bound} submissions"
                    )
            elif event.kind in ("drop_connection", "delay_response"):
                if event.cell >= shards:
                    raise SpecError(
                        f"{event.kind} targets shard {event.cell} of a "
                        f"{shards}-shard service"
                    )
                if not 1 <= event.round <= submissions:
                    raise SpecError(
                        f"{event.kind} arms at accepted count {event.round} "
                        f"of a {submissions}-submission soak"
                    )
            elif event.round >= submissions:
                raise SpecError(
                    f"fault plan anchors {event.kind!r} at submission "
                    f"offset {event.round} of a {submissions}-submission soak"
                )

    @classmethod
    def sample(
        cls,
        seed: int,
        cells: int,
        iterations: int,
        crashes: int = 1,
        stragglers: int = 1,
        corruptions: int = 1,
        worker_kills: int = 1,
    ) -> "FaultPlan":
        """Draw a deterministic plan from the campaign seed.

        Faults land on distinct cells drawn from a seeded permutation.
        At the default intensities the plan is survivable by
        construction for ``cells >= 4``, ``iterations >= 2`` and
        ``replication >= 2``:
        crashes land on the *final* round and stragglers return before
        it (so at most two collector points are ever lost in one round),
        and down cells avoid ring-adjacency (so a crashed cell's replica
        host is never itself down).  The same ``(seed, shape)`` always
        yields the same plan — handy for benches and smoke jobs that
        want "a nonzero plan" without hand-writing one.
        """
        import random

        if cells < 1 or iterations < 1:
            raise SpecError(
                f"FaultPlan.sample needs cells >= 1 and iterations >= 1, "
                f"got {cells}/{iterations}"
            )
        rng = random.Random(child_seed(seed, "fault-plan", cells, iterations))
        order = list(range(cells))
        rng.shuffle(order)
        taken: set[int] = set()

        def next_cell(avoid: tuple[int, ...] = ()) -> int:
            candidates = [c for c in order if c not in taken]
            if not candidates:
                taken.clear()
                candidates = list(order)
            for cell in candidates:
                if all(
                    (cell - other) % cells not in (1, cells - 1)
                    for other in avoid
                ):
                    taken.add(cell)
                    return cell
            taken.add(candidates[0])
            return candidates[0]

        events: list[FaultEvent] = []
        down: list[int] = []
        for _ in range(crashes):
            cell = next_cell(avoid=tuple(down))
            down.append(cell)
            events.append(
                FaultEvent(kind="crash", cell=cell, round=iterations - 1)
            )
        for _ in range(stragglers):
            cell = next_cell(avoid=tuple(down))
            down.append(cell)
            if iterations > 1:
                start = rng.randrange(iterations - 1)
                duration = min(1 + rng.randrange(2), (iterations - 1) - start)
            else:
                start, duration = 0, 1
            events.append(
                FaultEvent(
                    kind="straggle",
                    cell=cell,
                    round=start,
                    duration=max(1, duration),
                )
            )
        for _ in range(corruptions):
            events.append(
                FaultEvent(
                    kind="corrupt",
                    cell=next_cell(),
                    round=rng.randrange(iterations),
                )
            )
        for _ in range(worker_kills):
            events.append(FaultEvent(kind="kill_worker", cell=next_cell()))
        return cls(events=tuple(events))
