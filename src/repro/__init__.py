"""repro — Multi-Party Computation in IoT for Privacy-Preservation.

A full reproduction of Goyal & Saha (ICDCS 2022): Shamir Secret Sharing
based privacy-preserving data aggregation running over concurrent-
transmission (Glossy / MiniCast) communication, evaluated on simulated
nRF52840 testbeds.

Quickstart::

    from repro import S4Engine, S4Config, CryptoMode, flocklab

    spec = flocklab()
    engine = S4Engine.for_testbed(spec)
    secrets = {node: 20 + node for node in spec.topology.node_ids}
    metrics = engine.run(secrets, seed=1)
    print(metrics.per_node[0].aggregate, metrics.expected_aggregate)

Layer map (bottom-up): :mod:`repro.field` → :mod:`repro.crypto` →
:mod:`repro.sss` (pure algorithms); :mod:`repro.phy` →
:mod:`repro.topology` → :mod:`repro.sim` → :mod:`repro.ct` (wireless
substrate); :mod:`repro.core` (the paper's S3/S4), :mod:`repro.privacy`,
:mod:`repro.analysis`, :mod:`repro.cli` (evaluation).
"""

from repro.core import (
    CryptoMode,
    NodeMetrics,
    ProtocolConfig,
    RoundMetrics,
    S3Config,
    S3Engine,
    S4Config,
    S4Engine,
)
from repro.errors import ReproError
from repro.field import MERSENNE_61, MERSENNE_127, PrimeField
from repro.sss import ShamirScheme
from repro.topology.testbeds import TestbedSpec, dcube, flocklab, testbed_by_name

__version__ = "1.0.0"

__all__ = [
    "CryptoMode",
    "ProtocolConfig",
    "S3Config",
    "S4Config",
    "S3Engine",
    "S4Engine",
    "NodeMetrics",
    "RoundMetrics",
    "ReproError",
    "PrimeField",
    "MERSENNE_61",
    "MERSENNE_127",
    "ShamirScheme",
    "TestbedSpec",
    "flocklab",
    "dcube",
    "testbed_by_name",
    "__version__",
]
