"""Semi-honest coalition adversary.

A :class:`Coalition` is a set of corrupted nodes that follow the protocol
faithfully but pool everything they observe.  What a member observes in
an SSS-over-MiniCast round:

* the shares addressed to it (it can decrypt those — it holds the keys);
* the *ciphertexts* of everything else it relayed (useless without keys,
  so not recorded);
* every per-point sum broadcast in the reconstruction phase (plain text
  by design — these are public);
* the reconstructed aggregate (public output).

The interesting question is what the pooled shares reveal about an
honest node's secret, which :mod:`repro.privacy.analysis` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SecretSharingError
from repro.field.lagrange import interpolate_constant
from repro.field.prime_field import FieldElement, PrimeField
from repro.sss.shares import Share


@dataclass(frozen=True)
class CoalitionView:
    """Everything a coalition observed in one round.

    Attributes:
        shares: dealer → list of shares coalition members received from
            that dealer (at the members' public points).
        sums: public per-point sums seen in the reconstruction phase.
        aggregate: the public aggregation output (if the round completed).
    """

    shares: dict[int, list[Share]]
    sums: dict[int, int] = field(default_factory=dict)
    aggregate: int | None = None

    def shares_of(self, dealer: int) -> list[Share]:
        """Shares of one dealer's polynomial held by the coalition."""
        return list(self.shares.get(dealer, []))


class Coalition:
    """A semi-honest coalition of corrupted nodes.

    >>> coalition = Coalition([1, 5, 7])
    >>> coalition.size
    3
    """

    __slots__ = ("_members",)

    def __init__(self, members: Iterable[int]):
        member_set = set(members)
        if not member_set:
            raise SecretSharingError("a coalition needs at least one member")
        if any(m < 0 for m in member_set):
            raise SecretSharingError("coalition members must be node ids >= 0")
        self._members = frozenset(member_set)

    @property
    def members(self) -> frozenset[int]:
        """The corrupted node ids."""
        return self._members

    @property
    def size(self) -> int:
        """Coalition cardinality (compare against the degree p)."""
        return len(self._members)

    def breaches_threshold(self, degree: int) -> bool:
        """Whether this coalition exceeds the collusion threshold."""
        return self.size > degree

    def observe_sharing(
        self,
        shares_by_destination: Mapping[int, Iterable[Share]],
    ) -> dict[int, list[Share]]:
        """Collect the shares that landed on coalition members.

        ``shares_by_destination`` maps destination node → decrypted shares
        it received; only coalition members' entries are readable.
        """
        pooled: dict[int, list[Share]] = {}
        for destination, shares in shares_by_destination.items():
            if destination not in self._members:
                continue
            for share in shares:
                pooled.setdefault(share.dealer_id, []).append(share)
        return pooled

    def attempt_reconstruction(
        self,
        field_: PrimeField,
        view: CoalitionView,
        dealer: int,
        degree: int,
    ) -> FieldElement | None:
        """Try to recover one dealer's secret from pooled shares.

        Returns the interpolated constant term when the coalition holds
        at least ``degree + 1`` of the dealer's shares, else ``None`` —
        below the threshold interpolation is information-theoretically
        worthless (any secret is equally consistent), which the analysis
        module verifies.
        """
        shares = view.shares_of(dealer)
        if len(shares) < degree + 1:
            return None
        points = [(s.x, s.y) for s in shares[: degree + 1]]
        return interpolate_constant(field_, points)

    def __contains__(self, node: int) -> bool:
        return node in self._members

    def __repr__(self) -> str:
        return f"Coalition({sorted(self._members)})"
