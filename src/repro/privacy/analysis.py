"""Privacy verification tooling.

Three levels of rigour:

* :func:`exhaustive_secrecy_check` — over a tiny field, enumerate *every*
  dealer polynomial for two candidate secrets and compare the exact
  distributions of the coalition's view.  Perfect secrecy means the
  distributions are identical; this is Shamir's theorem made executable.
* :func:`statistical_view_distance` — over the production field, compare
  empirical view distributions for two secrets (sanity check at scale;
  statistical distance should be sampling noise).
* :func:`guess_secret_from_view` — the adversary's best effort; used to
  show that an above-threshold coalition *does* recover secrets exactly
  (the tooling can tell privacy from no-privacy).
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Sequence

from repro.crypto.prng import AesCtrDrbg
from repro.errors import SecretSharingError
from repro.field.polynomial import Polynomial
from repro.field.prime_field import PrimeField


def _coalition_view_distribution(
    field: PrimeField,
    secret: int,
    degree: int,
    coalition_points: Sequence[int],
) -> Counter:
    """Exact distribution of the coalition's share tuple for ``secret``.

    Enumerates all ``p^degree`` dealer polynomials with the given constant
    term (uniform randomness), recording the tuple of values at the
    coalition's points.  Only feasible for tiny fields — that is the
    point: exhaustiveness buys certainty.
    """
    prime = field.prime
    if prime ** degree > 500_000:
        raise SecretSharingError(
            f"exhaustive enumeration of {prime}^{degree} polynomials is "
            "infeasible; use a smaller field or degree"
        )
    distribution: Counter = Counter()
    for coefficients in itertools.product(range(prime), repeat=degree):
        poly = Polynomial(field, [secret % prime, *coefficients])
        view = tuple(poly(x).value for x in coalition_points)
        distribution[view] += 1
    return distribution


def exhaustive_secrecy_check(
    field: PrimeField,
    degree: int,
    coalition_points: Sequence[int],
    secret_a: int,
    secret_b: int,
) -> bool:
    """Whether two secrets induce *identical* coalition-view distributions.

    Returns True iff the coalition of ``len(coalition_points)`` holders
    learns exactly nothing distinguishing ``secret_a`` from ``secret_b``.
    Shamir guarantees True whenever ``len(coalition_points) <= degree``
    and False (for almost all pairs) above the threshold.
    """
    if len(set(coalition_points)) != len(coalition_points):
        raise SecretSharingError("coalition points must be distinct")
    if any(x % field.prime == 0 for x in coalition_points):
        raise SecretSharingError("x=0 cannot be a coalition point")
    dist_a = _coalition_view_distribution(field, secret_a, degree, coalition_points)
    dist_b = _coalition_view_distribution(field, secret_b, degree, coalition_points)
    return dist_a == dist_b


def statistical_view_distance(
    field: PrimeField,
    degree: int,
    coalition_points: Sequence[int],
    secret_a: int,
    secret_b: int,
    samples: int = 2000,
    seed: bytes = b"privacy-sampler",
    buckets: int = 16,
) -> float:
    """Empirical total-variation distance of the adversary's best statistic.

    Raw coalition views are essentially unique in a large field, so a
    naive joint histogram saturates on sampling noise.  Instead we apply
    the adversary's *sufficient statistic*: Lagrange-interpolate the
    constant term through the coalition's points.  Below the threshold
    that statistic is a uniformly random field element regardless of the
    secret (Shamir's theorem), so the bucketized distributions for two
    secrets match up to sampling noise ``O(sqrt(buckets/samples))``.  At
    or above the threshold the statistic *is* the secret, making the
    distance ≈ 1.
    """
    if samples < 1:
        raise SecretSharingError(f"samples must be >= 1, got {samples}")
    from repro.field.lagrange import interpolate_constant

    counters = []
    for tag, secret in (("a", secret_a), ("b", secret_b)):
        drbg = AesCtrDrbg.from_seed(seed + tag.encode())
        counter: Counter = Counter()
        for _ in range(samples):
            poly = Polynomial.random_with_secret(field, secret, degree, drbg)
            points = [(x, poly(x).value) for x in coalition_points]
            statistic = interpolate_constant(field, points).value
            counter[statistic * buckets // field.prime] += 1
        counters.append(counter)
    dist_a, dist_b = counters
    keys = set(dist_a) | set(dist_b)
    total_variation = sum(
        abs(dist_a.get(k, 0) - dist_b.get(k, 0)) for k in keys
    ) / (2 * samples)
    return total_variation


def guess_secret_from_view(
    field: PrimeField,
    degree: int,
    shares: Sequence[tuple[int, int]],
) -> int | None:
    """The adversary's best guess given ``(x, y)`` share pairs.

    With at least ``degree + 1`` shares the secret is determined exactly;
    below that the function refuses to guess (any guess would be
    uniformly wrong).
    """
    if len(shares) < degree + 1:
        return None
    from repro.field.lagrange import interpolate_constant

    return interpolate_constant(field, shares[: degree + 1]).value


def run_protocol_coalition_experiment(
    engine,
    secrets: dict[int, int],
    coalition_members: Sequence[int],
    seed: int = 0,
) -> dict[str, object]:
    """End-to-end: run a protocol round, pool a coalition's decrypted view.

    Uses the engine's own codecs and the round's actual delivery to
    reproduce exactly what corrupted destinations saw; returns
    per-dealer share counts and whether any honest dealer's secret is
    recoverable by the coalition.
    """
    from repro.privacy.adversary import Coalition

    coalition = Coalition(coalition_members)
    degree = engine.config.degree
    field = engine.config.field
    metrics = engine.run(secrets, seed=seed)

    # Re-derive what each coalition member decrypted: the engine's
    # accumulators are not exposed, but shares addressed to a member are
    # exactly the (dealer → share) pairs it could decrypt, which we can
    # reconstruct from the round's deterministic dealing.
    from repro.crypto.prng import AesCtrDrbg
    from repro.field.polynomial import Polynomial as Poly

    dealer_root = AesCtrDrbg.from_seed(f"round-{seed}")
    pooled: dict[int, list[tuple[int, int]]] = {}
    destinations = engine.destinations(sorted(secrets))
    for dealer in sorted(secrets):
        poly = Poly.random_with_secret(
            field, secrets[dealer], degree, dealer_root.fork(f"dealer-{dealer}")
        )
        for member in coalition.members:
            if member in destinations:
                x = engine.registry.point_of(member)
                pooled.setdefault(dealer, []).append((x.value, poly(x).value))

    recovered = {}
    for dealer, shares in pooled.items():
        guess = guess_secret_from_view(field, degree, shares)
        if guess is not None:
            recovered[dealer] = guess
    return {
        "coalition_size": coalition.size,
        "breaches_threshold": coalition.breaches_threshold(degree),
        "shares_per_dealer": {d: len(s) for d, s in pooled.items()},
        "recovered_secrets": recovered,
        "round_success": metrics.success_fraction,
    }
