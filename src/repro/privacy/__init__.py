"""Privacy analysis: the semi-honest adversary and what it learns.

The paper's security model is semi-honest with a collusion threshold of
the polynomial degree ``p``: any coalition of at most ``p`` share-holders
learns nothing about any individual secret.  This package provides:

* :mod:`repro.privacy.adversary` — a coalition that records every value
  its members legitimately see during a protocol round (shares, sums,
  reconstruction output) and attempts inference from them.
* :mod:`repro.privacy.analysis` — verification tooling: exhaustive
  perfect-secrecy checks over tiny fields, statistical
  indistinguishability over the production field, and leakage detection
  for above-threshold coalitions (which *should* break privacy — a
  sanity check that the tooling has teeth).
"""

from repro.privacy.adversary import Coalition, CoalitionView
from repro.privacy.analysis import (
    exhaustive_secrecy_check,
    guess_secret_from_view,
    statistical_view_distance,
)

__all__ = [
    "Coalition",
    "CoalitionView",
    "exhaustive_secrecy_check",
    "guess_secret_from_view",
    "statistical_view_distance",
]
