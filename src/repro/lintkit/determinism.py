"""Determinism rules: no ambient entropy or wall-clock in compute paths.

The repo's core promise is bit-identical replay: same spec, same seeds,
same bytes — across runs, across process pools, across crash/restart.
Three things silently break that promise and all of them look harmless
in review:

``det-wallclock``
    ``time.time()`` / ``datetime.now()`` / ``date.today()`` — wall-clock
    reads.  ``time.monotonic`` / ``perf_counter`` are fine (they time,
    they never *decide*).
``det-rng``
    draws from process-global or unseeded RNG state:
    module-level ``random.*`` functions, ``random.Random()`` with no
    seed, ``np.random.default_rng()`` / numpy module-level samplers
    with no seed.
``det-entropy``
    ``os.urandom`` / anything from ``secrets`` — OS entropy has no seed
    at all.

Some subsystems legitimately touch the clock or want decorrelated
jitter: cache sweeps age entries by wall time, retry backoff jitters
its *schedule* (never its results), the supervisor stamps heartbeats.
Those constructs are allowlisted here — in code, with a reason — rather
than baselined, because they are policy ("this module may use wall
time") not grandfathered debt.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.modules import SourceModule

__all__ = ["TIMING_ALLOWLIST", "check_determinism"]

# (module prefix, construct detail, reason).  The reason strings are
# surfaced by `repro lint --explain` material in DESIGN.md; keep them
# honest.
TIMING_ALLOWLIST: Tuple[Tuple[str, str, str], ...] = (
    (
        "repro.diskcache",
        "time.time",
        "cache sweep ages and LRU recency are lifecycle metadata; they "
        "decide eviction, never a computed result",
    ),
    (
        "repro.analysis.campaign",
        "random.Random()",
        "decorrelated-jitter retry backoff randomizes the *schedule* of "
        "retries; unit results stay bit-identical regardless of timing",
    ),
    (
        "repro.service.supervisor",
        "time.time",
        "heartbeat stamps and restart deadlines are liveness plumbing, "
        "not compute; window totals never read them",
    ),
)

_WALLCLOCK = {"time.time", "datetime.now", "datetime.datetime.now", "date.today", "datetime.utcnow"}
_RANDOM_MODULE_FNS = {
    "random",
    "randrange",
    "randint",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "betavariate",
    "expovariate",
    "getrandbits",
    "seed",
}
_NP_SAMPLERS = {
    "random",
    "rand",
    "randn",
    "randint",
    "normal",
    "choice",
    "shuffle",
    "permutation",
    "seed",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as a dotted string, else None."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _allowed(module: str, detail: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix, construct, _ in TIMING_ALLOWLIST
        if construct == detail
    )


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add((alias.asname or "random") + "!nprandom")
    return aliases


def _from_random_names(tree: ast.Module) -> Set[str]:
    """Names imported from the stdlib ``random`` module."""

    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _imports_secrets(tree: ast.Module) -> bool:
    """Whether the stdlib ``secrets`` module is imported (any scope).

    A local variable that merely happens to be named ``secrets`` (the
    sharding oracle's per-round secret dict) must not trigger
    det-entropy.
    """

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "secrets" for alias in node.names):
                return True
    return False


def check_determinism(mods: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    for mod in mods:
        if mod.name == "repro.lintkit" or mod.name.startswith("repro.lintkit."):
            continue  # the linter may describe these constructs
        np_aliases = _numpy_aliases(mod.tree)
        np_random_names = {a[: -len("!nprandom")] for a in np_aliases if a.endswith("!nprandom")}
        np_modules = {a for a in np_aliases if not a.endswith("!nprandom")}
        random_names = _from_random_names(mod.tree)
        has_secrets = _imports_secrets(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            hit = _classify(dotted, node, np_modules, np_random_names, random_names, has_secrets)
            if hit is None:
                continue
            rule, detail, message, hint = hit
            if _allowed(mod.name, detail):
                continue
            findings.append(
                Finding(rule=rule, path=mod.rel, line=node.lineno, detail=detail,
                        message=message, hint=hint)
            )
    return findings


def _classify(
    dotted: str,
    node: ast.Call,
    np_modules: Set[str],
    np_random_names: Set[str],
    random_names: Set[str],
    has_secrets: bool,
) -> Optional[Tuple[str, str, str, str]]:
    seeded = bool(node.args) or any(kw.arg in ("seed", "x") for kw in node.keywords)

    if dotted in _WALLCLOCK:
        return (
            "det-wallclock",
            dotted.split(".", 1)[0] + "." + dotted.rsplit(".", 1)[1]
            if dotted.startswith("datetime.datetime.")
            else dotted,
            f"wall-clock read {dotted}() — replay will see a different value",
            "thread a timestamp parameter in, or use time.monotonic for durations",
        )
    if dotted == "os.urandom":
        return (
            "det-entropy",
            "os.urandom",
            "os.urandom draws OS entropy — there is no seed to replay",
            "derive bytes from the experiment's seeded DRBG instead",
        )
    if dotted.startswith("secrets.") and has_secrets:
        return (
            "det-entropy",
            dotted,
            f"{dotted}() draws OS entropy — there is no seed to replay",
            "derive values from the experiment's seeded DRBG instead",
        )
    first, _, rest = dotted.partition(".")
    if first == "random" and rest in _RANDOM_MODULE_FNS:
        return (
            "det-rng",
            f"random.{rest}",
            f"random.{rest}() draws from the process-global RNG",
            "use a random.Random(seed) instance owned by the caller",
        )
    if (dotted == "random.Random" or (not rest and first in random_names and first == "Random")):
        if not seeded:
            return (
                "det-rng",
                "random.Random()",
                "random.Random() with no seed — seeded from OS entropy",
                "pass an explicit seed derived from the experiment seed",
            )
        return None
    # numpy: np.random.default_rng(), np.random.<sampler>(), or
    # `from numpy import random as npr` → npr.default_rng()
    parts = dotted.split(".")
    if len(parts) >= 2 and (
        (parts[0] in np_modules and len(parts) >= 3 and parts[1] == "random")
        or (parts[0] in np_random_names)
    ):
        fn = parts[-1]
        if fn == "default_rng" and not seeded:
            return (
                "det-rng",
                "np.random.default_rng()",
                "np.random.default_rng() with no seed — seeded from OS entropy",
                "pass a seed derived via sim.seeds (e.g. child_seed(...))",
            )
        if fn in _NP_SAMPLERS:
            return (
                "det-rng",
                f"np.random.{fn}",
                f"np.random.{fn}() draws from numpy's process-global RNG",
                "use a Generator built from a seeded PCG64/SeedSequence",
            )
    return None
