"""``python -m repro.lintkit`` — run the invariant linter."""

from __future__ import annotations

import sys

from repro.lintkit.runner import main

if __name__ == "__main__":
    sys.exit(main())
