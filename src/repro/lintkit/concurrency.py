"""Concurrency rules for :mod:`repro.service`.

The service stack's crash-safety story (journal-before-ack, record-atomic
kills) only holds if its locks are acquired in one canonical order and
never wrap blocking work that could stall the whole daemon.  Three
static rules enforce the lexically checkable part; the runtime watchdog
(:mod:`repro.lintkit.lockdep`) covers acquisition chains that cross
function boundaries.

``lock-order``
    a ``with self.<lock>`` nested inside another whose static rank is
    greater-or-equal — the canonical order is close(10) < spawn(20) <
    shard(30) < state(40) < endpoint(50), matching
    ``lockdep.SERVICE_LOCK_RANKS``
``lock-init``
    ``threading.Lock()`` / ``ordered_lock()`` created outside
    ``__init__`` (or module level) — late-created locks race their own
    creation and dodge the watchdog's rank table
``lock-blocking``
    a blocking call (``sleep``, ``join``, ``recv*``, ``fsync``/``sync``,
    ``accept``, ``select``, ``wait``) lexically inside a ``with
    self.<lock>`` block
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.modules import SourceModule

__all__ = ["STATIC_LOCK_RANKS", "BLOCKING_CALLS", "check_concurrency"]

# Attribute name -> static rank.  Mirrors lockdep.SERVICE_LOCK_RANKS but
# keys on the attribute the source uses, which is all a lexical pass can
# see.  `_lock` is the transport-endpoint / shard-server innermost lock.
STATIC_LOCK_RANKS: Dict[str, int] = {
    "_close_lock": 10,
    "_spawn_locks": 20,
    "_shard_locks": 30,
    "_state": 40,
    "_lock": 50,
}

BLOCKING_CALLS = frozenset(
    {
        "sleep",
        "join",
        "recv",
        "recv_into",
        "recv_record",
        "recvfrom",
        "fsync",
        "sync",
        "select",
        "accept",
        "wait",
        "flock",
    }
)

_LOCK_CONSTRUCTORS = {"Lock", "RLock", "ordered_lock"}


def _lock_attr(expr: ast.AST) -> Optional[str]:
    """Name of the lock attribute in ``self.X`` / ``self.X[i]``, if any."""

    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in STATIC_LOCK_RANKS
    ):
        return expr.attr
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_lock_constructor(node: ast.Call) -> bool:
    name = _call_name(node)
    if name not in _LOCK_CONSTRUCTORS:
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return isinstance(func.value, ast.Name) and func.value.id in ("threading", "lockdep")
    return True


def check_concurrency(mods: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    for mod in mods:
        if not (mod.name == "repro.service" or mod.name.startswith("repro.service.")):
            continue
        _scan(mod, mod.tree, func_name=None, held=[], findings=findings)
    return findings


def _scan(
    mod: SourceModule,
    node: ast.AST,
    func_name: Optional[str],
    held: List[Tuple[int, str, int]],  # (rank, attr, line)
    findings: List[Finding],
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan(mod, child, func_name=child.name, held=[], findings=findings)
            continue
        if isinstance(child, ast.Lambda):
            continue
        if isinstance(child, ast.Call):
            _check_call(mod, child, func_name, held, findings)
            # fall through: arguments may contain nested withs? (no — but
            # nested calls matter for lock constructors inside args)
            _scan(mod, child, func_name, held, findings)
            continue
        if isinstance(child, ast.With):
            entered: List[Tuple[int, str, int]] = []
            for item in child.items:
                attr = _lock_attr(item.context_expr)
                if attr is None:
                    continue
                rank = STATIC_LOCK_RANKS[attr]
                outer = held + entered
                if outer:
                    worst_rank, worst_attr, worst_line = max(outer)
                    if rank <= worst_rank:
                        findings.append(
                            Finding(
                                rule="lock-order",
                                path=mod.rel,
                                line=item.context_expr.lineno,
                                detail=f"{attr} under {worst_attr}",
                                message=(
                                    f"acquiring self.{attr} (rank {rank}) while "
                                    f"holding self.{worst_attr} (rank {worst_rank}, "
                                    f"line {worst_line}) inverts the canonical "
                                    "lock order"
                                ),
                                hint="acquire in rank order (close < spawn < shard "
                                "< state < endpoint); for same-rank arrays use "
                                "ascending index via _acquire_all",
                            )
                        )
                entered.append((rank, attr, item.context_expr.lineno))
            _scan(mod, child, func_name, held + entered, findings)
            continue
        _scan(mod, child, func_name, held, findings)


def _check_call(
    mod: SourceModule,
    node: ast.Call,
    func_name: Optional[str],
    held: List[Tuple[int, str, int]],
    findings: List[Finding],
) -> None:
    if _is_lock_constructor(node) and func_name not in (None, "__init__"):
        findings.append(
            Finding(
                rule="lock-init",
                path=mod.rel,
                line=node.lineno,
                detail=f"lock created in {func_name}",
                message=(
                    f"lock constructed inside {func_name}() — locks must be "
                    "created in __init__ (or at module level) so every thread "
                    "sees the same object and the watchdog knows its rank"
                ),
                hint="move the construction to __init__ via "
                "lintkit.lockdep.ordered_lock(name)",
            )
        )
    name = _call_name(node)
    if held and name in BLOCKING_CALLS:
        _, worst_attr, _ = max(held)
        findings.append(
            Finding(
                rule="lock-blocking",
                path=mod.rel,
                line=node.lineno,
                detail=f"{name} under {worst_attr}",
                message=(
                    f"blocking call {name}() while holding self.{worst_attr} — "
                    "a stall here wedges every thread queued on the lock"
                ),
                hint="copy what you need under the lock, release, then block",
            )
        )
