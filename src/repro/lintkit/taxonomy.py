"""Taxonomy rules: errors map to :mod:`repro.errors`; wire kinds are total.

``tax-raise``
    Every ``raise`` in ``src/repro`` must throw a :class:`ReproError`
    subclass — that is what keeps the CLI's exit-code contract (2 spec /
    1 runtime / 0 ok) and the service's retry taxonomy total.  Allowed
    escapes: bare ``raise`` (re-raise), ``NotImplementedError`` (the
    abstract-method idiom), ``AttributeError`` inside ``__getattr__``,
    and a stdlib exception raised *and caught* inside the same
    enclosing ``try`` (local control flow never leaves the module).
    Raises whose class the analyzer cannot resolve (factory calls,
    variables) are skipped, not guessed at.

``tax-wire``
    Every wire record kind constant in ``service/wire.py`` must appear
    in the ``RECORD_TYPES`` registry (that is what gives it an encoder
    and a decoder), carry a distinct tag byte, and be referenced by the
    wire fuzz suites — so the next ADMISSION_REPLY-style addition
    cannot silently ship without corruption coverage.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lintkit.findings import Finding
from repro.lintkit.modules import SourceModule

__all__ = ["check_raises", "check_wire_kinds", "STDLIB_EXCEPTIONS"]

STDLIB_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "ArgumentTypeError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TypeError",
        "UnicodeDecodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

# Default fuzz suites for tax-wire (repo-relative).  The generated
# exhaustiveness test is deliberately NOT in this list: it asserts the
# same property at run time and must not satisfy itself.
WIRE_FUZZ_FILES = (
    "tests/service/test_wire.py",
    "tests/service/test_transport.py",
)


def _collect_error_classes(mods: List[SourceModule]) -> Set[str]:
    """All class names (by simple name) deriving from ReproError."""

    known: Set[str] = {"ReproError"}
    # Fixpoint over every module: subclasses may live anywhere and the
    # bases are referenced by simple name after `from repro.errors import X`.
    changed = True
    class_defs: List[ast.ClassDef] = []
    for mod in mods:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                class_defs.append(node)
    while changed:
        changed = False
        for node in class_defs:
            if node.name in known:
                continue
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if base_name in known:
                    known.add(node.name)
                    changed = True
                    break
    return known


def _raised_name(exc: ast.AST) -> Optional[str]:
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _handler_names(handler: ast.ExceptHandler) -> Set[str]:
    t = handler.type
    if t is None:
        return {"BaseException"}
    nodes: Sequence[ast.AST] = t.elts if isinstance(t, ast.Tuple) else [t]
    names: Set[str] = set()
    for node in nodes:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name:
            names.add(name)
    return names


def check_raises(mods: List[SourceModule]) -> List[Finding]:
    error_classes = _collect_error_classes(mods)
    findings: List[Finding] = []
    for mod in mods:
        if mod.name.startswith("repro.lintkit"):
            continue  # fixture text inside docstrings/tests of the linter
        _scan_raises(mod, mod.tree, func_name=None, try_stack=[], out=findings,
                     error_classes=error_classes)
    return findings


def _scan_raises(
    mod: SourceModule,
    node: ast.AST,
    func_name: Optional[str],
    try_stack: List[Set[str]],
    out: List[Finding],
    error_classes: Set[str],
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_raises(mod, child, child.name, [], out, error_classes)
            continue
        if isinstance(child, ast.Try):
            caught: Set[str] = set()
            for handler in child.handlers:
                caught |= _handler_names(handler)
            for stmt in child.body:
                _scan_raises(mod, stmt, func_name, try_stack + [caught], out, error_classes)
                _visit_stmt_raise(mod, stmt, func_name, try_stack + [caught], out, error_classes)
            for part in (child.handlers, child.orelse, child.finalbody):
                for stmt in part:
                    _scan_raises(mod, stmt, func_name, try_stack, out, error_classes)
                    _visit_stmt_raise(mod, stmt, func_name, try_stack, out, error_classes)
            continue
        _visit_stmt_raise(mod, child, func_name, try_stack, out, error_classes)
        _scan_raises(mod, child, func_name, try_stack, out, error_classes)


def _visit_stmt_raise(
    mod: SourceModule,
    stmt: ast.AST,
    func_name: Optional[str],
    try_stack: List[Set[str]],
    out: List[Finding],
    error_classes: Set[str],
) -> None:
    if not isinstance(stmt, ast.Raise):
        return
    if stmt.exc is None:
        return  # bare re-raise
    name = _raised_name(stmt.exc)
    if name is None:
        return  # raised a computed expression; out of static reach
    if name in error_classes:
        return
    if name == "NotImplementedError":
        return  # abstract-method idiom
    if name == "AttributeError" and func_name in ("__getattr__", "__getattribute__"):
        return  # the module/attribute protocol requires it
    if name not in STDLIB_EXCEPTIONS:
        return  # unknown class (imported helper, local alias) — don't guess
    for caught in try_stack:
        if name in caught or "Exception" in caught or "BaseException" in caught:
            return  # raised-and-caught locally: control flow, not API
    out.append(
        Finding(
            rule="tax-raise",
            path=mod.rel,
            line=stmt.lineno,
            detail=f"raise {name}",
            message=(
                f"raise {name} escapes the repro.errors taxonomy — callers "
                "catching ReproError (and the CLI's exit-code map) miss it"
            ),
            hint="raise the matching repro.errors subclass (SpecError for "
            "bad arguments, ServiceError for broken service invariants, ...)",
        )
    )


def check_wire_kinds(
    mods: List[SourceModule],
    root: Path,
    fuzz_files: Sequence[str] = WIRE_FUZZ_FILES,
) -> List[Finding]:
    wire = next((m for m in mods if m.name == "repro.service.wire"), None)
    if wire is None:
        return []  # fixture trees without a wire module skip the rule
    findings: List[Finding] = []
    kinds: Dict[str, int] = {}
    kind_lines: Dict[str, int] = {}
    registry_keys: Set[str] = set()
    registry_classes: Dict[str, str] = {}  # kind name -> record class name
    for node in wire.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id.isupper()
            and not target.id.startswith("_")
            and isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
        ):
            kinds[target.id] = value.value
            kind_lines[target.id] = node.lineno
        if isinstance(target, ast.Name) and target.id == "RECORD_TYPES":
            if isinstance(value, ast.Dict):
                for key, cls in zip(value.keys, value.values):
                    if isinstance(key, ast.Name):
                        registry_keys.add(key.id)
                        if isinstance(cls, ast.Name):
                            registry_classes[key.id] = cls.id

    by_tag: Dict[int, str] = {}
    for name, tag in sorted(kinds.items()):
        if tag in by_tag:
            findings.append(
                Finding(
                    rule="tax-wire",
                    path=wire.rel,
                    line=kind_lines[name],
                    detail=f"duplicate tag {name}",
                    message=f"wire kind {name} reuses tag byte {tag} ({by_tag[tag]})",
                    hint="every record kind needs a distinct tag byte",
                )
            )
        else:
            by_tag[tag] = name
        if name not in registry_keys:
            findings.append(
                Finding(
                    rule="tax-wire",
                    path=wire.rel,
                    line=kind_lines[name],
                    detail=f"unregistered kind {name}",
                    message=(
                        f"wire kind {name} is not a RECORD_TYPES key — it has "
                        "no encoder/decoder binding"
                    ),
                    hint="add the kind -> record-class entry to RECORD_TYPES",
                )
            )

    fuzz_text = ""
    for rel in fuzz_files:
        path = root / rel
        if path.exists():
            fuzz_text += path.read_text(encoding="utf-8")
    if fuzz_text:
        for name in sorted(kinds):
            # The fuzz suites may reference the kind constant itself or
            # the record class bound to it — either proves coverage.
            cls_name = registry_classes.get(name, "")
            if name not in fuzz_text and (not cls_name or cls_name not in fuzz_text):
                findings.append(
                    Finding(
                        rule="tax-wire",
                        path=wire.rel,
                        line=kind_lines[name],
                        detail=f"unfuzzed kind {name}",
                        message=(
                            f"wire kind {name} never appears in the fuzz suites "
                            f"({', '.join(fuzz_files)}) — corruption of this "
                            "record type is untested"
                        ),
                        hint="add a round-trip + corruption case for the kind "
                        "to tests/service/test_wire.py",
                    )
                )
    return findings
