"""Lint orchestration and the ``repro lint`` / ``python -m repro.lintkit`` CLI.

Runs every rule family over ``<root>/src/repro``, subtracts the
baseline, and reports what is left.  Exit codes follow the repo-wide
contract: 0 clean (baselined findings and unused baseline entries are
notes, not failures), 1 for findings outside the baseline, 2 for a
malformed invocation (missing tree, broken baseline file).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ReproError, SpecError
from repro.lintkit import concurrency, determinism, layering, taxonomy
from repro.lintkit.findings import Baseline, Finding, load_baseline
from repro.lintkit.modules import load_modules

__all__ = ["LintReport", "run_lint", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class LintReport:
    """Everything one lint pass learned."""

    findings: List[Finding] = field(default_factory=list)  # NOT baselined
    suppressed: List[Finding] = field(default_factory=list)  # baselined
    unused_baseline: List[dict] = field(default_factory=list)
    modules_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def run_lint(root: Path, baseline_path: Optional[Path] = None) -> LintReport:
    """Lint the tree at ``root`` (the directory containing ``src/repro``)."""

    root = Path(root)
    mods = load_modules(root)
    findings: List[Finding] = []
    findings.extend(layering.check_layering(mods))
    findings.extend(determinism.check_determinism(mods))
    findings.extend(concurrency.check_concurrency(mods))
    findings.extend(taxonomy.check_raises(mods))
    findings.extend(taxonomy.check_wire_kinds(mods, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))

    if baseline_path is None:
        baseline_path = root / DEFAULT_BASELINE
    baseline = load_baseline(baseline_path) if baseline_path else Baseline()
    new, suppressed, unused = baseline.split(findings)
    return LintReport(
        findings=new,
        suppressed=suppressed,
        unused_baseline=unused,
        modules_checked=len(mods),
    )


def render_report(report: LintReport, verbose: bool = False) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if verbose:
        for finding in report.suppressed:
            lines.append(f"baselined: {finding.path}: {finding.rule}: {finding.detail}")
    for entry in report.unused_baseline:
        lines.append(
            "note: unused baseline entry "
            f"{entry['rule']} @ {entry['path']} ({entry['detail']}) — "
            "the violation is gone; drop the entry"
        )
    lines.append(
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} baselined, "
        f"{len(report.unused_baseline)} unused baseline entr(y/ies), "
        f"{report.modules_checked} modules checked"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant linter for the repro source tree",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root (the directory containing src/repro); default: cwd",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined (suppressed) findings",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root).resolve()
    baseline = Path(args.baseline) if args.baseline else None
    try:
        report = run_lint(root, baseline)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    output = render_report(report, verbose=args.verbose)
    if output:
        print(output)
    return 0 if report.clean else 1
