"""Source-tree loading for the invariant linter.

The linter operates on every ``*.py`` file under ``<root>/src/repro``.
Each file is parsed once into a :class:`SourceModule` carrying its
dotted module name, AST, and text; the rule modules share these instead
of re-reading files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List

from repro.errors import SpecError

__all__ = ["SourceModule", "load_modules", "module_name_for"]


@dataclass
class SourceModule:
    """One parsed source file under ``src/repro``."""

    path: Path  # absolute path
    rel: str  # repo-relative posix path ("src/repro/...")
    name: str  # dotted module name ("repro.service.daemon")
    tree: ast.Module
    text: str


def module_name_for(rel_to_src: Path) -> str:
    """Map ``repro/service/daemon.py`` → ``repro.service.daemon``.

    Package ``__init__.py`` files take the package's own name, so the
    root ``repro/__init__.py`` is simply ``repro``.
    """

    parts = list(rel_to_src.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_modules(root: Path) -> List[SourceModule]:
    """Parse every python file under ``<root>/src/repro``."""

    src = root / "src"
    pkg = src / "repro"
    if not pkg.is_dir():
        raise SpecError(f"no src/repro package under {root} — nothing to lint")
    modules: List[SourceModule] = []
    for path in sorted(pkg.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise SpecError(f"{path}: cannot lint a file that does not parse: {exc}") from exc
        modules.append(
            SourceModule(
                path=path,
                rel=path.relative_to(root).as_posix(),
                name=module_name_for(path.relative_to(src)),
                tree=tree,
                text=text,
            )
        )
    return modules
