"""Layering rules: the declared module DAG, forbidden edges, cycles.

The repo's import structure is declared here as a rank table: an import
edge ``A -> B`` (module-level only; lazy function-level imports are a
legitimate layering escape hatch and are ignored) is legal when A's
rank is strictly greater than B's, i.e. modules may only import
*downward*.  Modules inside the same top-level subpackage
(``repro.service.* -> repro.service.*``) may also import sideways
(equal rank) — intra-package structure is governed by the package
itself — but a specially low-ranked leaf inside a package (``wire``)
stays import-protected even from its siblings.

Three rules come out of this:

``layering-edge``
    a module-level import whose target ranks at or above the importer
``layering-cycle``
    a strongly connected component in the module-level import graph
``layer-undeclared``
    a module whose name matches no prefix in the table — new packages
    must be placed in the DAG explicitly
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.modules import SourceModule

__all__ = ["LAYER_RANKS", "check_layering", "module_level_imports", "rank_of"]

# Dotted-prefix -> rank.  Most specific prefix wins, so a module can be
# pulled out of its package's layer (service.wire is a leaf codec that
# the whole stack may use; service.loadgen is a consumption model shared
# with the scenario layer; core.metrics is a plain record type).
# Lower rank = lower layer = importable by more of the tree.
LAYER_RANKS: Dict[str, int] = {
    "repro.errors": 0,
    "repro.lintkit.lockdep": 2,  # runtime watchdog: errors-only leaf
    "repro.core.metrics": 6,  # plain summary records (wire payloads)
    "repro.fastpath": 8,  # module-level stdlib-only accelerator front
    "repro.diskcache": 8,
    "repro.service.wire": 10,  # leaf codec: records + framing, no deps up
    "repro.field": 14,
    "repro.crypto": 16,
    "repro.phy": 18,
    "repro.sss": 20,
    "repro.topology": 22,  # geometric substrate: errors + phy.channel only
    "repro.sim": 24,
    "repro.faultplan": 26,  # leaf of the orchestration layers (uses sim.seeds)
    "repro.ct": 28,
    "repro.core": 36,
    "repro.privacy": 40,
    "repro.analysis": 44,
    "repro.service.loadgen": 48,  # deterministic load model, scenario-visible
    "repro.scenarios": 52,
    "repro.chaos": 56,
    "repro.service": 60,
    "repro": 70,  # the package root re-exports the public API
    "repro.cli": 80,
    "repro.lintkit": 80,
}


def rank_of(name: str) -> Optional[int]:
    """Rank of a dotted module name via its most specific prefix.

    The bare ``repro`` entry matches only the package root itself: a new
    top-level subpackage must be declared explicitly (layer-undeclared)
    rather than silently inheriting the root's rank.
    """

    probe = name
    while probe:
        if probe in LAYER_RANKS and (probe != "repro" or name == "repro"):
            return LAYER_RANKS[probe]
        if "." not in probe:
            return None
        probe = probe.rsplit(".", 1)[0]
    return None


def _top_package(name: str) -> str:
    parts = name.split(".")
    return parts[1] if len(parts) > 1 else ""


def module_level_imports(mod: SourceModule, known: Iterable[str]) -> List[Tuple[str, int]]:
    """Collect ``repro``-internal imports executed at module import time.

    Imports inside function bodies are deliberately skipped: a lazy
    import is the sanctioned way to break a would-be cycle (the CLI's
    command handlers, fastpath's backend probes).  ``from repro.X import
    name`` resolves to the submodule ``repro.X.name`` when such a module
    exists, else to the package ``repro.X`` itself.
    """

    known_set = set(known)
    edges: List[Tuple[str, int]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        edges.append((alias.name, child.lineno))
            elif isinstance(child, ast.ImportFrom):
                base = child.module or ""
                if child.level == 0 and (base == "repro" or base.startswith("repro.")):
                    for alias in child.names:
                        candidate = f"{base}.{alias.name}"
                        target = candidate if candidate in known_set else base
                        edges.append((target, child.lineno))
            else:
                visit(child)

    visit(mod.tree)
    return [(target, line) for target, line in edges if target != mod.name]


def _edge_allowed(importer: str, imported: str) -> bool:
    r_importer = rank_of(importer)
    r_imported = rank_of(imported)
    if r_importer is None or r_imported is None:
        # layer-undeclared reports the missing rank; don't double-report.
        return True
    if _top_package(importer) == _top_package(imported) and _top_package(importer):
        return r_importer >= r_imported
    return r_importer > r_imported


def _strongly_connected(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's algorithm, iterative, deterministic order."""

    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: set = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = graph.get(node, [])
            for i in range(child_i, len(children)):
                nxt = children[i]
                if nxt not in index:
                    work[-1] = (node, i + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    popped = stack.pop()
                    on_stack.discard(popped)
                    component.append(popped)
                    if popped == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])
    return sccs


def check_layering(mods: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    known = [m.name for m in mods]
    by_name = {m.name: m for m in mods}
    graph: Dict[str, List[str]] = {}

    for mod in mods:
        if rank_of(mod.name) is None:
            findings.append(
                Finding(
                    rule="layer-undeclared",
                    path=mod.rel,
                    line=1,
                    detail=mod.name,
                    message=f"module {mod.name} matches no declared layer",
                    hint="add the package to LAYER_RANKS in repro/lintkit/layering.py",
                )
            )
        edges = module_level_imports(mod, known)
        graph[mod.name] = sorted({t for t, _ in edges if t in by_name})
        for target, line in edges:
            if not _edge_allowed(mod.name, target):
                findings.append(
                    Finding(
                        rule="layering-edge",
                        path=mod.rel,
                        line=line,
                        detail=f"{mod.name} -> {target}",
                        message=(
                            f"{mod.name} (rank {rank_of(mod.name)}) imports "
                            f"{target} (rank {rank_of(target)}) at module level — "
                            "imports must point down the layer DAG"
                        ),
                        hint="move the import inside the function that needs it, "
                        "or move the shared code below both layers",
                    )
                )

    for component in _strongly_connected(graph):
        anchor = by_name[component[0]]
        findings.append(
            Finding(
                rule="layering-cycle",
                path=anchor.rel,
                line=1,
                detail="cycle: " + " <-> ".join(component),
                message="module-level import cycle: " + " <-> ".join(component),
                hint="break the cycle with a lazy (function-level) import "
                "or move the shared code below the cycle",
            )
        )
    return findings
