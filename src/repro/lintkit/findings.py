"""Finding and baseline machinery for the invariant linter.

A :class:`Finding` is one rule violation at one source location.  Its
identity for baseline purposes is ``(rule, path, detail)`` — *not* the
line number — so grandfathered findings survive unrelated edits to the
same file.  ``detail`` is a short, stable description of the construct
(``"repro.analysis.experiments -> repro.scenarios"``,
``"raise ValueError"``, ``"join under supervisor.spawn"``); the
human-facing ``message`` and ``hint`` may change freely without
invalidating the baseline.

The baseline file (``lint-baseline.json`` at the repo root) grandfathers
*intentional* violations.  Every entry must carry a non-empty ``reason``
string — an entry without one is a configuration error, because a
baseline that cannot say why it exists is just a suppressed bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import SpecError

__all__ = ["Finding", "Baseline", "load_baseline"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # e.g. "layering-edge", "det-wallclock", "lock-order"
    path: str  # repo-relative posix path, e.g. "src/repro/service/daemon.py"
    line: int  # 1-based line of the offending construct
    detail: str  # stable construct identity (baseline key component)
    message: str  # one-line description of what is wrong
    hint: str  # one-line fix hint

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.detail)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}\n    hint: {self.hint}"


@dataclass
class Baseline:
    """Grandfathered findings, keyed by ``(rule, path, detail)``."""

    entries: Dict[Tuple[str, str, str], str] = field(default_factory=dict)
    source: str = "<none>"

    def matches(self, finding: Finding) -> bool:
        return finding.key in self.entries

    def split(self, findings: List[Finding]) -> Tuple[List[Finding], List[Finding], List[dict]]:
        """Partition findings into (new, suppressed) and list unused entries."""

        new: List[Finding] = []
        suppressed: List[Finding] = []
        used: set = set()
        for finding in findings:
            if self.matches(finding):
                suppressed.append(finding)
                used.add(finding.key)
            else:
                new.append(finding)
        unused = [
            {"rule": rule, "path": path, "detail": detail, "reason": reason}
            for (rule, path, detail), reason in sorted(self.entries.items())
            if (rule, path, detail) not in used
        ]
        return new, suppressed, unused


def load_baseline(path: Path) -> Baseline:
    """Load ``lint-baseline.json``; absent file means an empty baseline."""

    if not path.exists():
        return Baseline()
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SpecError(f"lint baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or not isinstance(raw.get("entries"), list):
        raise SpecError(f"lint baseline {path} must be an object with an 'entries' list")
    entries: Dict[Tuple[str, str, str], str] = {}
    for i, entry in enumerate(raw["entries"]):
        if not isinstance(entry, dict):
            raise SpecError(f"lint baseline {path}: entry #{i} is not an object")
        missing = [k for k in ("rule", "path", "detail", "reason") if not entry.get(k)]
        if missing:
            raise SpecError(
                f"lint baseline {path}: entry #{i} is missing {missing} — every "
                "grandfathered finding must say what it is and why it is allowed"
            )
        key = (str(entry["rule"]), str(entry["path"]), str(entry["detail"]))
        if key in entries:
            raise SpecError(f"lint baseline {path}: duplicate entry {key}")
        entries[key] = str(entry["reason"])
    return Baseline(entries=entries, source=str(path))
