"""Invariant-enforcing static analysis + runtime lock-order watchdog.

``repro.lintkit`` machine-checks the contracts the rest of the repo
only promises: the layer DAG (no upward or cyclic module-level
imports), determinism (no ambient clock/entropy in compute paths), the
service lock discipline (canonical order, init-time creation, no
blocking under locks), and the error/wire taxonomy (every ``raise``
maps to :mod:`repro.errors`; every wire kind has codec + fuzz
coverage).  Run it as ``repro lint`` or ``python -m repro.lintkit``;
intentional exceptions live in ``lint-baseline.json`` with reasons.

The runtime half, :mod:`repro.lintkit.lockdep`, wraps the service
layer's locks when ``REPRO_LOCKDEP=1`` and raises
:class:`repro.errors.LintError` at the first acquisition that could
deadlock — see DESIGN.md "Invariant enforcement".

The analyzer symbols are loaded lazily so that the hot import path
(``repro.service`` → :mod:`repro.lintkit.lockdep`) never pays for the
AST machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lintkit.findings import Baseline, Finding, load_baseline
    from repro.lintkit.runner import LintReport, main, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "load_baseline",
    "main",
    "run_lint",
]

_EXPORTS = {
    "Baseline": ("repro.lintkit.findings", "Baseline"),
    "Finding": ("repro.lintkit.findings", "Finding"),
    "load_baseline": ("repro.lintkit.findings", "load_baseline"),
    "LintReport": ("repro.lintkit.runner", "LintReport"),
    "main": ("repro.lintkit.runner", "main"),
    "run_lint": ("repro.lintkit.runner", "run_lint"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.lintkit' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
