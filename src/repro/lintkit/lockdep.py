"""Runtime lock-order watchdog (a mini-lockdep) for the service layer.

The static concurrency rules (:mod:`repro.lintkit.concurrency`) catch
*lexically visible* lock nesting; this module catches the rest at run
time.  Every lock in :mod:`repro.service` is created through
:func:`ordered_lock`, which normally returns a plain
:class:`threading.Lock` — zero overhead, nothing to get wrong in
production.  When ``REPRO_LOCKDEP=1`` is set (the service test suites
enable it via ``tests/service/conftest.py``), the factory returns an
instrumented wrapper that

* keeps a per-thread stack of held locks,
* checks every acquisition against :data:`SERVICE_LOCK_RANKS` — a new
  lock's rank must be strictly greater than every rank already held by
  the thread (per-shard locks order by index within their rank), and
* records the global acquisition graph (``held -> acquired`` edges) and
  refuses any acquisition that would close a cycle, which covers locks
  that have no declared rank.

A violation raises :class:`repro.errors.LintError` immediately, at the
acquisition that would have made a deadlock *possible* — not at the
rare interleaving that makes it actual.

The canonical order (rank ascending) mirrors what the daemon and
supervisor actually do: the directory flock is taken first and alone,
``close``/``ingest`` gates come before per-shard locks, per-shard locks
(ascending index) come before the shared state lock, and the transport
endpoint lock — which serializes a socket and therefore blocks — is
innermost-forbidden: nothing may be acquired while it is held.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LintError

__all__ = [
    "SERVICE_LOCK_RANKS",
    "enabled",
    "ordered_lock",
    "reset",
]

# Canonical acquisition order for the service stack.  Lower rank must be
# acquired first; a thread may only ever acquire a lock whose rank is
# strictly greater than every rank it already holds.  Locks that exist
# in per-shard arrays pass ``index`` so that same-rank siblings order by
# index (ascending), matching ``ShardedServiceDaemon._acquire_all``.
SERVICE_LOCK_RANKS: Dict[str, int] = {
    "service.dirlock": 0,  # fcntl flock; documented, not instrumented
    "service.close": 10,  # ShardSupervisor._close_lock
    "ingest.close": 12,  # IngestFront._close_lock
    "supervisor.spawn": 20,  # ShardSupervisor._spawn_locks[i]
    "daemon.shard": 30,  # ShardedServiceDaemon._shard_locks[i]
    "shardserver.state": 38,  # ShardServer._lock (child process)
    "daemon.state": 40,  # ServiceDaemon._state
    "supervisor.state": 40,  # ShardSupervisor._state
    "transport.endpoint": 50,  # ShardEndpoint._lock (blocks on the socket)
}

_ENV_FLAG = "REPRO_LOCKDEP"


def enabled() -> bool:
    """True when the watchdog is switched on via ``REPRO_LOCKDEP``."""

    return os.environ.get(_ENV_FLAG, "") not in ("", "0")


_local = threading.local()

# Global acquisition graph: node -> set of nodes acquired while holding
# it.  Nodes are "name[index]" strings so per-shard siblings stay
# distinct.  Guarded by _graph_guard (a plain lock, never instrumented).
_graph_guard = threading.Lock()
_edges: Dict[str, Set[str]] = {}


def _held() -> List[Tuple[Optional[Tuple[int, int]], str, int]]:
    stack = getattr(_local, "held", None)
    if stack is None:
        stack = []
        _local.held = stack
    return stack


def reset() -> None:
    """Clear the acquisition graph and this thread's held stack (tests)."""

    with _graph_guard:
        _edges.clear()
    _local.held = []


def _reaches(start: str, targets: Set[str]) -> bool:
    """DFS over the acquisition graph: can ``start`` reach any target?"""

    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in targets:
            return True
        for nxt in _edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


class _LockdepLock:
    """threading.Lock wrapper enforcing rank order + acyclic acquisition."""

    __slots__ = ("_lock", "name", "node", "rank")

    def __init__(self, name: str, rank: Optional[int], index: int) -> None:
        self._lock = threading.Lock()
        self.name = name
        self.node = f"{name}[{index}]"
        self.rank: Optional[Tuple[int, int]] = None if rank is None else (rank, index)

    # -- checks ---------------------------------------------------------

    def _check(self) -> None:
        held = _held()
        if not held:
            return
        if self.rank is not None:
            ranked = [(rank, node) for rank, node, _ in held if rank is not None]
            if ranked:
                worst_rank, worst_node = max(ranked)
                if self.rank <= worst_rank:
                    raise LintError(
                        "lock order inversion: acquiring "
                        f"{self.node} (rank {self.rank}) while holding "
                        f"{worst_node} (rank {worst_rank}); the canonical "
                        "service order is rank-ascending "
                        "(dirlock < close < ingest < spawn < shard < state "
                        "< endpoint), per-shard locks by ascending index"
                    )
        held_nodes = {node for _, node, _ in held}
        with _graph_guard:
            if self.node in held_nodes or _reaches(self.node, held_nodes):
                raise LintError(
                    "lock acquisition cycle: acquiring "
                    f"{self.node} while holding {sorted(held_nodes)} would "
                    "close a cycle in the acquisition graph"
                )
            for node in held_nodes:
                _edges.setdefault(node, set()).add(self.node)

    # -- lock protocol --------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check()
        got = self._lock.acquire(blocking, timeout)
        if got:
            _held().append((self.rank, self.node, id(self)))
        return got

    def release(self) -> None:
        held = _held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][2] == id(self):
                del held[i]
                break
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


def ordered_lock(name: str, index: int = 0, rank: Optional[int] = None):
    """Create a service-layer lock that honours the canonical order.

    With ``REPRO_LOCKDEP`` unset this returns a plain
    :class:`threading.Lock` — the watchdog costs nothing unless asked
    for.  With the flag set it returns an instrumented lock whose rank
    comes from :data:`SERVICE_LOCK_RANKS` (or the explicit ``rank``
    argument, used by tests); unranked names fall back to pure
    acquisition-graph cycle detection.
    """

    if not enabled():
        return threading.Lock()
    resolved = SERVICE_LOCK_RANKS.get(name) if rank is None else rank
    return _LockdepLock(name, resolved, index)
