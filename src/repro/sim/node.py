"""Per-node simulation container.

A :class:`SimNode` bundles the state that belongs to one mote across a
whole experiment: identity, radio/energy accounting, provisioned key
material, its private DRBG, and an alive/failed flag for fault injection.
Protocol-round scratch state (chain knowledge, share accumulators) lives
in the protocol engines, keyed by node id — it is per-round, not
per-node-lifetime.
"""

from __future__ import annotations

from repro.crypto.keystore import PairwiseKeyStore
from repro.crypto.prng import AesCtrDrbg
from repro.errors import SimulationError
from repro.sim.energy import RadioEnergyMeter


class SimNode:
    """One simulated mote."""

    __slots__ = ("_node_id", "meter", "keystore", "drbg", "_alive", "_failed_at_us")

    def __init__(
        self,
        node_id: int,
        keystore: PairwiseKeyStore | None = None,
        drbg: AesCtrDrbg | None = None,
    ):
        if node_id < 0:
            raise SimulationError(f"node id must be >= 0, got {node_id}")
        self._node_id = node_id
        self.meter = RadioEnergyMeter()
        self.keystore = keystore if keystore is not None else PairwiseKeyStore(node_id)
        self.drbg = drbg if drbg is not None else AesCtrDrbg.from_seed(f"node-{node_id}")
        self._alive = True
        self._failed_at_us: int | None = None

    @property
    def node_id(self) -> int:
        """This node's id."""
        return self._node_id

    @property
    def alive(self) -> bool:
        """False once the node has been failed by fault injection."""
        return self._alive

    @property
    def failed_at_us(self) -> int | None:
        """When the node failed, or None."""
        return self._failed_at_us

    def fail(self, now_us: int) -> None:
        """Kill the node: radio off, no further participation."""
        if not self._alive:
            raise SimulationError(f"node {self._node_id} already failed")
        self._alive = False
        self._failed_at_us = now_us

    def revive(self) -> None:
        """Bring a failed node back (between rounds; models reboot)."""
        self._alive = True
        self._failed_at_us = None

    def __repr__(self) -> str:
        status = "alive" if self._alive else f"failed@{self._failed_at_us}"
        return f"SimNode({self._node_id}, {status})"
