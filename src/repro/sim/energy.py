"""Radio state machine and radio-on-time accounting.

"Radio-on time" — the paper's energy metric — is the total time a node's
radio spends in RX or TX.  :class:`RadioEnergyMeter` tracks state
transitions with explicit timestamps so protocols charge exactly the
intervals they keep the radio powered, including the asymmetric schedules
S4 uses (early radio-off).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SimulationError
from repro.phy.radio import RadioPower


class RadioState(Enum):
    """Power state of the radio."""

    OFF = "off"
    RX = "rx"
    TX = "tx"


class RadioEnergyMeter:
    """Accumulates time per radio state for one node.

    Drive it either with :meth:`transition` at state changes (timestamped
    by the simulator clock) or with the :meth:`charge_tx` / :meth:`charge_rx`
    bulk helpers for slot-granular protocols that account whole slots at
    once.  Both styles can be mixed as long as transitions stay
    chronological.
    """

    __slots__ = ("_state", "_state_since", "_tx_us", "_rx_us", "_last_time")

    def __init__(self) -> None:
        self._state = RadioState.OFF
        self._state_since = 0
        self._tx_us = 0
        self._rx_us = 0
        self._last_time = 0

    @property
    def state(self) -> RadioState:
        """Current radio state."""
        return self._state

    @property
    def tx_time_us(self) -> int:
        """Accumulated TX time (µs), not counting an open TX interval."""
        return self._tx_us

    @property
    def rx_time_us(self) -> int:
        """Accumulated RX time (µs), not counting an open RX interval."""
        return self._rx_us

    @property
    def radio_on_us(self) -> int:
        """Total radio-on time (TX + RX) in µs — the paper's metric."""
        return self._tx_us + self._rx_us

    def transition(self, now_us: int, new_state: RadioState) -> None:
        """Move to ``new_state`` at time ``now_us``, charging the old state."""
        if now_us < self._last_time:
            raise SimulationError(
                f"time went backwards: {now_us} < {self._last_time}"
            )
        elapsed = now_us - self._state_since
        if self._state is RadioState.TX:
            self._tx_us += elapsed
        elif self._state is RadioState.RX:
            self._rx_us += elapsed
        self._state = new_state
        self._state_since = now_us
        self._last_time = now_us

    def charge_tx(self, duration_us: int) -> None:
        """Bulk-charge a TX interval (slot-granular accounting)."""
        if duration_us < 0:
            raise SimulationError(f"negative TX duration {duration_us}")
        self._tx_us += duration_us

    def charge_rx(self, duration_us: int) -> None:
        """Bulk-charge an RX interval (slot-granular accounting)."""
        if duration_us < 0:
            raise SimulationError(f"negative RX duration {duration_us}")
        self._rx_us += duration_us

    def charge_uc(self, power: RadioPower | None = None) -> float:
        """Convert accumulated radio-on time to charge (µC)."""
        power = power or RadioPower()
        return power.charge_uc(self._tx_us, self._rx_us)

    def reset(self) -> None:
        """Zero all counters (start of a new measured round)."""
        self._tx_us = 0
        self._rx_us = 0
        self._state = RadioState.OFF
        self._state_since = self._last_time
        # _last_time is preserved: time never goes backwards mid-simulation.

    def __repr__(self) -> str:
        return (
            f"RadioEnergyMeter(state={self._state.value}, "
            f"tx={self._tx_us} us, rx={self._rx_us} us)"
        )
