"""Stable cross-process seeding.

``hash()`` of anything containing a string is randomized per process
(PYTHONHASHSEED), so seeding ``random.Random`` with it silently makes
experiments unreproducible across runs.  :func:`stable_seed` derives a
64-bit seed from SHA-256 over a canonical encoding instead — same inputs,
same stream, every process, every platform.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: int | float | str | bytes) -> int:
    """Deterministic 64-bit seed from arbitrary labelled parts."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bool):
            encoded = b"o" + bytes([part])
        elif isinstance(part, int):
            encoded = b"i" + part.to_bytes(16, "big", signed=True)
        elif isinstance(part, float):
            encoded = b"f" + repr(part).encode("ascii")
        elif isinstance(part, str):
            encoded = b"s" + part.encode("utf-8")
        elif isinstance(part, bytes):
            encoded = b"b" + part
        else:
            raise TypeError(f"unsupported seed part type {type(part).__name__}")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest()[:8], "big")
