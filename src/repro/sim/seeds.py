"""Stable cross-process seeding.

``hash()`` of anything containing a string is randomized per process
(PYTHONHASHSEED), so seeding ``random.Random`` with it silently makes
experiments unreproducible across runs.  :func:`stable_seed` derives a
64-bit seed from SHA-256 over a canonical encoding instead — same inputs,
same stream, every process, every platform.

:func:`child_seed` and :func:`iteration_seeds` build on it for campaign
fan-out: a parent seed deterministically spawns labelled child seeds, and
an iteration range maps to per-round seeds that depend only on the
*absolute* iteration index — never on how iterations are chunked across
workers.  A campaign sliced over a ``ProcessPoolExecutor`` therefore
feeds every round exactly the seed the serial loop would have.
"""

from __future__ import annotations

import hashlib
from typing import Sequence


def stable_seed(*parts: int | float | str | bytes) -> int:
    """Deterministic 64-bit seed from arbitrary labelled parts."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bool):
            encoded = b"o" + bytes([part])
        elif isinstance(part, int):
            encoded = b"i" + part.to_bytes(16, "big", signed=True)
        elif isinstance(part, float):
            encoded = b"f" + repr(part).encode("ascii")
        elif isinstance(part, str):
            encoded = b"s" + part.encode("utf-8")
        elif isinstance(part, bytes):
            encoded = b"b" + part
        else:
            raise TypeError(f"unsupported seed part type {type(part).__name__}")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest()[:8], "big")


def child_seed(parent: int, *labels: int | float | str | bytes) -> int:
    """Spawn a labelled child seed from a parent campaign seed.

    Children with distinct labels get independent streams; the same
    (parent, labels) pair yields the same child in every process.  This
    is the one derivation rule both the serial experiment loops and the
    parallel campaign workers use, which is what makes their round
    streams identical.
    """
    return stable_seed(parent, *labels)


def iteration_seeds(
    seed: int,
    label: int | float | str | bytes,
    start: int,
    count: int,
) -> list[int]:
    """Per-round seeds for absolute iterations ``[start, start + count)``.

    Chunk-invariant by construction::

        iteration_seeds(s, l, 0, 10)
            == iteration_seeds(s, l, 0, 4) + iteration_seeds(s, l, 4, 6)

    so a sweep point split into worker chunks runs bit-identical rounds
    to the serial loop.
    """
    if start < 0 or count < 0:
        raise ValueError(f"start/count must be >= 0, got {start}/{count}")
    return [child_seed(seed, label, i) for i in range(start, start + count)]


def cell_seeds(seed: int, cells: int) -> tuple[int, ...]:
    """Per-cell campaign seeds for a sharded deployment.

    Cell ``i`` of a sharded campaign always runs under
    ``child_seed(seed, "cell", i)`` — this is the one derivation rule the
    cell units and any serial re-execution share, so a cell's round
    stream is independent of which worker ran it and of how many other
    cells exist.  Distinct cells get independent streams; the same
    (seed, index) pair yields the same cell seed in every process.
    """
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells}")
    return tuple(child_seed(seed, "cell", index) for index in range(cells))


__all__: Sequence[str] = (
    "stable_seed",
    "child_seed",
    "iteration_seeds",
    "cell_seeds",
)
