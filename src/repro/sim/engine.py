"""A minimal discrete-event simulation engine.

Time is an integer number of microseconds.  Events are ``(time, priority,
sequence)``-ordered callbacks; the sequence number makes scheduling stable
for equal timestamps, which keeps whole experiments bit-reproducible.

The engine is deliberately small: CT protocols are slot-synchronous, so
rounds schedule one event per chain slot plus phase-transition and
fault-injection events.  No processes/coroutines — callbacks keep the hot
loop allocation-free.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError

Callback = Callable[[], None]


class Simulator:
    """Event queue + clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [100]
    """

    __slots__ = ("_now", "_queue", "_sequence", "_running", "_events_executed")

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, int, Callback]] = []
        self._sequence = 0
        self._running = False
        self._events_executed = 0

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total callbacks executed so far (diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, delay_us: int, callback: Callback, priority: int = 0) -> int:
        """Schedule ``callback`` to run ``delay_us`` after the current time.

        Lower ``priority`` runs first among equal timestamps.  Returns the
        absolute execution time.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule into the past (delay {delay_us})")
        at = self._now + delay_us
        self._sequence += 1
        heapq.heappush(self._queue, (at, priority, self._sequence, callback))
        return at

    def schedule_at(self, at_us: int, callback: Callback, priority: int = 0) -> int:
        """Schedule ``callback`` at absolute time ``at_us``."""
        if at_us < self._now:
            raise SimulationError(
                f"cannot schedule at {at_us} (now is {self._now})"
            )
        self._sequence += 1
        heapq.heappush(self._queue, (at_us, priority, self._sequence, callback))
        return at_us

    def run(self, until_us: int | None = None) -> None:
        """Execute events in order until the queue empties (or ``until_us``).

        Events scheduled exactly at ``until_us`` still run; later ones stay
        queued and the clock is left at ``until_us``.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            while self._queue:
                at, _, _, callback = self._queue[0]
                if until_us is not None and at > until_us:
                    self._now = until_us
                    return
                heapq.heappop(self._queue)
                self._now = at
                self._events_executed += 1
                callback()
            if until_us is not None and until_us > self._now:
                self._now = until_us
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event; returns False when queue is empty."""
        if not self._queue:
            return False
        at, _, _, callback = heapq.heappop(self._queue)
        self._now = at
        self._events_executed += 1
        callback()
        return True

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now} us, pending={len(self._queue)}, "
            f"executed={self._events_executed})"
        )
