"""Bounded in-memory trace recording.

Protocol debugging and the coverage profiler both need to see *what
happened when* inside a round.  :class:`TraceRecorder` keeps a bounded
list of structured events; recording can be disabled entirely (the
default for benchmarks) at zero per-event cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        time_us: simulated timestamp.
        node: node id the event concerns (or -1 for network-wide events).
        kind: short machine-readable category, e.g. ``"chain_tx"``.
        detail: free-form payload (kept small by convention).
    """

    time_us: int
    node: int
    kind: str
    detail: Any = None


class TraceRecorder:
    """Append-only bounded event log.

    Args:
        enabled: when False, :meth:`record` is a no-op costing one branch.
        max_events: hard cap; exceeding it raises — a trace that silently
            drops events is worse than none.
    """

    __slots__ = ("_enabled", "_events", "_max_events")

    def __init__(self, enabled: bool = False, max_events: int = 1_000_000):
        if max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        self._enabled = enabled
        self._events: list[TraceEvent] = []
        self._max_events = max_events

    @property
    def enabled(self) -> bool:
        """Whether events are being recorded."""
        return self._enabled

    def record(self, time_us: int, node: int, kind: str, detail: Any = None) -> None:
        """Record one event (no-op when disabled)."""
        if not self._enabled:
            return
        if len(self._events) >= self._max_events:
            raise SimulationError(
                f"trace exceeded {self._max_events} events; "
                "raise max_events or narrow what you record"
            )
        self._events.append(TraceEvent(time_us, node, kind, detail))

    def events(
        self,
        kind: str | None = None,
        node: int | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Filtered copy of the recorded events."""
        selected: Iterator[TraceEvent] = iter(self._events)
        if kind is not None:
            selected = (e for e in selected if e.kind == kind)
        if node is not None:
            selected = (e for e in selected if e.node == node)
        if predicate is not None:
            selected = (e for e in selected if predicate(e))
        return list(selected)

    def count(self, kind: str | None = None) -> int:
        """Number of events (optionally of one kind)."""
        if kind is None:
            return len(self._events)
        return sum(1 for e in self._events if e.kind == kind)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        status = "on" if self._enabled else "off"
        return f"TraceRecorder({status}, {len(self._events)} events)"
