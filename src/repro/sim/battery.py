"""Battery and lifetime model.

The paper's motivation: "the communication hardware being the most
energy-hungry unit, the IoT devices always try minimization of their
communication requirements too in order to have sustained life."  This
module turns the simulator's radio-on measurements into that sustained
life: given a battery, a duty cycle (aggregation rounds per day) and the
platform's sleep floor, how long does a node last under S3 vs S4?

The model is the standard first-order energy budget used in WSN lifetime
papers: usable charge divided by (radio charge per day + sleep charge
per day + MCU overhead per round).  It deliberately ignores temperature
and discharge-curve effects — those shift both variants identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.radio import RadioPower

#: Microcoulombs per mAh.
UC_PER_MAH = 3600.0 * 1000.0

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, slots=True)
class Battery:
    """An idealized primary cell.

    Attributes:
        capacity_mah: rated capacity.
        usable_fraction: fraction of the rating actually extractable
            before brown-out (cutoff voltage, aging); 0.8 is customary.
    """

    capacity_mah: float = 2600.0  # a standard AA lithium pair's ballpark
    usable_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ConfigurationError(
                f"capacity must be > 0 mAh, got {self.capacity_mah}"
            )
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError(
                f"usable_fraction must be in (0, 1], got {self.usable_fraction}"
            )

    @property
    def usable_charge_uc(self) -> float:
        """Extractable charge in microcoulombs."""
        return self.capacity_mah * self.usable_fraction * UC_PER_MAH


@dataclass(frozen=True, slots=True)
class DutyCycleProfile:
    """How often the application aggregates and what idling costs.

    Attributes:
        rounds_per_day: aggregation rounds per day.
        sleep_current_ua: deep-sleep floor (nRF52840 System-ON sleep with
            RAM retention ≈ 1.5 µA).
        mcu_overhead_uc_per_round: non-radio charge per round (crypto,
            scheduling); small next to the radio but not zero.
    """

    rounds_per_day: float = 96.0  # every 15 minutes
    sleep_current_ua: float = 1.5
    mcu_overhead_uc_per_round: float = 500.0

    def __post_init__(self) -> None:
        if self.rounds_per_day <= 0:
            raise ConfigurationError(
                f"rounds_per_day must be > 0, got {self.rounds_per_day}"
            )
        if self.sleep_current_ua < 0 or self.mcu_overhead_uc_per_round < 0:
            raise ConfigurationError("idle costs must be >= 0")


def lifetime_days(
    radio_on_us_per_round: float,
    battery: Battery | None = None,
    profile: DutyCycleProfile | None = None,
    power: RadioPower | None = None,
    tx_fraction: float = 0.25,
) -> float:
    """Projected node lifetime in days.

    Args:
        radio_on_us_per_round: the paper's radio-on metric for one round.
        battery / profile / power: energy environment (defaults above).
        tx_fraction: share of radio-on time spent transmitting (the rest
            is RX); CT relays spend most of their on-time listening.
    """
    if radio_on_us_per_round < 0:
        raise ConfigurationError("radio-on time must be >= 0")
    if not 0.0 <= tx_fraction <= 1.0:
        raise ConfigurationError(
            f"tx_fraction must be in [0, 1], got {tx_fraction}"
        )
    battery = battery or Battery()
    profile = profile or DutyCycleProfile()
    power = power or RadioPower()

    tx_us = radio_on_us_per_round * tx_fraction
    rx_us = radio_on_us_per_round - tx_us
    radio_uc_per_round = power.charge_uc(int(tx_us), int(rx_us))
    per_day_uc = (
        profile.rounds_per_day
        * (radio_uc_per_round + profile.mcu_overhead_uc_per_round)
        + profile.sleep_current_ua * SECONDS_PER_DAY
    )
    return battery.usable_charge_uc / per_day_uc
