"""Discrete-event wireless simulation substrate.

* :mod:`repro.sim.engine` — a minimal, fast discrete-event engine with an
  integer-microsecond clock.
* :mod:`repro.sim.energy` — per-node radio state machine + radio-on-time
  accounting (the paper's second metric).
* :mod:`repro.sim.node` — the per-node container protocols hang state off.
* :mod:`repro.sim.trace` — bounded in-memory trace recording.
* :mod:`repro.sim.maskbatch` — numpy-vectorized batch form of the
  Bernoulli mask sampler (one mask per receiver of a slot);
* :mod:`repro.sim.bitrandom` — fast sampling of Bernoulli bit-masks over
  big integers, the trick that lets pure Python simulate per-packet losses
  on 2000-packet chains at acceptable speed.
"""

from repro.sim.engine import Simulator
from repro.sim.energy import RadioEnergyMeter, RadioState
from repro.sim.node import SimNode
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.bitrandom import random_bitmask, exact_random_bitmask

__all__ = [
    "Simulator",
    "RadioEnergyMeter",
    "RadioState",
    "SimNode",
    "TraceEvent",
    "TraceRecorder",
    "random_bitmask",
    "exact_random_bitmask",
]
