"""Vectorized Bernoulli bit-mask sampling (numpy backend).

The scalar sampler in :mod:`repro.sim.bitrandom` draws one mask at a
time: ``precision`` uniform words folded LSB-first with the and/or
update.  The MiniCast reception step needs one mask per *receiver* of a
slot — up to hundreds of masks with per-link probabilities — and that
batch shape is exactly what numpy lanes want:

* probabilities arrive pre-quantized as an ``(R,)`` integer array
  (numerators over ``2**precision``, one per receiver/link);
* each of the ``precision`` steps draws an ``(R, ceil(nbits/64))``
  matrix of uniform uint64 words and applies the same acc-and/or update
  as :func:`repro.sim.bitrandom.random_bitmask_quantized`, selecting OR
  or AND per *row* from that row's quantized digit;
* after the final (most significant) step, bit ``b`` of row ``r`` is one
  with probability exactly ``quantized[r] / 2**precision`` — the same
  law as the scalar sampler, so the two are interchangeable wherever
  only the distribution matters (they spend randomness differently, so
  seeded streams differ).

numpy is an optional acceleration with the same contract as
:mod:`repro.crypto.aesbatch`: every caller must guard on
:data:`HAVE_NUMPY` (or call through a consumer that does) and fall back
to the scalar sampler when it is absent.
"""

from __future__ import annotations

from repro.errors import SimulationError

try:  # pragma: no cover - import guard
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: The vector consumers also need ``np.bitwise_count`` (numpy >= 2.0)
#: for the word-matrix popcounts, so "numpy present" here means a numpy
#: this backend can actually run on; older numpy degrades to the scalar
#: path exactly like no numpy at all.
HAVE_NUMPY = _np is not None and hasattr(_np, "bitwise_count")

#: Bits per word of the mask matrices (uint64 lanes).
WORD_BITS = 64

#: Batch size (rows × nbits) below which the fused uint16-compare
#: sampler beats the and/or word chain; see the strategy note in
#: :func:`bernoulli_mask_matrix`.
_FUSED_MAX_BITS = 1 << 16


def words_for(nbits: int) -> int:
    """How many uint64 words hold an ``nbits``-wide mask."""
    return (nbits + WORD_BITS - 1) // WORD_BITS


def generator_from(rng) -> "object":
    """A numpy ``Generator`` seeded deterministically from ``rng``.

    The vectorized loops need uniform words at memory speed; stdlib
    ``Random`` and the DRBG top out an order of magnitude below numpy's
    bit generators on bulk draws.  Seeding a PCG64 from one 128-bit draw
    of the caller's rng keeps the whole vector run a deterministic
    function of the rng state (replayable, chunk-invariant) while the
    heavy lifting runs on the numpy side.  Already-a-Generator inputs
    pass through untouched.
    """
    if hasattr(rng, "integers"):
        return rng
    return _np.random.Generator(_np.random.PCG64(rng.getrandbits(128)))


def uniform_words(rng, count: int) -> "object":
    """``count`` independent uniform uint64 words from ``rng``.

    numpy ``Generator`` inputs draw natively (the fast path); otherwise
    a bulk byte draw (``random_bytes`` on the DRBG, ``randbytes`` on
    stdlib ``Random``) fills the batch in one call, falling back to one
    wide ``getrandbits``.  Word order and endianness are irrelevant —
    the bits are i.i.d. — but the draw is a deterministic function of
    the rng state, which is what keeps vectorized runs replayable.
    """
    if count <= 0:
        return _np.empty(0, dtype=_np.uint64)
    if hasattr(rng, "integers"):
        return rng.integers(
            0, 1 << 64, size=count, dtype=_np.uint64, endpoint=False
        )
    nbytes = 8 * count
    random_bytes = getattr(rng, "random_bytes", None)
    if random_bytes is None:
        random_bytes = getattr(rng, "randbytes", None)
    if random_bytes is not None:
        raw = random_bytes(nbytes)
    else:
        raw = rng.getrandbits(8 * nbytes).to_bytes(nbytes, "little")
    return _np.frombuffer(raw, dtype=_np.uint64)


def bernoulli_mask_matrix(
    rng, quantized, nbits: int, precision: int
) -> "object":
    """One Bernoulli mask row per entry of ``quantized``.

    Args:
        rng: randomness source (``random``-like or DRBG).
        quantized: ``(R,)`` integer array-like of probability numerators
            over ``2**precision`` (clipped to ``[0, 2**precision]``).
        nbits: mask width in bits; bits past ``nbits`` in the last word
            are left unmasked garbage — callers keep their own width
            masks (the MiniCast loop ANDs with eligibility anyway).
        precision: binary digits of probability honoured.

    Returns:
        ``(R, words_for(nbits))`` uint64 matrix; bit ``b`` of row ``r``
        (little-endian word order) is one with probability
        ``quantized[r] / 2**precision``.
    """
    if nbits < 0:
        raise SimulationError(f"nbits must be >= 0, got {nbits}")
    if precision < 1:
        raise SimulationError(f"precision must be >= 1, got {precision}")
    q = _np.asarray(quantized, dtype=_np.int64)
    rows = q.shape[0]
    width = words_for(nbits)
    if rows == 0 or width == 0:
        return _np.zeros((rows, width), dtype=_np.uint64)
    full = 1 << precision
    # Strategy: small batches take the fused compare path (few ufunc
    # dispatches beat everything below ~64k bits); large batches take
    # the and/or chain (precision bits of randomness per output bit vs
    # the compare path's 16, and generator throughput is the floor once
    # matrices leave cache).
    if (
        precision <= 16
        and rows * nbits <= _FUSED_MAX_BITS
        and hasattr(rng, "integers")
    ):
        # Fused formulation: one uint16 uniform per bit, one compare.
        # ``u < q << (16 - precision)`` is one with probability exactly
        # ``q / 2**precision`` (the scale divides 2**16), so the law is
        # identical to the and/or chain at a fraction of the dispatch
        # cost.  Bits past ``nbits`` come out zero here (stricter than
        # the contract requires).
        u = rng.integers(
            0, 1 << 16, size=(rows, nbits), dtype=_np.uint16, endpoint=False
        )
        # int32 thresholds: q = 2**precision must scale to 65536, one
        # past the top uint16 draw, so certain rows stay certain.
        threshold = (_np.clip(q, 0, full) << (16 - precision)).astype(
            _np.int32
        )
        bits = u < threshold[:, None]
        packed = _np.packbits(bits, axis=1, bitorder="little")
        out = _np.zeros((rows, width * 8), dtype=_np.uint8)
        out[:, : packed.shape[1]] = packed
        return out.view("<u8").reshape(rows, width)
    acc = _np.zeros((rows, width), dtype=_np.uint64)
    # Degenerate rows draw nothing in the scalar sampler; here the whole
    # matrix draws as one block and the certain rows are patched after —
    # cheaper than per-row branching, identical in law.
    draws = uniform_words(rng, precision * rows * width).reshape(
        precision, rows, width
    )
    # LSB-first over the binary digits of quantized/2**precision.
    for bit_index in range(precision):
        r = draws[bit_index]
        take_or = ((q >> bit_index) & 1).astype(bool)
        sel = take_or[:, None]
        _np.bitwise_or(acc, r, out=acc, where=sel)
        _np.bitwise_and(acc, r, out=acc, where=~sel)
    ones = _np.uint64(0xFFFFFFFFFFFFFFFF)
    acc[q <= 0] = 0
    acc[q >= full] = ones
    return acc


def masks_to_ints(matrix) -> list[int]:
    """Rows of a mask matrix as Python big ints (little-endian words)."""
    raw = _np.ascontiguousarray(matrix, dtype="<u8").tobytes()
    width = matrix.shape[1] * 8
    return [
        int.from_bytes(raw[i : i + width], "little")
        for i in range(0, len(raw), width)
    ]


def ints_to_words(values, nbits: int) -> "object":
    """Big-int masks as an ``(R, words_for(nbits))`` uint64 matrix."""
    width = words_for(nbits)
    out = _np.zeros((len(values), width), dtype=_np.uint64)
    nbytes = width * 8
    for row, value in enumerate(values):
        out[row] = _np.frombuffer(
            value.to_bytes(nbytes, "little"), dtype="<u8"
        )
    return out
