"""Fast Bernoulli bit-mask sampling over Python big integers.

The MiniCast hot loop must decide, for every (receiver, chain-slot,
transmitter) triple, which of up to ~2000 sub-slot packets survive a lossy
link.  Doing that with one ``random.random()`` per packet is ruinously
slow in pure Python.  Instead we represent a chain's knowledge as a bit
mask in a single ``int`` and sample a whole mask of independent
Bernoulli(p) bits with a handful of ``getrandbits`` calls:

Write p in binary as ``0.b1 b2 ... bk``.  Starting from ``acc = 0`` and
processing bits **LSB-first**, update with a fresh uniform random word
``r`` each step::

    acc = (acc & r)   if b == 0
    acc = (acc | r)   if b == 1

After processing bit ``b_j`` (j = k..1) the density of ``acc`` is the
binary fraction ``0.b_j ... b_k``, so after the final (most significant)
step each bit of ``acc`` is independently one with probability ``p``
truncated to ``k`` binary digits.  ``k = 10`` gives ≈ 0.001 resolution at
10 ``getrandbits`` calls per mask, independent of mask width.

``exact_random_bitmask`` is the obvious per-bit reference implementation;
the test suite checks the fast sampler against it statistically.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Default number of binary digits of the probability to honour.
DEFAULT_PRECISION = 10


def random_bitmask(rng, nbits: int, probability: float, precision: int = DEFAULT_PRECISION) -> int:
    """Integer with ``nbits`` independent Bernoulli(probability) bits.

    Args:
        rng: any object with ``getrandbits`` (stdlib Random, AesCtrDrbg).
        nbits: width of the mask.
        probability: per-bit probability of a 1, in [0, 1].
        precision: binary digits of ``probability`` to honour.
    """
    if nbits < 0:
        raise SimulationError(f"nbits must be >= 0, got {nbits}")
    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {probability}")
    if precision < 1:
        raise SimulationError(f"precision must be >= 1, got {precision}")
    if nbits == 0:
        return 0
    if probability == 0.0:
        return 0
    if probability == 1.0:
        return (1 << nbits) - 1
    return random_bitmask_quantized(
        rng, nbits, quantize_probability(probability, precision), precision
    )


def quantize_probability(probability: float, precision: int = DEFAULT_PRECISION) -> int:
    """``probability`` as an integer numerator over ``2**precision``.

    Rounding to nearest keeps the expected density error at most
    ``2**-(precision+1)``.  Precomputing this once per link (instead of
    once per sampled mask) is the MiniCast hot loop's cheapest win.
    """
    return round(probability * (1 << precision))


def random_bitmask_quantized(
    rng, nbits: int, quantized: int, precision: int = DEFAULT_PRECISION
) -> int:
    """Bernoulli mask for a pre-quantized probability ``quantized / 2**precision``.

    Consumes exactly the same ``getrandbits`` draws as
    :func:`random_bitmask` with the equivalent float probability: zero
    draws for the degenerate all-zeros / all-ones cases, ``precision``
    draws otherwise.
    """
    if quantized <= 0:
        return 0
    if quantized >= (1 << precision):
        return (1 << nbits) - 1
    getrandbits = rng.getrandbits
    acc = 0
    # LSB-first over the binary digits of quantized/2**precision.
    for bit_index in range(precision):
        r = getrandbits(nbits)
        if (quantized >> bit_index) & 1:
            acc |= r
        else:
            acc &= r
    return acc


def exact_random_bitmask(rng, nbits: int, probability: float) -> int:
    """Reference per-bit sampler (slow; for tests and tiny masks)."""
    if nbits < 0:
        raise SimulationError(f"nbits must be >= 0, got {nbits}")
    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {probability}")
    mask = 0
    for bit in range(nbits):
        if rng.random() < probability:
            mask |= 1 << bit
    return mask


#: Per-byte set-bit positions, built once: table[b] lists the positions
#: (0-7) of the ones in byte value ``b``.
_BYTE_BITS: list[tuple[int, ...]] = [
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
]


def bit_indices(mask: int) -> list[int]:
    """Positions of set bits, ascending (diagnostics helper).

    Linear in the mask width: one ``to_bytes`` conversion plus a
    per-byte table lookup.  The previous shift-one-bit-at-a-time loop
    re-sliced the big int per bit — O(width²) — which made dense
    2000-bit chain masks measurably slow to inspect.
    """
    if mask < 0:
        raise SimulationError(f"mask must be >= 0, got {mask}")
    if mask == 0:
        return []
    raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    table = _BYTE_BITS
    indices = []
    for byte_index, byte in enumerate(raw):
        if byte:
            base = byte_index * 8
            indices.extend(base + bit for bit in table[byte])
    return indices


def mask_from_indices(indices) -> int:
    """Inverse of :func:`bit_indices`."""
    mask = 0
    for index in indices:
        if index < 0:
            raise SimulationError(f"bit index must be >= 0, got {index}")
        mask |= 1 << index
    return mask
