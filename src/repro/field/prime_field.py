"""Prime field GF(p) and its elements.

A :class:`PrimeField` is a lightweight factory/validator for
:class:`FieldElement` values.  Elements are immutable, hashable and refuse
to combine with elements of a different field, which catches a whole class
of secret-sharing bugs (mixing shares generated under different moduli) at
the point of the mistake instead of at reconstruction time.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Union

from repro.errors import FieldError, MixedFieldError, NonInvertibleError
from repro.field.modular import is_probable_prime, mod_inverse

#: Mersenne prime 2**61 - 1 — default modulus for the whole library.
MERSENNE_61 = (1 << 61) - 1

#: Mersenne prime 2**127 - 1 — for users who want 128-bit aggregates.
MERSENNE_127 = (1 << 127) - 1

#: The library-wide default prime modulus.
DEFAULT_PRIME = MERSENNE_61

IntoElement = Union[int, "FieldElement"]


class PrimeField:
    """The finite field of integers modulo a prime ``p``.

    >>> field = PrimeField(2**61 - 1)
    >>> a = field(10)
    >>> b = field(20)
    >>> (a + b).value
    30
    """

    __slots__ = ("_prime",)

    _instances: dict[int, "PrimeField"] = {}
    # Interning must be race-free: if two threads could both miss the cache
    # and insert distinct GF(p) objects, ``is``-based mixing checks would
    # spuriously reject elements of the "same" field.  Campaign
    # parallelism constructs fields from worker threads, so the check-and-
    # insert is serialised (primality validation runs outside the lock —
    # a duplicate validation race is harmless, a duplicate insert is not).
    _instances_lock = threading.Lock()

    def __new__(cls, prime: int = DEFAULT_PRIME, *, validate: bool = True):
        if not isinstance(prime, int) or isinstance(prime, bool):
            raise FieldError(f"prime must be int, got {type(prime).__name__}")
        # Interning fields by modulus keeps identity checks cheap and means
        # two independently constructed GF(p) objects compare equal *and*
        # identical, so element mixing checks can use ``is``.
        cached = cls._instances.get(prime)
        if cached is not None:
            return cached
        if validate:
            if prime < 2:
                raise FieldError(f"prime must be >= 2, got {prime}")
            if not is_probable_prime(prime):
                raise FieldError(f"{prime} is not prime")
        with cls._instances_lock:
            cached = cls._instances.get(prime)
            if cached is not None:
                return cached
            instance = super().__new__(cls)
            instance._prime = prime
            cls._instances[prime] = instance
        return instance

    @property
    def prime(self) -> int:
        """The field modulus ``p``."""
        return self._prime

    @property
    def order(self) -> int:
        """Number of elements in the field (equals the modulus)."""
        return self._prime

    def __call__(self, value: IntoElement) -> "FieldElement":
        """Coerce an integer (or element of this field) into the field."""
        if isinstance(value, FieldElement):
            if value.field is not self:
                raise MixedFieldError(
                    f"element of GF({value.field.prime}) passed to GF({self._prime})"
                )
            return value
        if not isinstance(value, int):
            raise FieldError(
                f"cannot coerce {type(value).__name__} into GF({self._prime})"
            )
        return FieldElement(self, value % self._prime)

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return FieldElement(self, 1)

    def element_from_bytes(self, data: bytes) -> "FieldElement":
        """Decode a big-endian byte string into a field element.

        The integer value must already be a canonical representative
        (``< p``); this is the inverse of :meth:`FieldElement.to_bytes` and
        deliberately rejects non-canonical encodings so that a corrupted
        ciphertext cannot silently alias another value.
        """
        value = int.from_bytes(data, "big")
        if value >= self._prime:
            raise FieldError(
                f"byte value {value} is not a canonical element of GF({self._prime})"
            )
        return FieldElement(self, value)

    @property
    def element_size_bytes(self) -> int:
        """Bytes needed to serialize any canonical element."""
        return (self._prime.bit_length() + 7) // 8

    def random_element(self, rng) -> "FieldElement":
        """Uniform random element, drawn from ``rng.randrange``.

        ``rng`` is any object exposing ``randrange(n)`` — the stdlib
        ``random.Random`` and :class:`repro.crypto.prng.AesCtrDrbg` both do.
        """
        return FieldElement(self, rng.randrange(self._prime))

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate every element (only sensible for tiny test fields)."""
        for value in range(self._prime):
            yield FieldElement(self, value)

    def sum(self, items: Iterable[IntoElement]) -> "FieldElement":
        """Field sum of an iterable (empty sum is zero)."""
        total = 0
        for item in items:
            total += item.value if isinstance(item, FieldElement) else item
        return FieldElement(self, total % self._prime)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other._prime == self._prime

    def __hash__(self) -> int:
        return hash(("PrimeField", self._prime))

    def __repr__(self) -> str:
        return f"PrimeField({self._prime})"

    def __contains__(self, item: object) -> bool:
        return isinstance(item, FieldElement) and item.field is self


class FieldElement:
    """An immutable element of a :class:`PrimeField`.

    Supports ``+ - * / **`` against other elements of the same field or
    plain ints (which are coerced).  Mixing elements of different fields
    raises :class:`MixedFieldError`.
    """

    __slots__ = ("_field", "_value")

    def __init__(self, field: PrimeField, value: int):
        self._field = field
        self._value = value % field.prime

    @property
    def field(self) -> PrimeField:
        """The field this element belongs to."""
        return self._field

    @property
    def value(self) -> int:
        """Canonical integer representative in ``[0, p)``."""
        return self._value

    def _coerce(self, other: IntoElement) -> int:
        """Return the integer value of ``other``, checking field identity."""
        if isinstance(other, FieldElement):
            if other._field is not self._field:
                raise MixedFieldError(
                    f"cannot mix GF({self._field.prime}) and GF({other._field.prime})"
                )
            return other._value
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return FieldElement(self._field, self._value + value)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return FieldElement(self._field, self._value - value)

    def __rsub__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return FieldElement(self._field, value - self._value)

    def __mul__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return FieldElement(self._field, self._value * value)

    __rmul__ = __mul__

    def __truediv__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        inverse = mod_inverse(value, self._field.prime)
        return FieldElement(self._field, self._value * inverse)

    def __rtruediv__(self, other: IntoElement) -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        inverse = mod_inverse(self._value, self._field.prime)
        return FieldElement(self._field, value * inverse)

    def __pow__(self, exponent: int) -> "FieldElement":
        if not isinstance(exponent, int):
            return NotImplemented
        if exponent < 0:
            base = mod_inverse(self._value, self._field.prime)
            return FieldElement(self._field, pow(base, -exponent, self._field.prime))
        return FieldElement(self._field, pow(self._value, exponent, self._field.prime))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self._field, -self._value)

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises :class:`NonInvertibleError` on zero."""
        if self._value == 0:
            raise NonInvertibleError(f"0 has no inverse in GF({self._field.prime})")
        return FieldElement(self._field, mod_inverse(self._value, self._field.prime))

    # -- comparison / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return other._field is self._field and other._value == self._value
        if isinstance(other, int):
            return self._value == other % self._field.prime
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._field.prime, self._value))

    def __bool__(self) -> bool:
        return self._value != 0

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Big-endian fixed-width encoding (width = field element size)."""
        return self._value.to_bytes(self._field.element_size_bytes, "big")

    def __repr__(self) -> str:
        return f"FieldElement({self._value} mod {self._field.prime})"

    def __int__(self) -> int:
        return self._value
