"""Lagrange interpolation over a prime field.

The reconstruction phase of Shamir's scheme interpolates the *sum*
polynomial from ``k + 1`` (point, value) pairs.  Reconstruction almost
always only needs the value at ``x = 0`` (the aggregate secret), for which
computing the full coefficient vector is wasted work — so this module
offers both:

* :func:`interpolate_at` / :func:`interpolate_constant` — O(k²) evaluation
  of the interpolating polynomial at a single point, the hot path.
* :func:`interpolate_polynomial` — full coefficient recovery, used by tests
  and by the privacy analysis tooling.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro import fastpath
from repro.errors import InterpolationError
from repro.field.kernels import lagrange_weight_values
from repro.field.modular import mod_inverse
from repro.field.polynomial import Polynomial
from repro.field.prime_field import FieldElement, IntoElement, PrimeField


def _canonical_points(
    field: PrimeField,
    points: Sequence[tuple[IntoElement, IntoElement]],
) -> tuple[list[int], list[int]]:
    """Validate points and return parallel lists of canonical int coords."""
    if not points:
        raise InterpolationError("cannot interpolate from zero points")
    xs: list[int] = []
    ys: list[int] = []
    for x, y in points:
        xs.append(field(x).value)
        ys.append(field(y).value)
    if len(set(xs)) != len(xs):
        duplicates = sorted({x for x in xs if xs.count(x) > 1})
        raise InterpolationError(f"duplicate x-coordinates: {duplicates}")
    return xs, ys


def lagrange_weights_at(
    field: PrimeField,
    xs: Sequence[IntoElement],
    at: IntoElement = 0,
) -> list[FieldElement]:
    """Lagrange basis weights ``L_i(at)`` for the given x-coordinates.

    With these weights, the interpolated value is ``sum(w_i * y_i)``.
    Computing weights separately lets a caller reuse them across many
    reconstructions that share the same point set (e.g. every round of a
    periodic aggregation with a fixed collector set).
    """
    prime = field.prime
    x_values = [field(x).value for x in xs]
    if len(set(x_values)) != len(x_values):
        raise InterpolationError("duplicate x-coordinates in weight computation")
    at_value = field(at).value
    weights: list[FieldElement] = []
    for i, x_i in enumerate(x_values):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(x_values):
            if i == j:
                continue
            numerator = numerator * ((at_value - x_j) % prime) % prime
            denominator = denominator * ((x_i - x_j) % prime) % prime
        weights.append(
            FieldElement(field, numerator * mod_inverse(denominator, prime))
        )
    return weights


class LagrangeWeights:
    """A thread-safe cache of Lagrange basis weights keyed by point set.

    Reconstruction in a periodic aggregation evaluates the *same* basis
    weights every round (the collector set — hence the x-coordinates — is
    fixed for a deployment), so the O(k²) weight computation can be paid
    once per point set and amortised over an entire campaign.  Weights
    are stored as canonical integer residues; entries are exact, so a
    cache hit is value-identical to recomputation.

    The cache is bounded: once ``max_entries`` distinct point sets have
    been seen it is cleared wholesale, which keeps pathological callers
    (e.g. a fuzzer generating fresh point sets forever) from leaking
    memory while costing steady-state workloads nothing.
    """

    __slots__ = ("_cache", "_lock", "_max_entries")

    def __init__(self, max_entries: int = 4096):
        self._cache: dict[tuple[int, tuple[int, ...], int], tuple[int, ...]] = {}
        self._lock = threading.Lock()
        self._max_entries = max_entries

    def weight_values(
        self, prime: int, xs: tuple[int, ...], at: int = 0
    ) -> tuple[int, ...]:
        """Weights ``L_i(at)`` for canonical x-residues ``xs``, cached."""
        key = (prime, xs, at)
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        weights = lagrange_weight_values(xs, prime, at)
        with self._lock:
            if len(self._cache) >= self._max_entries:
                self._cache.clear()
            self._cache[key] = weights
        return weights

    def clear(self) -> None:
        """Drop every cached weight vector."""
        with self._lock:
            self._cache.clear()


#: The library-wide shared weight cache (used when the fast path is on).
SHARED_WEIGHTS = LagrangeWeights()


def interpolate_at(
    field: PrimeField,
    points: Sequence[tuple[IntoElement, IntoElement]],
    at: IntoElement,
) -> FieldElement:
    """Value at ``at`` of the unique polynomial through ``points``.

    O(k²) field operations, no full coefficient recovery.  On the fast
    path the basis weights come from :data:`SHARED_WEIGHTS`, so repeated
    reconstructions over the same point set are O(k).
    """
    xs, ys = _canonical_points(field, points)
    prime = field.prime
    if fastpath.enabled():
        weight_values = SHARED_WEIGHTS.weight_values(
            prime, tuple(xs), field(at).value
        )
        total = 0
        for weight, y in zip(weight_values, ys):
            total += weight * y
        return FieldElement(field, total % prime)
    weights = lagrange_weights_at(field, xs, at)
    total = 0
    for weight, y in zip(weights, ys):
        total = (total + weight.value * y) % prime
    return FieldElement(field, total)


def interpolate_constant(
    field: PrimeField,
    points: Sequence[tuple[IntoElement, IntoElement]],
) -> FieldElement:
    """``P(0)`` of the interpolating polynomial — the Shamir hot path."""
    return interpolate_at(field, points, 0)


def interpolate_polynomial(
    field: PrimeField,
    points: Sequence[tuple[IntoElement, IntoElement]],
) -> Polynomial:
    """Full interpolating polynomial through ``points``.

    Builds ``sum_i y_i * prod_{j != i} (x - x_j) / (x_i - x_j)`` with dense
    coefficient arithmetic.  O(k²) space/time in the coefficient vector;
    fine for the k ≤ a few dozen this library uses.
    """
    xs, ys = _canonical_points(field, points)
    prime = field.prime

    result = Polynomial.zero(field)
    for i, (x_i, y_i) in enumerate(zip(xs, ys)):
        if y_i == 0:
            continue
        # Numerator polynomial prod_{j != i} (x - x_j), built incrementally.
        basis = Polynomial(field, [1])
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            basis = basis * Polynomial(field, [(-x_j) % prime, 1])
            denominator = denominator * ((x_i - x_j) % prime) % prime
        scale = y_i * mod_inverse(denominator, prime) % prime
        result = result + basis * scale
    return result
