"""Dense polynomials over a prime field.

Shamir's scheme hides a secret as the constant term of a random polynomial
and evaluates it at public points.  This module provides the polynomial
algebra the scheme (and its tests) need: construction from coefficients or
from a secret plus randomness, Horner evaluation, ring arithmetic, and a
couple of convenience constructors.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import PolynomialError
from repro.field.prime_field import FieldElement, IntoElement, PrimeField


class Polynomial:
    """A polynomial ``c0 + c1*x + ... + ck*x**k`` over GF(p).

    Coefficients are stored dense, lowest degree first, and normalized so
    that the highest stored coefficient is non-zero (the zero polynomial
    stores a single zero coefficient and reports degree ``-1``).
    """

    __slots__ = ("_field", "_coeffs")

    def __init__(self, field: PrimeField, coefficients: Iterable[IntoElement]):
        self._field = field
        coeffs = [field(c).value for c in coefficients]
        if not coeffs:
            coeffs = [0]
        # Normalize: strip trailing zero coefficients, keep at least one.
        while len(coeffs) > 1 and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs = tuple(coeffs)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        """The zero polynomial."""
        return cls(field, [0])

    @classmethod
    def constant(cls, field: PrimeField, value: IntoElement) -> "Polynomial":
        """The degree-0 polynomial ``value``."""
        return cls(field, [value])

    @classmethod
    def random_with_secret(
        cls,
        field: PrimeField,
        secret: IntoElement,
        degree: int,
        rng,
    ) -> "Polynomial":
        """Random degree-``degree`` polynomial with ``P(0) == secret``.

        This is the dealer polynomial of Shamir's scheme: the constant term
        carries the secret and the remaining ``degree`` coefficients are
        uniform random.  The leading coefficient is drawn from ``[1, p)`` so
        the polynomial has *exactly* the requested degree — a lower actual
        degree would silently weaken the collusion threshold.
        """
        if degree < 0:
            raise PolynomialError(f"degree must be >= 0, got {degree}")
        coeffs: list[int] = [field(secret).value]
        for _ in range(max(0, degree - 1)):
            coeffs.append(rng.randrange(field.prime))
        if degree >= 1:
            coeffs.append(1 + rng.randrange(field.prime - 1))
        return cls(field, coeffs)

    # -- basic accessors --------------------------------------------------------

    @property
    def field(self) -> PrimeField:
        """Field the coefficients live in."""
        return self._field

    @property
    def coefficients(self) -> tuple[int, ...]:
        """Coefficient integers, lowest degree first."""
        return self._coeffs

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree ``-1``."""
        if len(self._coeffs) == 1 and self._coeffs[0] == 0:
            return -1
        return len(self._coeffs) - 1

    @property
    def constant_term(self) -> FieldElement:
        """``P(0)`` — where Shamir's scheme stores the secret."""
        return FieldElement(self._field, self._coeffs[0])

    def __len__(self) -> int:
        return len(self._coeffs)

    # -- evaluation -------------------------------------------------------------

    def __call__(self, x: IntoElement) -> FieldElement:
        """Evaluate at ``x`` with Horner's rule."""
        prime = self._field.prime
        x_value = self._field(x).value
        accumulator = 0
        for coefficient in reversed(self._coeffs):
            accumulator = (accumulator * x_value + coefficient) % prime
        return FieldElement(self._field, accumulator)

    def evaluate_values(self, xs: Sequence[int]) -> list[int]:
        """Evaluate at many canonical integer points, returning raw residues.

        The allocation-free bulk form of :meth:`__call__` used by the
        sharing hot path: no ``FieldElement`` is created per evaluation.
        The caller is responsible for ``xs`` being canonical (``0 <= x < p``).
        """
        from repro.field.kernels import horner_eval_many

        return horner_eval_many(self._coeffs, xs, self._field.prime)

    def evaluate_many(self, xs: Sequence[IntoElement]) -> list[FieldElement]:
        """Evaluate at many points (the sharing phase's bulk operation)."""
        field = self._field
        values = self.evaluate_values([field(x).value for x in xs])
        return [FieldElement(field, value) for value in values]

    # -- ring arithmetic ----------------------------------------------------------

    def _check_same_field(self, other: "Polynomial") -> None:
        if other._field is not self._field:
            raise PolynomialError(
                "cannot combine polynomials over different fields: "
                f"GF({self._field.prime}) vs GF({other._field.prime})"
            )

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        longer, shorter = self._coeffs, other._coeffs
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        summed = list(longer)
        for i, coefficient in enumerate(shorter):
            summed[i] = (summed[i] + coefficient) % self._field.prime
        return Polynomial(self._field, summed)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        length = max(len(self._coeffs), len(other._coeffs))
        prime = self._field.prime
        diff = []
        for i in range(length):
            a = self._coeffs[i] if i < len(self._coeffs) else 0
            b = other._coeffs[i] if i < len(other._coeffs) else 0
            diff.append((a - b) % prime)
        return Polynomial(self._field, diff)

    def __neg__(self) -> "Polynomial":
        prime = self._field.prime
        return Polynomial(self._field, [(-c) % prime for c in self._coeffs])

    def __mul__(self, other: "Polynomial | int | FieldElement") -> "Polynomial":
        prime = self._field.prime
        if isinstance(other, (int, FieldElement)):
            scalar = self._field(other).value
            return Polynomial(self._field, [c * scalar % prime for c in self._coeffs])
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        product = [0] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other._coeffs):
                product[i + j] = (product[i + j] + a * b) % prime
        return Polynomial(self._field, product)

    __rmul__ = __mul__

    # -- comparison / repr -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return other._field is self._field and other._coeffs == self._coeffs

    def __hash__(self) -> int:
        return hash((self._field.prime, self._coeffs))

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{c}*x^{i}" if i else str(c)
            for i, c in enumerate(self._coeffs)
            if c or len(self._coeffs) == 1
        )
        return f"Polynomial({terms} over GF({self._field.prime}))"
