"""Finite-field arithmetic substrate.

Shamir Secret Sharing operates over a prime field GF(p).  This package
provides:

* :mod:`repro.field.modular` — integer modular arithmetic primitives
  (extended gcd, modular inverse, Miller-Rabin primality).
* :mod:`repro.field.prime_field` — :class:`PrimeField` /
  :class:`FieldElement`, a safe wrapper that prevents cross-field mixing.
* :mod:`repro.field.polynomial` — dense polynomials over a prime field
  with Horner evaluation and ring arithmetic.
* :mod:`repro.field.lagrange` — Lagrange interpolation, both full
  polynomial recovery and the cheaper evaluate-at-a-point form used by
  secret-sharing reconstruction.

The default modulus used throughout the library is the Mersenne prime
``2**61 - 1``: large enough that realistic sensor aggregates never wrap,
small enough that every share fits comfortably inside a single AES-128
block when serialized.
"""

from repro.field.modular import egcd, is_probable_prime, mod_inverse
from repro.field.prime_field import (
    DEFAULT_PRIME,
    MERSENNE_127,
    MERSENNE_61,
    FieldElement,
    PrimeField,
)
from repro.field.polynomial import Polynomial
from repro.field.lagrange import (
    interpolate_at,
    interpolate_constant,
    interpolate_polynomial,
    lagrange_weights_at,
)

__all__ = [
    "egcd",
    "mod_inverse",
    "is_probable_prime",
    "PrimeField",
    "FieldElement",
    "Polynomial",
    "DEFAULT_PRIME",
    "MERSENNE_61",
    "MERSENNE_127",
    "interpolate_at",
    "interpolate_constant",
    "interpolate_polynomial",
    "lagrange_weights_at",
]
