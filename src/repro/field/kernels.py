"""Raw-integer kernels for the secret-sharing hot paths.

The :class:`~repro.field.prime_field.FieldElement` wrapper buys safety
(cross-field mixing is caught at the call site) at the price of one object
allocation and one ``%`` per arithmetic operation.  The sharing and
reconstruction hot loops evaluate millions of field operations per
campaign, so this module provides the same mathematics on plain Python
ints:

* :func:`mod_mersenne61` / :func:`mul_mod_mersenne61` — shift-and-add
  reduction for the library-default modulus ``2**61 - 1`` (a Mersenne
  prime: ``x mod p`` is a fold of the high bits onto the low bits).
  Measured caveat: at 61 bits CPython's native ``%`` (C-level bigint
  division) is ~2× faster than a Python-level fold, so the hot loops
  below deliberately use ``% prime``; these two kernels are the
  portable reference form (and the right shape for a future numpy/C
  backend, where the fold wins);
* :func:`inv_mod` — modular inversion via CPython's native
  ``pow(x, -1, p)`` (much faster than a Python-level extended Euclid);
* :func:`horner_eval` / :func:`horner_eval_many` — dealer-polynomial
  evaluation without intermediate ``FieldElement`` objects;
* :func:`lagrange_weight_values` — Lagrange basis weights with a single
  batched inversion (Montgomery's trick: ``k`` inverses for the price of
  one ``pow(x, -1, p)`` and ``3k`` multiplications).

Every kernel is value-equivalent to the readable implementation it
shadows; ``tests/field/test_kernels.py`` enforces exact agreement.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InterpolationError, NonInvertibleError

#: The Mersenne prime 2**61 - 1, the library-wide default modulus.
M61 = (1 << 61) - 1


def mod_mersenne61(x: int) -> int:
    """``x mod (2**61 - 1)`` for non-negative ``x`` via bit folding.

    Because ``2**61 ≡ 1 (mod p)``, the high bits of ``x`` can simply be
    added onto the low 61 bits; two folds canonicalise any product of two
    canonical residues (≤ 122 bits).
    """
    x = (x & M61) + (x >> 61)
    x = (x & M61) + (x >> 61)
    if x >= M61:
        x -= M61
    return x


def mul_mod_mersenne61(a: int, b: int) -> int:
    """Product of two canonical Mersenne-61 residues, reduced."""
    return mod_mersenne61(a * b)


def inv_mod(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Thin wrapper over CPython's native three-argument ``pow`` with the
    library's error type on non-invertible input.
    """
    try:
        return pow(a, -1, modulus)
    except ValueError:
        raise NonInvertibleError(
            f"{a % modulus} has no inverse modulo {modulus}"
        ) from None


def horner_eval(coefficients: Sequence[int], x: int, prime: int) -> int:
    """Evaluate ``sum c_i * x**i`` at ``x`` over GF(prime), Horner style.

    ``coefficients`` are lowest-degree-first canonical residues; the
    result is a canonical residue.
    """
    accumulator = 0
    for coefficient in reversed(coefficients):
        accumulator = (accumulator * x + coefficient) % prime
    return accumulator


def horner_eval_many(
    coefficients: Sequence[int], xs: Sequence[int], prime: int
) -> list[int]:
    """Evaluate one polynomial at many points (the sharing-phase bulk op)."""
    reversed_coeffs = tuple(reversed(coefficients))
    results = []
    for x in xs:
        accumulator = 0
        for coefficient in reversed_coeffs:
            accumulator = (accumulator * x + coefficient) % prime
        results.append(accumulator)
    return results


def batch_inverse(values: Sequence[int], prime: int) -> list[int]:
    """Inverses of many non-zero residues with a single ``pow(x, -1, p)``.

    Montgomery's trick: invert the running product once, then peel the
    individual inverses off with two multiplications each.
    """
    prefix: list[int] = []
    running = 1
    for value in values:
        prefix.append(running)
        running = running * value % prime
    if not values:
        return []
    if running == 0:
        # Fall back to locating the offending zero for a precise error.
        for value in values:
            if value % prime == 0:
                raise NonInvertibleError(f"0 has no inverse modulo {prime}")
    inverse_running = inv_mod(running, prime)
    inverses = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        inverses[i] = prefix[i] * inverse_running % prime
        inverse_running = inverse_running * values[i] % prime
    return inverses


def lagrange_weight_values(
    xs: Sequence[int], prime: int, at: int = 0
) -> tuple[int, ...]:
    """Lagrange basis weights ``L_i(at)`` as canonical residues.

    Value-identical to
    :func:`repro.field.lagrange.lagrange_weights_at` but allocation-free
    and with all denominators inverted in one batch.  ``xs`` must already
    be canonical residues.
    """
    n = len(xs)
    if len(set(xs)) != n:
        raise InterpolationError("duplicate x-coordinates in weight computation")
    at %= prime
    # Numerators via prefix/suffix products of (at - x_j): O(n) instead of
    # the O(n^2) inner loop of the readable implementation.
    diffs = [(at - x) % prime for x in xs]
    prefix = [1] * (n + 1)
    for i in range(n):
        prefix[i + 1] = prefix[i] * diffs[i] % prime
    suffix = [1] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] * diffs[i] % prime
    numerators = [prefix[i] * suffix[i + 1] % prime for i in range(n)]
    denominators = []
    for i, x_i in enumerate(xs):
        denominator = 1
        for j, x_j in enumerate(xs):
            if i != j:
                denominator = denominator * ((x_i - x_j) % prime) % prime
        denominators.append(denominator)
    inverses = batch_inverse(denominators, prime)
    return tuple(
        numerator * inverse % prime
        for numerator, inverse in zip(numerators, inverses)
    )


def interpolate_value(
    xs: Sequence[int], ys: Sequence[int], prime: int, at: int = 0
) -> int:
    """Value at ``at`` of the polynomial through ``(xs, ys)``, on raw ints."""
    weights = lagrange_weight_values(xs, prime, at)
    total = 0
    for weight, y in zip(weights, ys):
        total += weight * y
    return total % prime
