"""Integer modular-arithmetic primitives.

These are the number-theoretic building blocks underneath
:class:`repro.field.prime_field.PrimeField`: extended Euclid, modular
inverse and a deterministic-for-64-bit Miller-Rabin primality test used to
validate user-supplied moduli.
"""

from __future__ import annotations

from repro.errors import FieldError, NonInvertibleError

# Witnesses that make Miller-Rabin deterministic for all n < 3.3 * 10**24,
# which covers every modulus this library realistically sees.  For larger
# inputs the same witness set still gives an error probability far below
# 2**-64, more than enough for validating a configuration value.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    Implemented iteratively so very large (128-bit+) operands do not hit
    the recursion limit.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def mod_inverse(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises :class:`NonInvertibleError` when ``gcd(a, modulus) != 1`` (in a
    prime field that only happens for ``a ≡ 0``).  Delegates to CPython's
    native ``pow(a, -1, m)``, which runs the same extended Euclid in C;
    :func:`egcd` remains the readable reference (and Bezout-coefficient
    provider) and the tests check the two agree.
    """
    if modulus <= 1:
        raise FieldError(f"modulus must be > 1, got {modulus}")
    a %= modulus
    if a == 0:
        raise NonInvertibleError(f"0 has no inverse modulo {modulus}")
    try:
        return pow(a, -1, modulus)
    except ValueError:
        g, _, _ = egcd(a, modulus)
        raise NonInvertibleError(
            f"{a} has no inverse modulo {modulus} (gcd={g})"
        ) from None


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test.

    Deterministic for every value below 3.3 * 10**24 thanks to the fixed
    witness set; for larger values it is a strong probable-prime test with
    negligible error probability.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 as d * 2**s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for witness in _MILLER_RABIN_WITNESSES:
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True
