"""Time synchronization: the Glossy sync flood and clock-drift budget.

Every deployed CT stack (Glossy, LWB, Crystal, the MiniCast system under
this paper) is time-triggered: rounds start at globally agreed instants,
which requires (a) a periodic synchronization flood carrying the
reference time and (b) guard times absorbing the clock drift accumulated
since the last sync.  The paper does not discuss this layer — its rounds
are long enough that sync overhead is invisible — but a complete system
must budget for it, and the engines can optionally account it.

Components:

* :class:`ClockModel` — per-node crystal-oscillator drift (±ppm) and the
  guard time needed after a given silence interval.
* :class:`SyncPlan` — how often to re-sync and what one sync flood costs
  (latency and per-node radio-on), built on :class:`GlossyFlood`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ct.glossy import GlossyFlood
from repro.errors import ConfigurationError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.phy.radio import RadioTimings
from repro.sim.seeds import stable_seed

#: Sync packet: 3 B header + 8 B reference time + 4 B round id/flags.
SYNC_PSDU_BYTES = 15


@dataclass(frozen=True, slots=True)
class ClockModel:
    """Crystal-oscillator drift model.

    Attributes:
        drift_ppm: worst-case frequency error of a node's crystal
            (±20 ppm is the customary 32.768 kHz watch-crystal rating).
    """

    drift_ppm: float = 20.0

    def __post_init__(self) -> None:
        if self.drift_ppm < 0:
            raise ConfigurationError(
                f"drift_ppm must be >= 0, got {self.drift_ppm}"
            )

    def guard_us(self, silence_us: int) -> int:
        """Guard time two nodes need after ``silence_us`` without sync.

        Worst case: the two clocks drift in opposite directions, so the
        relative error is twice the ppm rating.
        """
        if silence_us < 0:
            raise ConfigurationError("silence must be >= 0")
        return int(2 * self.drift_ppm * silence_us / 1_000_000) + 1

    def max_silence_us(self, guard_budget_us: int) -> int:
        """Longest silence a given guard budget can absorb."""
        if guard_budget_us < 1:
            raise ConfigurationError("guard budget must be >= 1 us")
        if self.drift_ppm == 0:
            return 2**62  # effectively unbounded
        return int(guard_budget_us * 1_000_000 / (2 * self.drift_ppm))


@dataclass(frozen=True)
class SyncCost:
    """What one synchronization flood costs the network."""

    latency_us: int
    mean_radio_on_us: float
    coverage: float


class SyncPlan:
    """Periodic Glossy-based re-synchronization for a deployment.

    Args:
        links: link table at the sync frame size.
        timings: radio timing model.
        ntx: sync-flood transmission budget (sync must be reliable, so
            the default is generous).
        initiator: the time master.
        clock: drift model for guard-time math.
    """

    def __init__(
        self,
        links: LinkTable,
        timings: RadioTimings,
        ntx: int = 5,
        initiator: int | None = None,
        clock: ClockModel | None = None,
        capture: CaptureModel | None = None,
    ):
        nodes = links.node_ids
        self._clock = clock or ClockModel()
        self._timings = timings
        root = nodes[0] if initiator is None else initiator
        num_slots = 2 * ntx + len(nodes)  # generous single-packet schedule
        self._flood = GlossyFlood(
            links,
            initiator=root,
            ntx=ntx,
            psdu_bytes=SYNC_PSDU_BYTES,
            timings=timings,
            num_slots=num_slots,
            capture=capture,
        )

    @property
    def clock(self) -> ClockModel:
        """The drift model in force."""
        return self._clock

    def measure_cost(self, seed: int = 0, iterations: int = 10) -> SyncCost:
        """Empirical cost of one sync flood (mean over iterations)."""
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        latency_total = 0
        radio_total = 0.0
        coverage_total = 0.0
        for iteration in range(iterations):
            result = self._flood.run(random.Random(stable_seed(seed, "sync", iteration)))
            last = max(result.received.values(), default=0)
            latency_total += (last + 1) * result.slot_us
            nodes = list(result.tx_us)
            radio_total += sum(
                result.tx_us[n] + result.rx_us[n] for n in nodes
            ) / len(nodes)
            coverage_total += result.coverage
        return SyncCost(
            latency_us=latency_total // iterations,
            mean_radio_on_us=radio_total / iterations,
            coverage=coverage_total / iterations,
        )

    def guard_for_round_spacing(self, round_period_us: int) -> int:
        """Guard time a TDMA round needs given re-sync every period."""
        return self._clock.guard_us(round_period_us)

    def overhead_fraction(
        self, round_period_us: int, seed: int = 0, iterations: int = 5
    ) -> float:
        """Sync radio-on as a fraction of the period (the budget line)."""
        if round_period_us < 1:
            raise ConfigurationError("round period must be >= 1 us")
        cost = self.measure_cost(seed=seed, iterations=iterations)
        return cost.mean_radio_on_us / round_period_us
