"""Glossy: the single-packet concurrent-transmission flood.

Glossy (Zimmerling et al., IPSN 2011) floods one packet network-wide:
the initiator transmits, every receiver retransmits in the next slot,
concurrent retransmissions interfere non-destructively, and each node
transmits at most NTX times.  The paper's system uses Glossy-class floods
for bootstrapping (time sync, control signalling); MiniCast generalizes
the same engine to chains.

The simulation is slot-synchronous: one packet air-time per slot, the
reception-triggers-transmission rule, and the capture/diversity model
from :mod:`repro.phy.capture`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.phy.radio import RadioTimings
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True, slots=True)
class GlossyResult:
    """Outcome of one flood.

    Attributes:
        received: node → slot index at which it first received the packet
            (0 = the initiator's own slot); missing nodes never received.
        slots_run: how many slots the flood actually used.
        num_slots: the scheduled upper bound.
        slot_us: duration of one slot.
        tx_us / rx_us: per-node radio time split.
    """

    received: dict[int, int]
    slots_run: int
    num_slots: int
    slot_us: int
    tx_us: dict[int, int] = field(default_factory=dict)
    rx_us: dict[int, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of nodes that received the packet."""
        return len(self.received) / max(len(self.tx_us), 1)

    def latency_us(self, node: int) -> int | None:
        """Time at which ``node`` first held the packet, or None."""
        slot = self.received.get(node)
        if slot is None:
            return None
        return (slot + 1) * self.slot_us


class GlossyFlood:
    """One configured Glossy flood, runnable many times with fresh RNG.

    Args:
        links: precomputed link table (PRRs at the flood's frame size).
        initiator: the node that owns the packet.
        ntx: per-node transmission budget.
        psdu_bytes: packet payload size.
        timings: radio timing model.
        num_slots: scheduled slot count; defaults to ``2 * ntx +
            network-size heuristic`` via the caller; must be explicit.
        capture: concurrent-reception model.
    """

    __slots__ = (
        "_links",
        "_initiator",
        "_ntx",
        "_num_slots",
        "_slot_us",
        "_capture",
        "_rx_order",
        "_prr",
    )

    def __init__(
        self,
        links: LinkTable,
        initiator: int,
        ntx: int,
        psdu_bytes: int,
        timings: RadioTimings,
        num_slots: int,
        capture: CaptureModel | None = None,
    ):
        if initiator not in links.node_ids:
            raise ConfigurationError(f"initiator {initiator} not in link table")
        if ntx < 1:
            raise ConfigurationError(f"ntx must be >= 1, got {ntx}")
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        self._links = links
        self._initiator = initiator
        self._ntx = ntx
        self._num_slots = num_slots
        self._slot_us = timings.packet_slot_us(psdu_bytes)
        self._capture = capture or CaptureModel()
        # Precompute, per receiver, all candidate transmitters strongest
        # first, so the hot loop never sorts.
        self._prr = {node: links.prr_row(node) for node in links.node_ids}
        self._rx_order = {
            dst: sorted(
                (src for src in links.node_ids if src != dst),
                key=lambda src: self._prr[src][dst],
                reverse=True,
            )
            for dst in links.node_ids
        }

    def run(
        self,
        rng,
        alive: set[int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> GlossyResult:
        """Execute the flood once; all randomness from ``rng``."""
        nodes = self._links.node_ids
        alive = set(nodes) if alive is None else alive
        capture = self._capture
        floor = capture.prr_floor
        max_div = capture.max_diversity

        has_packet = {node: False for node in nodes}
        pending_tx = {node: False for node in nodes}
        tx_count = {node: 0 for node in nodes}
        received_at: dict[int, int] = {}
        tx_us = {node: 0 for node in nodes}
        rx_us = {node: 0 for node in nodes}

        if self._initiator in alive:
            has_packet[self._initiator] = True
            pending_tx[self._initiator] = True
            received_at[self._initiator] = 0

        slots_run = 0
        for slot in range(self._num_slots):
            transmitters = [
                node
                for node in nodes
                if node in alive
                and pending_tx[node]
                and tx_count[node] < self._ntx
                and has_packet[node]
            ]
            if not transmitters:
                # Reception is the only thing that sets pending_tx, so an
                # all-quiet slot is quiet forever: account the idle tail
                # for still-listening nodes and stop simulating.
                break
            slots_run = slot + 1
            tx_set = set(transmitters)
            for node in transmitters:
                pending_tx[node] = False
                tx_count[node] += 1
                tx_us[node] += self._slot_us
                if trace is not None:
                    trace.record(slot * self._slot_us, node, "glossy_tx")

            for node in nodes:
                if node not in alive or node in tx_set:
                    continue
                rx_us[node] += self._slot_us
                # Strongest-first independent attempts, capped.
                success = False
                attempts = 0
                for src in self._rx_order[node]:
                    if src not in tx_set:
                        continue
                    prr = self._prr[src][node]
                    if prr <= floor:
                        break  # sorted descending: the rest are weaker
                    attempts += 1
                    if rng.random() < prr:
                        success = True
                        break
                    if attempts >= max_div:
                        break
                if success:
                    if not has_packet[node]:
                        has_packet[node] = True
                        received_at[node] = slot
                        if trace is not None:
                            trace.record(
                                slot * self._slot_us, node, "glossy_rx_first"
                            )
                    if tx_count[node] < self._ntx:
                        pending_tx[node] = True

        # Idle-listening tail up to the scheduled end for alive nodes:
        # real Glossy keeps the radio on for the whole scheduled flood
        # unless told otherwise.
        for node in nodes:
            if node in alive:
                listened = tx_us[node] + rx_us[node]
                rx_us[node] += self._num_slots * self._slot_us - listened

        return GlossyResult(
            received=received_at,
            slots_run=slots_run,
            num_slots=self._num_slots,
            slot_us=self._slot_us,
            tx_us=tx_us,
            rx_us=rx_us,
        )
