"""Sub-slot and chain layouts for the SSS phases.

MiniCast arranges all transmissions as a *chain of packets*: a fixed
sequence of sub-slots, each owned by exactly one source and carrying one
payload, transmitted back-to-back.  The SSS phases use two layouts:

* **Sharing phase** — one sub-slot per (source, destination) pair the
  protocol needs.  S3 uses all ``s × n`` pairs; S4 only ``s × m`` pairs
  (destinations = collectors).  Payload: AES-128-CTR-encrypted field
  element + truncated CBC-MAC tag.
* **Reconstruction phase** — one sub-slot per sum-holder, in plain text
  (the sums are not privacy sensitive), carrying the field sum plus a
  contributor bitmap for consistency checking.

A :class:`ChainLayout` maps sub-slot indices to their
:class:`SubSlotSpec` and back, and knows the PSDU size so the timing
model can price the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import PacketError

#: Sub-slot header: 2 B chain index + 1 B flags (matches MiniCast's
#: per-packet overhead on top of the 802.15.4 PHY header).
SUBSLOT_HEADER_BYTES = 3

#: AES-128 block: every encrypted share is exactly one block.
ENCRYPTED_SHARE_BYTES = 16

#: Truncated CBC-MAC tag carried by sharing-phase packets.
SHARE_TAG_BYTES = 4


def sharing_psdu_bytes() -> int:
    """PSDU size of one sharing-phase sub-slot packet."""
    return SUBSLOT_HEADER_BYTES + ENCRYPTED_SHARE_BYTES + SHARE_TAG_BYTES


def reconstruction_psdu_bytes(num_nodes: int, element_size: int = 8) -> int:
    """PSDU size of one reconstruction-phase sub-slot packet.

    Plain-text field sum (``element_size`` bytes) plus a contributor
    bitmap over all ``num_nodes`` possible sources.
    """
    if num_nodes < 1:
        raise PacketError(f"num_nodes must be >= 1, got {num_nodes}")
    if element_size < 1:
        raise PacketError(f"element_size must be >= 1, got {element_size}")
    bitmap_bytes = (num_nodes + 7) // 8
    return SUBSLOT_HEADER_BYTES + element_size + bitmap_bytes


@dataclass(frozen=True, slots=True)
class SubSlotSpec:
    """Ownership and addressing of one chain sub-slot.

    Attributes:
        index: position in the chain.
        source: node that originates this sub-slot's payload.
        destination: intended decryptor (sharing phase), or ``None`` for
            broadcast plain-text sub-slots (reconstruction phase).
    """

    index: int
    source: int
    destination: int | None = None


class ChainLayout:
    """An ordered chain of sub-slots with index lookups both ways."""

    __slots__ = (
        "_specs",
        "_by_pair",
        "_by_source",
        "_psdu_bytes",
        "_label",
        "_source_masks",
        "_dest_masks",
    )

    def __init__(
        self,
        specs: Sequence[SubSlotSpec],
        psdu_bytes: int,
        label: str = "chain",
    ):
        if not specs:
            raise PacketError("chain must have at least one sub-slot")
        if psdu_bytes < 1:
            raise PacketError(f"psdu_bytes must be >= 1, got {psdu_bytes}")
        for expected, spec in enumerate(specs):
            if spec.index != expected:
                raise PacketError(
                    f"sub-slot index {spec.index} at position {expected}; "
                    "chain indices must be 0..len-1 in order"
                )
        self._specs = tuple(specs)
        self._psdu_bytes = psdu_bytes
        self._label = label
        self._by_pair: dict[tuple[int, int | None], int] = {}
        self._by_source: dict[int, list[int]] = {}
        self._source_masks: dict[int, int] = {}
        self._dest_masks: dict[int | None, int] = {}
        for spec in specs:
            key = (spec.source, spec.destination)
            if key in self._by_pair:
                raise PacketError(
                    f"duplicate sub-slot for source={spec.source}, "
                    f"destination={spec.destination}"
                )
            self._by_pair[key] = spec.index
            self._by_source.setdefault(spec.source, []).append(spec.index)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def sharing(
        cls,
        sources: Iterable[int],
        destinations: Iterable[int],
    ) -> "ChainLayout":
        """Sharing-phase chain: one sub-slot per (source, destination).

        S3 passes every node as destination (chain of ``s × n``); S4
        passes only the collectors (chain of ``s × m``) — the paper's
        first optimization is literally the size of this object.
        """
        destinations = list(destinations)
        specs = []
        index = 0
        for source in sources:
            for destination in destinations:
                specs.append(
                    SubSlotSpec(index=index, source=source, destination=destination)
                )
                index += 1
        return cls(specs, sharing_psdu_bytes(), label="sharing")

    @classmethod
    def reconstruction(
        cls,
        holders: Iterable[int],
        num_nodes: int,
        element_size: int = 8,
    ) -> "ChainLayout":
        """Reconstruction-phase chain: one broadcast sub-slot per holder."""
        specs = [
            SubSlotSpec(index=i, source=holder, destination=None)
            for i, holder in enumerate(holders)
        ]
        return cls(
            specs,
            reconstruction_psdu_bytes(num_nodes, element_size),
            label="reconstruction",
        )

    # -- accessors ------------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable chain name."""
        return self._label

    @property
    def psdu_bytes(self) -> int:
        """PSDU size of each packet in this chain."""
        return self._psdu_bytes

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, index: int) -> SubSlotSpec:
        """Sub-slot at ``index``."""
        try:
            return self._specs[index]
        except IndexError:
            raise PacketError(
                f"sub-slot {index} out of range (chain has {len(self._specs)})"
            ) from None

    def specs(self) -> tuple[SubSlotSpec, ...]:
        """All sub-slots in order."""
        return self._specs

    def index_of(self, source: int, destination: int | None = None) -> int:
        """Index of the sub-slot owned by (source, destination)."""
        try:
            return self._by_pair[(source, destination)]
        except KeyError:
            raise PacketError(
                f"no sub-slot for source={source}, destination={destination}"
            ) from None

    def indices_of_source(self, source: int) -> list[int]:
        """All sub-slot indices originated by ``source``."""
        return list(self._by_source.get(source, []))

    def source_mask(self, source: int) -> int:
        """Bit mask over the chain of the sub-slots ``source`` originates."""
        cached = self._source_masks.get(source)
        if cached is not None:
            return cached
        mask = 0
        for index in self._by_source.get(source, []):
            mask |= 1 << index
        self._source_masks[source] = mask
        return mask

    def destination_mask(self, destination: int) -> int:
        """Bit mask of sub-slots addressed to ``destination``."""
        cached = self._dest_masks.get(destination)
        if cached is not None:
            return cached
        mask = 0
        for spec in self._specs:
            if spec.destination == destination:
                mask |= 1 << spec.index
        self._dest_masks[destination] = mask
        return mask

    def full_mask(self) -> int:
        """Mask with every sub-slot bit set."""
        return (1 << len(self._specs)) - 1

    def __repr__(self) -> str:
        return (
            f"ChainLayout({self._label!r}, {len(self._specs)} sub-slots, "
            f"psdu={self._psdu_bytes} B)"
        )
