"""TDMA round arithmetic.

A MiniCast round is a fixed schedule of *chain slots*.  In each chain
slot one "wave" of synchronized nodes transmits the full chain.  Because
nodes alternate receive/transmit (a reception in slot ``t`` triggers a
transmission in slot ``t + 1``), a node needs about ``2 × NTX`` slots to
spend its transmission budget, and the wave needs about one slot per hop
to reach the network edge.  The scheduled round length is therefore

    slots = depth_hint + 2 × NTX + slack

with a small slack absorbing stragglers.  Real deployments compute this
bound at flash time exactly the same way — nodes cannot detect
network-wide quiescence at runtime, so the schedule *is* the round
duration (what S3 pays), and only a node-local rule can end a node's
participation earlier (what S4 adds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.radio import RadioTimings

#: Default number of extra chain slots beyond the analytic bound.
DEFAULT_SLACK_SLOTS = 3


def round_slots(ntx: int, depth_hint: int, slack: int = DEFAULT_SLACK_SLOTS) -> int:
    """Scheduled chain-slot count for one MiniCast round."""
    if ntx < 1:
        raise ConfigurationError(f"ntx must be >= 1, got {ntx}")
    if depth_hint < 0:
        raise ConfigurationError(f"depth_hint must be >= 0, got {depth_hint}")
    if slack < 0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    return depth_hint + 2 * ntx + slack


@dataclass(frozen=True, slots=True)
class RoundSchedule:
    """The complete timing of one MiniCast round.

    Attributes:
        chain_length: number of sub-slots per chain.
        psdu_bytes: packet payload size (fixed across the chain).
        ntx: per-node transmission budget.
        num_slots: scheduled number of chain slots.
        timings: the radio timing model used for pricing.
    """

    chain_length: int
    psdu_bytes: int
    ntx: int
    num_slots: int
    timings: RadioTimings

    def __post_init__(self) -> None:
        if self.chain_length < 1:
            raise ConfigurationError(
                f"chain_length must be >= 1, got {self.chain_length}"
            )
        if self.num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {self.num_slots}")

    @classmethod
    def plan(
        cls,
        chain_length: int,
        psdu_bytes: int,
        ntx: int,
        depth_hint: int,
        timings: RadioTimings,
        slack: int = DEFAULT_SLACK_SLOTS,
    ) -> "RoundSchedule":
        """Build the schedule from protocol parameters."""
        return cls(
            chain_length=chain_length,
            psdu_bytes=psdu_bytes,
            ntx=ntx,
            num_slots=round_slots(ntx, depth_hint, slack),
            timings=timings,
        )

    @property
    def packet_slot_us(self) -> int:
        """Duration of one sub-slot packet incl. turnaround."""
        return self.timings.packet_slot_us(self.psdu_bytes)

    @property
    def chain_slot_us(self) -> int:
        """Duration of one chain slot."""
        return self.timings.chain_slot_us(self.psdu_bytes, self.chain_length)

    @property
    def round_duration_us(self) -> int:
        """Scheduled wall-clock duration of the whole round."""
        return self.num_slots * self.chain_slot_us

    @property
    def frame_bytes(self) -> int:
        """Full on-air frame size (PHY overhead + PSDU) for PRR lookups."""
        return self.timings.phy_overhead_bytes + self.psdu_bytes

    def slot_end_us(self, slot: int) -> int:
        """Time at which chain slot ``slot`` (0-based) completes."""
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(
                f"slot {slot} outside schedule of {self.num_slots}"
            )
        return (slot + 1) * self.chain_slot_us

    def __repr__(self) -> str:
        return (
            f"RoundSchedule(chain={self.chain_length}, ntx={self.ntx}, "
            f"slots={self.num_slots}, duration={self.round_duration_us} us)"
        )
