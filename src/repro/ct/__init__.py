"""Concurrent-transmission protocols: Glossy and MiniCast.

* :mod:`repro.ct.packet` — sub-slot/chain layouts and payload sizing for
  the two SSS phases.
* :mod:`repro.ct.slots` — TDMA round arithmetic (chain-slot durations,
  round lengths as a function of NTX and network depth).
* :mod:`repro.ct.glossy` — the single-packet flood primitive (Zimmerling
  et al., IPSN 2011), used for bootstrapping/synchronization.
* :mod:`repro.ct.minicast` — the chain-of-packets many-to-many round
  (Saha et al., DCOSS 2017) that hosts both SSS phases.
* :mod:`repro.ct.coverage` — the NTX → reachability profiler the S4
  bootstrapping phase relies on.
"""

from repro.ct.packet import (
    ChainLayout,
    SubSlotSpec,
    reconstruction_psdu_bytes,
    sharing_psdu_bytes,
)
from repro.ct.slots import RoundSchedule, round_slots
from repro.ct.glossy import GlossyFlood, GlossyResult
from repro.ct.minicast import MiniCastRound, MiniCastResult, RadioOffPolicy
from repro.ct.coverage import CoverageProfile, profile_coverage
from repro.ct.sync import ClockModel, SyncCost, SyncPlan

__all__ = [
    "ChainLayout",
    "SubSlotSpec",
    "sharing_psdu_bytes",
    "reconstruction_psdu_bytes",
    "RoundSchedule",
    "round_slots",
    "GlossyFlood",
    "GlossyResult",
    "MiniCastRound",
    "MiniCastResult",
    "RadioOffPolicy",
    "CoverageProfile",
    "profile_coverage",
    "ClockModel",
    "SyncCost",
    "SyncPlan",
]
