"""MiniCast: many-to-many data sharing over a chain of packets.

MiniCast (Saha et al., DCOSS 2017) extends Glossy from one packet to a
*chain* of sub-slot packets transmitted back-to-back.  Every node that is
triggered (hears a chain) transmits its own view of the chain — the
sub-slots it originates plus every sub-slot it has received so far — in
the next chain slot, up to NTX chain transmissions.  Because a sub-slot's
content is immutable (set by its source), concurrent transmitters send
*identical* packets in any sub-slot they both know, which is exactly the
condition Glossy-style constructive interference needs.

Simulation model (slot-synchronous, one event per chain slot):

* a node's chain view is a bit mask over sub-slot indices (one big int);
* per (listener, slot): concurrent transmitters are tried strongest
  first; each contributes an independent Bernoulli(PRR) *mask* of
  delivered sub-slots (sampled in O(precision) big-int ops via
  :mod:`repro.sim.bitrandom`), and each sub-slot accepts attempts from at
  most ``max_diversity`` transmitters *that know it* — the capture cap is
  per packet, not per node, tracked with saturating bit-plane counters;
* decoding at least one sub-slot arms the listener, which then transmits
  in each following slot with probability ``tx_probability`` until its
  NTX budget is spent.  The randomized transmit decision is how
  Chaos/Mixer-class many-to-many CT protocols desynchronize the network;
  a deterministic transmit-after-reception rule phase-locks the network
  into two alternating crowds and data from all but the strongest
  transmitters never propagates (we reproduce that pathology in tests);
* radio accounting: a transmitter spends ``popcount(view) × packet`` time
  in TX and the rest of the chain slot in RX; a listener spends the whole
  chain slot in RX; a node whose radio is off spends nothing.

Two radio-off policies mirror S3 vs S4:

* ``ALWAYS_ON`` — the naive schedule: every alive node keeps its radio on
  until the scheduled end of the round.
* ``EARLY_OFF`` — Glossy-style termination: a node switches off once it
  has (a) spent its NTX budget and (b) satisfied its local reception
  requirement, since it can contribute nothing further.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro import fastpath
from repro.errors import ConfigurationError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.ct.slots import RoundSchedule
from repro.sim import maskbatch
from repro.sim.bitrandom import DEFAULT_PRECISION, quantize_probability, random_bitmask
from repro.sim.trace import TraceRecorder

#: The array-formulated slot loop (``_run_vector``) is *opt-in* per
#: round: the scalar fast loop's big-int masks are already bit-parallel
#: (one CPython word op covers 64 sub-slots), and across every regime
#: the ``minicast_vector`` bench tier measures — sparse/dense links,
#: 60..2500 nodes, narrow and n²-wide chains — the numpy formulation's
#: per-dispatch overhead keeps it at 0.4-0.9× the bitmask loop.  It
#: stays in the tree as the distribution-identical batch formulation
#: (and the consumer of :mod:`repro.sim.maskbatch`) so a future backend
#: with cheaper dispatch (GPU, compiled kernels) can flip the default;
#: the bench tier tracks the ratio so that flip is data-driven.
VECTOR_MIN_NODES = 48

#: Rank sentinel for links the vector loop never receives on (self-links
#: and links at or below the capture floor).  Sorts after every real rank.
_RANK_NONE = 1 << 30


class RadioOffPolicy(enum.Enum):
    """When a node may power its radio down within a round."""

    ALWAYS_ON = "always_on"
    EARLY_OFF = "early_off"


@dataclass(frozen=True, slots=True)
class Requirement:
    """A node's local reception goal: ``min_count`` sub-slots of ``mask``.

    ``min_count == popcount(mask)`` means "all of them"; the sharing phase
    uses that form, the reconstruction phase uses ``min_count = degree+1``
    over the holders' mask.
    """

    mask: int
    min_count: int

    @classmethod
    def all_of(cls, mask: int) -> "Requirement":
        """Require every sub-slot in ``mask``."""
        return cls(mask=mask, min_count=mask.bit_count())

    @classmethod
    def count_of(cls, mask: int, min_count: int) -> "Requirement":
        """Require any ``min_count`` sub-slots of ``mask``."""
        if min_count > mask.bit_count():
            raise ConfigurationError(
                f"min_count {min_count} exceeds mask population {mask.bit_count()}"
            )
        return cls(mask=mask, min_count=min_count)

    @classmethod
    def nothing(cls) -> "Requirement":
        """No reception requirement (pure source/relay)."""
        return cls(mask=0, min_count=0)

    def satisfied_by(self, knowledge: int) -> bool:
        """Whether ``knowledge`` meets this requirement."""
        if self.min_count == 0:
            return True
        return (knowledge & self.mask).bit_count() >= self.min_count


@dataclass(frozen=True)
class MiniCastResult:
    """Outcome of one MiniCast round.

    Attributes:
        knowledge: node → final chain-view bit mask.
        completion_slot: node → chain-slot index at whose end the node's
            requirement was first satisfied (−1 if satisfied at start,
            ``None`` if never).
        tx_us / rx_us: per-node radio time split over the round.
        radio_off_slot: node → slot after which it powered down (None if
            it stayed on to the scheduled end).
        slots_run: chain slots actually simulated before network-quiet.
        schedule: the round schedule that was executed.
    """

    knowledge: dict[int, int]
    completion_slot: dict[int, int | None]
    tx_us: dict[int, int]
    rx_us: dict[int, int]
    radio_off_slot: dict[int, int | None]
    slots_run: int
    schedule: RoundSchedule
    failures: dict[int, int] = field(default_factory=dict)

    def completion_us(self, node: int) -> int | None:
        """Time at which ``node`` met its requirement (end of that slot)."""
        slot = self.completion_slot.get(node)
        if slot is None:
            return None
        if slot < 0:
            return 0
        return (slot + 1) * self.schedule.chain_slot_us

    def radio_on_us(self, node: int) -> int:
        """Radio-on time (TX + RX) of ``node`` for this round."""
        return self.tx_us.get(node, 0) + self.rx_us.get(node, 0)

    @property
    def round_duration_us(self) -> int:
        """Scheduled duration of the round (what TDMA reserves)."""
        return self.schedule.round_duration_us

    def delivery_ratio(self, mask: int) -> float:
        """Fraction of nodes whose final view contains all of ``mask``."""
        if not self.knowledge:
            return 0.0
        hits = sum(
            1 for view in self.knowledge.values() if view & mask == mask
        )
        return hits / len(self.knowledge)


class MiniCastRound:
    """One configured MiniCast round, runnable many times with fresh RNG."""

    __slots__ = (
        "_links",
        "_schedule",
        "_capture",
        "_policy",
        "_tx_probability",
        "_prr",
        "_rx_order",
        "_fast",
        "_index",
        "_rx_fast",
        "_vector",
        "_vector_state",
    )

    def __init__(
        self,
        links: LinkTable,
        schedule: RoundSchedule,
        capture: CaptureModel | None = None,
        policy: RadioOffPolicy = RadioOffPolicy.ALWAYS_ON,
        tx_probability: float = 0.5,
        force_reference: bool = False,
        vector: bool | None = None,
    ):
        """``force_reference`` pins this round to the readable loop even
        when the fast path is globally enabled.  Commissioning-time
        measurements (NTX-coverage profiling, S4 bootstrap) use it so the
        derived deployment parameters — collector sets, truncated
        schedules — are *bit-identical* to the seed implementation
        regardless of the compute path, keeping every downstream
        statistic on the exact configuration the reproduction validated.

        ``vector`` opts this round into the array-formulated slot loop
        (:meth:`_run_vector`); it additionally requires the
        ``REPRO_VECTOR`` backend to be on and a capable numpy (see
        :data:`VECTOR_MIN_NODES` for why it is opt-in rather than the
        default).  The vector loop is distribution-identical to the
        scalar fast loop; with ``REPRO_VECTOR=0`` — or without numpy —
        every round runs the scalar loop bit-exactly, so the flag can
        never change what a statistic *means*.
        """
        if not 0.0 < tx_probability <= 1.0:
            raise ConfigurationError(
                f"tx_probability must be in (0, 1], got {tx_probability}"
            )
        self._links = links
        self._schedule = schedule
        self._capture = capture or CaptureModel()
        self._policy = policy
        self._tx_probability = tx_probability
        self._prr = {node: links.prr_row(node) for node in links.node_ids}
        self._rx_order = {
            dst: sorted(
                (src for src in links.node_ids if src != dst),
                key=lambda src: self._prr[src][dst],
                reverse=True,
            )
            for dst in links.node_ids
        }
        self._fast = fastpath.enabled() and not force_reference
        self._vector = (
            self._fast
            and bool(vector)
            and fastpath.vector_enabled()
            and maskbatch.HAVE_NUMPY
        )
        self._vector_state: dict | None = None
        # Fast-path precomputation: node ids → dense indices, and one
        # receive list per listener holding (source index, pre-quantized
        # link success probability), strongest first, links at or below
        # the capture floor dropped.  The reference loop breaks at the
        # floor while walking the same descending order, so dropping those
        # entries up front is behaviour-preserving (and saves re-deriving
        # the quantized probability for every sampled mask).  Skipped
        # entirely for reference-path rounds, which never read it.
        if not self._fast:
            self._index = {}
            self._rx_fast: list[list[tuple[int, int, float]]] = []
            return
        node_ids = links.node_ids
        self._index = {node: i for i, node in enumerate(node_ids)}
        floor = self._capture.prr_floor
        q_full = 1 << DEFAULT_PRECISION
        # Each entry is (source index, quantized success probability,
        # per-bit miss probability 1 - q/2^precision).  q/2^precision is
        # dyadic, so the miss probability is an exact double.
        self._rx_fast = []
        for dst in node_ids:
            row = []
            prr_column = self._prr
            for src in self._rx_order[dst]:
                prr = prr_column[src][dst]
                if prr > floor:
                    quantized = quantize_probability(prr)
                    row.append((self._index[src], quantized, 1.0 - quantized / q_full))
            self._rx_fast.append(row)

    @property
    def schedule(self) -> RoundSchedule:
        """The schedule this round executes."""
        return self._schedule

    @property
    def policy(self) -> RadioOffPolicy:
        """The radio-off policy in force."""
        return self._policy

    def run(
        self,
        rng,
        initial_knowledge: Mapping[int, int],
        requirements: Mapping[int, Requirement] | None = None,
        initiators: Iterable[int] | None = None,
        alive: set[int] | None = None,
        failures: Mapping[int, int] | None = None,
        arm_schedule: Mapping[int, int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> MiniCastResult:
        """Execute the round.

        Dispatches to the bitmask fast loop or the readable reference
        loop depending on the :mod:`repro.fastpath` flag captured at
        construction.  The two paths are *distribution*-identical: every
        outcome statistic has the same law, but they spend ``rng`` draws
        differently, so a given seed generally produces different (yet
        equally valid) runs.  They coincide exactly only when no
        reception randomness is consumed (every link PRR quantizes to 0
        or 1), and commissioning callers that need seed-for-seed
        reproducibility pin ``force_reference=True`` instead
        (``tests/ct/test_minicast_fastpath.py`` covers all three).

        Args:
            rng: randomness source (``random``-like).
            initial_knowledge: node → bit mask of sub-slots it originates.
            requirements: node → local reception goal (default: nothing).
            initiators: nodes triggered at slot 0; defaults to the lowest
                node id with non-empty initial knowledge.
            alive: nodes participating at all (default: every node).
            failures: node → chain-slot index at whose *start* it dies.
            arm_schedule: node → chain-slot at which it joins the flood
                regardless of reception.  This models MiniCast's TDMA wave
                ("first-hop neighbors of the initiator transmit ... which
                in turn trigger the second hop"): in a time-synchronized
                network a node at hop h starts contending at slot h.
                Reception still arms a node earlier if it happens.
            trace: optional event recorder.
        """
        if self._fast:
            if self._vector and trace is None:
                return self._run_vector(
                    rng,
                    initial_knowledge,
                    requirements=requirements,
                    initiators=initiators,
                    alive=alive,
                    failures=failures,
                    arm_schedule=arm_schedule,
                )
            return self._run_fast(
                rng,
                initial_knowledge,
                requirements=requirements,
                initiators=initiators,
                alive=alive,
                failures=failures,
                arm_schedule=arm_schedule,
                trace=trace,
            )
        return self._run_reference(
            rng,
            initial_knowledge,
            requirements=requirements,
            initiators=initiators,
            alive=alive,
            failures=failures,
            arm_schedule=arm_schedule,
            trace=trace,
        )

    def _run_reference(
        self,
        rng,
        initial_knowledge: Mapping[int, int],
        requirements: Mapping[int, Requirement] | None = None,
        initiators: Iterable[int] | None = None,
        alive: set[int] | None = None,
        failures: Mapping[int, int] | None = None,
        arm_schedule: Mapping[int, int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> MiniCastResult:
        """The readable straight-line implementation (the fast loop's oracle)."""
        nodes = self._links.node_ids
        schedule = self._schedule
        chain_bits = schedule.chain_length
        ntx = schedule.ntx
        packet_us = schedule.packet_slot_us
        chain_slot_us = schedule.chain_slot_us
        capture = self._capture
        floor = capture.prr_floor
        max_div = capture.max_diversity
        early_off = self._policy is RadioOffPolicy.EARLY_OFF

        alive_set = set(nodes) if alive is None else set(alive)
        failures = dict(failures or {})
        requirements = dict(requirements or {})

        know: dict[int, int] = {}
        for node in nodes:
            mask = initial_knowledge.get(node, 0)
            if mask >> chain_bits:
                raise ConfigurationError(
                    f"initial knowledge of node {node} exceeds chain width"
                )
            know[node] = mask if node in alive_set else 0

        if initiators is None:
            with_data = [n for n in nodes if know[n] and n in alive_set]
            if not with_data:
                raise ConfigurationError("no node has data; cannot start round")
            initiator_set = {with_data[0]}
        else:
            initiator_set = set(initiators)
            unknown = initiator_set - set(nodes)
            if unknown:
                raise ConfigurationError(f"unknown initiators {sorted(unknown)}")

        # "Armed" nodes have joined the flood and contend for transmission
        # with probability tx_probability per slot until NTX is spent.
        armed = {
            node: (node in initiator_set and node in alive_set and know[node] != 0)
            for node in nodes
        }
        force_tx = dict(armed)  # initiators transmit slot 0 unconditionally
        tx_count = {node: 0 for node in nodes}
        tx_us = {node: 0 for node in nodes}
        radio_on = {node: node in alive_set for node in nodes}
        radio_off_slot: dict[int, int | None] = {node: None for node in nodes}
        # When each node's radio finally powered down; RX time falls out as
        # on-time minus TX time, which transparently covers silent slots
        # and early network-quiet.
        on_until_us = {
            node: (schedule.round_duration_us if radio_on[node] else 0)
            for node in nodes
        }
        completion: dict[int, int | None] = {}
        actual_failures: dict[int, int] = {}
        for node in nodes:
            requirement = requirements.get(node)
            if requirement is not None and requirement.satisfied_by(know[node]):
                completion[node] = -1
            elif requirement is None:
                completion[node] = -1
            else:
                completion[node] = None

        arm_schedule = dict(arm_schedule or {})

        slots_run = 0
        for slot in range(schedule.num_slots):
            # TDMA wave: nodes scheduled to join this slot become armed.
            for node, arm_slot in arm_schedule.items():
                if (
                    arm_slot == slot
                    and node in alive_set
                    and know[node] != 0
                    and tx_count[node] < ntx
                ):
                    armed[node] = True

            # Fault injection scheduled for the start of this slot.
            for node, fail_slot in failures.items():
                if fail_slot == slot and node in alive_set:
                    alive_set.discard(node)
                    radio_on[node] = False
                    on_until_us[node] = slot * chain_slot_us
                    actual_failures[node] = slot
                    if trace is not None:
                        trace.record(slot * chain_slot_us, node, "node_failed")

            contenders = [
                node
                for node in nodes
                if radio_on[node]
                and armed[node]
                and tx_count[node] < ntx
                and know[node] != 0
            ]
            if not contenders:
                if any(arm_slot > slot for arm_slot in arm_schedule.values()):
                    continue  # a scheduled joiner may still wake the round
                # Arming otherwise only happens on reception: quiet stays
                # quiet, so stop simulating.
                break
            slots_run = slot + 1
            transmitters = [
                node
                for node in contenders
                if force_tx[node] or rng.random() < self._tx_probability
            ]
            tx_set = set(transmitters)
            slot_start_us = slot * chain_slot_us

            for node in transmitters:
                force_tx[node] = False
                tx_count[node] += 1
                tx_us[node] += know[node].bit_count() * packet_us
                if trace is not None:
                    trace.record(
                        slot_start_us, node, "chain_tx", know[node].bit_count()
                    )

            if not tx_set:
                # Every contender's coin flip said "listen"; the slot is
                # silent but the round is still live.
                continue

            for node in nodes:
                if not radio_on[node] or node in tx_set:
                    continue
                received = 0
                decoded_any = False
                # Per-sub-slot saturating attempt counters (bit planes):
                # attempted[k] has a 1 wherever a bit received >= k+1
                # attempts, so a bit stops accepting transmitters once the
                # max_diversity strongest holders of *that bit* have tried.
                attempted = [0] * max_div
                saturated = 0
                for src in self._rx_order[node]:
                    if src not in tx_set:
                        continue
                    prr = self._prr[src][node]
                    if prr <= floor:
                        break  # descending order: the rest are weaker
                    eligible = know[src] & ~saturated
                    if not eligible:
                        continue
                    mask = random_bitmask(rng, chain_bits, prr)
                    got = eligible & mask
                    if got:
                        decoded_any = True
                        received |= got
                    for plane in range(max_div - 1, 0, -1):
                        attempted[plane] |= attempted[plane - 1] & eligible
                    attempted[0] |= eligible
                    saturated = attempted[max_div - 1]
                if not decoded_any:
                    continue
                new_bits = received & ~know[node]
                if new_bits:
                    know[node] |= new_bits
                    if trace is not None:
                        trace.record(
                            slot_start_us, node, "chain_rx", new_bits.bit_count()
                        )
                if tx_count[node] < ntx:
                    armed[node] = True

            # End-of-slot bookkeeping: completion and early radio-off.
            for node in nodes:
                if not radio_on[node]:
                    continue
                if completion[node] is None:
                    requirement = requirements.get(node)
                    if requirement is not None and requirement.satisfied_by(
                        know[node]
                    ):
                        completion[node] = slot
                if (
                    early_off
                    and tx_count[node] >= ntx
                    and completion[node] is not None
                ):
                    radio_on[node] = False
                    radio_off_slot[node] = slot
                    on_until_us[node] = (slot + 1) * chain_slot_us
                    if trace is not None:
                        trace.record(
                            (slot + 1) * chain_slot_us, node, "radio_off"
                        )

        # RX time = radio-on time minus transmission time.  Nodes that kept
        # the radio on to the end idle-listen out the scheduled round: TDMA
        # gives them no way to know the network has gone quiet.
        rx_us = {
            node: max(0, on_until_us[node] - tx_us[node]) for node in nodes
        }

        return MiniCastResult(
            knowledge=know,
            completion_slot=completion,
            tx_us=tx_us,
            rx_us=rx_us,
            radio_off_slot=radio_off_slot,
            slots_run=slots_run,
            schedule=schedule,
            failures=actual_failures,
        )

    def _run_fast(
        self,
        rng,
        initial_knowledge: Mapping[int, int],
        requirements: Mapping[int, Requirement] | None = None,
        initiators: Iterable[int] | None = None,
        alive: set[int] | None = None,
        failures: Mapping[int, int] | None = None,
        arm_schedule: Mapping[int, int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> MiniCastResult:
        """Bitmask hot loop, distribution-identical to the reference.

        Per-node booleans (radio on, armed, forced transmit, budget left,
        has data) live as bit positions in small ints, so per-slot node
        scans become popcount-bounded bit iterations; per-slot schedules
        (arming waves, fault injection) are bucketed by slot up front;
        link success probabilities come pre-quantized from ``__init__``.

        The one deliberate divergence from the reference is *how*
        randomness is spent, not what it means: per-bit Bernoulli masks
        are sampled only for sub-slots the listener does not yet know
        (the only bits that can change its state), and deliveries of
        already-known bits — which the reference samples in full and then
        discards — collapse into one closed-form draw deciding whether a
        still-unarmed listener decodes anything (the arming trigger; an
        armed node stays armed, so for it the question is moot).  Per-bit
        independence makes the split exact, so every observable outcome
        has the same distribution as the reference; seeded runs differ
        stream-wise, and ``tests/ct/test_minicast_fastpath.py`` checks
        both the exact deterministic cases and distributional agreement.
        """
        nodes = self._links.node_ids
        index = self._index
        n = len(nodes)
        schedule = self._schedule
        chain_bits = schedule.chain_length
        ntx = schedule.ntx
        packet_us = schedule.packet_slot_us
        chain_slot_us = schedule.chain_slot_us
        max_div = self._capture.max_diversity
        early_off = self._policy is RadioOffPolicy.EARLY_OFF
        tx_probability = self._tx_probability
        rx_lists = self._rx_fast
        precision = DEFAULT_PRECISION
        q_full = 1 << precision

        if alive is None:
            alive_mask = (1 << n) - 1
        else:
            alive_mask = 0
            alive_set = set(alive)
            for i, node in enumerate(nodes):
                if node in alive_set:
                    alive_mask |= 1 << i

        know: list[int] = []
        know_mask = 0  # bit i set iff know[i] != 0
        for i, node in enumerate(nodes):
            mask = initial_knowledge.get(node, 0)
            if mask >> chain_bits:
                raise ConfigurationError(
                    f"initial knowledge of node {node} exceeds chain width"
                )
            if alive_mask >> i & 1 and mask:
                know.append(mask)
                know_mask |= 1 << i
            else:
                know.append(0)

        if initiators is None:
            candidates = know_mask & alive_mask
            if not candidates:
                raise ConfigurationError("no node has data; cannot start round")
            initiator_mask = candidates & -candidates
        else:
            initiator_set = set(initiators)
            unknown = initiator_set - set(nodes)
            if unknown:
                raise ConfigurationError(f"unknown initiators {sorted(unknown)}")
            initiator_mask = 0
            for node in initiator_set:
                initiator_mask |= 1 << index[node]

        armed_mask = initiator_mask & alive_mask & know_mask
        force_mask = armed_mask
        budget_mask = (1 << n) - 1 if ntx > 0 else 0  # bit set iff tx budget left
        radio_mask = alive_mask
        tx_count = [0] * n
        tx_us = [0] * n
        radio_off_slot: list[int | None] = [None] * n
        round_duration_us = schedule.round_duration_us
        on_until_us = [
            round_duration_us if radio_mask >> i & 1 else 0 for i in range(n)
        ]

        requirements = dict(requirements or {})
        completion: list[int | None] = [-1] * n
        completed_mask = (1 << n) - 1
        # (mask, min_count) per still-unsatisfied node; nodes without a
        # requirement (or already satisfied) carry completion -1 from the
        # start, exactly like the reference.
        req_fast: list[tuple[int, int] | None] = [None] * n
        pending: list[int] = []
        for node, requirement in requirements.items():
            i = index.get(node)
            if i is None or requirement.satisfied_by(know[i]):
                continue
            completion[i] = None
            completed_mask &= ~(1 << i)
            req_fast[i] = (requirement.mask, requirement.min_count)
            pending.append(i)
        pending.sort()

        arm_by_slot: dict[int, list[int]] = {}
        max_arm_slot = -1
        for node, arm_slot in (arm_schedule or {}).items():
            i = index.get(node)
            if i is not None:
                arm_by_slot.setdefault(arm_slot, []).append(i)
            if arm_slot > max_arm_slot:
                max_arm_slot = arm_slot
        fail_by_slot: dict[int, list[int]] = {}
        for node, fail_slot in (failures or {}).items():
            i = index.get(node)
            if i is not None:
                fail_by_slot.setdefault(fail_slot, []).append(i)
        actual_failures: dict[int, int] = {}

        rng_random = rng.random
        getrandbits = rng.getrandbits
        tracing = trace is not None

        # Quiescence fast-out for the saturated tail: the union of all
        # knowledge is invariant over a round (bits only spread), so once
        # every radio-on node holds the full union and nobody unarmed has
        # budget left, the listener phase can never change state *or*
        # consume randomness — skipping it wholesale is draw-neutral.
        total_union = 0
        for view in know:
            total_union |= view
        know_uniform = all(
            know[i] == total_union
            for i in range(n)
            if radio_mask >> i & 1
        )

        slots_run = 0
        for slot in range(schedule.num_slots):
            joiners = arm_by_slot.get(slot)
            if joiners:
                for i in joiners:
                    if alive_mask >> i & 1 and know[i] and budget_mask >> i & 1:
                        armed_mask |= 1 << i

            casualties = fail_by_slot.get(slot)
            if casualties:
                for i in casualties:
                    bit = 1 << i
                    if alive_mask & bit:
                        alive_mask &= ~bit
                        radio_mask &= ~bit
                        on_until_us[i] = slot * chain_slot_us
                        actual_failures[nodes[i]] = slot
                        if tracing:
                            trace.record(slot * chain_slot_us, nodes[i], "node_failed")

            contender_mask = radio_mask & armed_mask & budget_mask & know_mask
            if not contender_mask:
                if max_arm_slot > slot:
                    continue  # a scheduled joiner may still wake the round
                break
            slots_run = slot + 1
            slot_start_us = slot * chain_slot_us

            # Contender scan, transmit decision and transmit bookkeeping in
            # one ascending-index pass (same rng draw order as the
            # reference's separate passes — bookkeeping draws nothing).
            tx_mask = 0
            tx_union = 0
            bits = contender_mask
            while bits:
                low = bits & -bits
                bits ^= low
                if force_mask & low:
                    force_mask ^= low
                elif rng_random() >= tx_probability:
                    continue
                i = low.bit_length() - 1
                tx_mask |= low
                view = know[i]
                tx_union |= view
                count = tx_count[i] + 1
                tx_count[i] = count
                if count >= ntx:
                    budget_mask &= ~low
                tx_us[i] += view.bit_count() * packet_us
                if tracing:
                    trace.record(slot_start_us, nodes[i], "chain_tx", view.bit_count())

            if not tx_mask:
                # Every contender's coin flip said "listen"; the slot is
                # silent but the round is still live.
                continue

            listeners = radio_mask & ~tx_mask
            if know_uniform and not (radio_mask & budget_mask & ~armed_mask):
                listeners = 0
            know_changed = False
            bits = listeners
            while bits:
                low = bits & -bits
                bits ^= low
                i = low.bit_length() - 1
                know_i = know[i]
                fresh_all = tx_union & ~know_i
                # Once armed, a node stays armed (the reference never
                # resets it), so the decode-anything re-arming draw only
                # matters for listeners that are still unarmed with budget
                # left.  Everyone else can only be changed by sub-slots
                # they don't know yet.
                can_rearm = not armed_mask & low and budget_mask & low
                if not fresh_all and not can_rearm:
                    continue
                received = 0
                sampled_hit = False
                miss = 1.0
                attempted = [0] * max_div
                saturated = 0
                for src, quantized, miss_q in rx_lists[i]:
                    if not tx_mask >> src & 1:
                        continue
                    eligible = know[src] & ~saturated
                    if not eligible:
                        continue
                    if quantized >= q_full:
                        sampled_hit = True
                        received |= eligible
                    elif quantized > 0:
                        fresh = eligible & ~know_i
                        if fresh:
                            # LSB-first over all `precision` digits of the
                            # quantized probability, as in random_bitmask.
                            acc = 0
                            qbits = quantized
                            for _ in range(precision):
                                r = getrandbits(chain_bits)
                                if qbits & 1:
                                    acc |= r
                                else:
                                    acc &= r
                                qbits >>= 1
                            got = fresh & acc
                            if got:
                                sampled_hit = True
                                received |= got
                        if can_rearm and not sampled_hit:
                            # Already-known bits can only re-arm the node;
                            # fold their delivery odds into one draw below.
                            stale_count = (eligible & know_i).bit_count()
                            if stale_count:
                                miss *= miss_q**stale_count
                    # Nothing downstream can change once every reachable
                    # fresh bit arrived and the arming question is settled.
                    if fresh_all & ~received == 0 and (
                        sampled_hit or not can_rearm
                    ):
                        break
                    for plane in range(max_div - 1, 0, -1):
                        attempted[plane] |= attempted[plane - 1] & eligible
                    attempted[0] |= eligible
                    saturated = attempted[max_div - 1]
                if sampled_hit:
                    decoded_any = True
                elif can_rearm and miss < 1.0:
                    # P(at least one already-known sub-slot decoded).
                    decoded_any = rng_random() >= miss
                else:
                    decoded_any = False
                if not decoded_any:
                    continue
                new_bits = received & ~know_i
                if new_bits:
                    know[i] = know_i | new_bits
                    know_mask |= low
                    know_changed = True
                    if tracing:
                        trace.record(
                            slot_start_us, nodes[i], "chain_rx", new_bits.bit_count()
                        )
                if budget_mask & low:
                    armed_mask |= low

            if know_changed and not know_uniform:
                know_uniform = all(
                    know[i] == total_union
                    for i in range(n)
                    if radio_mask >> i & 1
                )

            # End-of-slot bookkeeping: completion and early radio-off.
            if pending:
                still_pending = []
                for i in pending:
                    if radio_mask >> i & 1:
                        mask, min_count = req_fast[i]
                        if (know[i] & mask).bit_count() >= min_count:
                            completion[i] = slot
                            completed_mask |= 1 << i
                            continue
                    still_pending.append(i)
                pending = still_pending
            if early_off:
                bits = radio_mask & ~budget_mask & completed_mask
                while bits:
                    low = bits & -bits
                    bits ^= low
                    i = low.bit_length() - 1
                    radio_mask &= ~low
                    radio_off_slot[i] = slot
                    on_until_us[i] = (slot + 1) * chain_slot_us
                    if tracing:
                        trace.record((slot + 1) * chain_slot_us, nodes[i], "radio_off")

        return MiniCastResult(
            knowledge={node: know[i] for i, node in enumerate(nodes)},
            completion_slot={node: completion[i] for i, node in enumerate(nodes)},
            tx_us={node: tx_us[i] for i, node in enumerate(nodes)},
            rx_us={
                node: max(0, on_until_us[i] - tx_us[i])
                for i, node in enumerate(nodes)
            },
            radio_off_slot={
                node: radio_off_slot[i] for i, node in enumerate(nodes)
            },
            slots_run=slots_run,
            schedule=schedule,
            failures=actual_failures,
        )

    def _vector_setup(self) -> dict:
        """Per-round matrices for the array loop (built once, reused).

        ``rank[l, s]`` is the position of source ``s`` in listener
        ``l``'s descending-PRR receive order (the same entries as
        ``_rx_fast``), or the sentinel :data:`_RANK_NONE` for links at or
        below the capture floor (and self-links); ``quantized`` /
        ``miss`` carry the aligned pre-quantized success probability and
        its per-bit complement.  They are dense ``(n, n)`` matrices so a
        slot's rank selection is two gathers and an argsort over the
        transmitter subset.
        """
        state = self._vector_state
        if state is None:
            np = maskbatch._np
            n = len(self._links.node_ids)
            width = max(1, maskbatch.words_for(self._schedule.chain_length))
            # quantized/miss carry a sentinel column ``n`` (q=0, miss=1)
            # for the padded gathers of the block phase.
            rank = np.full((n, n), _RANK_NONE, dtype=np.int32)
            quantized = np.zeros((n, n + 1), dtype=np.int64)
            miss = np.ones((n, n + 1), dtype=np.float64)
            for i, row in enumerate(self._rx_fast):
                for position, (src, q, miss_q) in enumerate(row):
                    rank[i, src] = position
                    quantized[i, src] = q
                    miss[i, src] = miss_q
            state = {
                "rank": rank,
                "quantized": quantized,
                "miss": miss,
                "width": width,
            }
            self._vector_state = state
        return state

    def _run_vector(
        self,
        rng,
        initial_knowledge: Mapping[int, int],
        requirements: Mapping[int, Requirement] | None = None,
        initiators: Iterable[int] | None = None,
        alive: set[int] | None = None,
        failures: Mapping[int, int] | None = None,
        arm_schedule: Mapping[int, int] | None = None,
    ) -> MiniCastResult:
        """Array-formulated slot loop, distribution-identical to the others.

        The per-(listener, transmitter) Python loop becomes per-*rank*
        matrix steps: every listener's rank-r strongest transmitter of
        the slot is selected with one gather, their Bernoulli delivery
        masks are sampled for all listeners at once
        (:mod:`repro.sim.maskbatch`), and the capture cap's saturating
        bit-plane counters update as whole matrices.  Like the scalar
        fast loop it spends randomness differently from the reference —
        bulk uniform words come from a numpy generator seeded off the
        caller's rng (:func:`repro.sim.maskbatch.generator_from`), and
        reception is sampled for every eligible sub-slot the way the
        reference does — so outcomes agree in distribution, not
        stream-for-stream (``tests/ct/test_minicast_vector.py``).
        """
        np = maskbatch._np
        nodes = self._links.node_ids
        index = self._index
        n = len(nodes)
        schedule = self._schedule
        chain_bits = schedule.chain_length
        ntx = schedule.ntx
        packet_us = schedule.packet_slot_us
        chain_slot_us = schedule.chain_slot_us
        max_div = self._capture.max_diversity
        early_off = self._policy is RadioOffPolicy.EARLY_OFF
        tx_probability = self._tx_probability
        precision = DEFAULT_PRECISION
        state = self._vector_setup()
        rank_matrix = state["rank"]
        q_matrix = state["quantized"]
        miss_matrix = state["miss"]
        width = state["width"]
        gen = maskbatch.generator_from(rng)

        alive_arr = np.ones(n, dtype=bool)
        if alive is not None:
            alive_set = set(alive)
            for i, node in enumerate(nodes):
                alive_arr[i] = node in alive_set

        # Knowledge lives as little-endian uint64 word rows; row ``n`` is
        # the all-zeros sentinel the rank gathers land on when a listener
        # has fewer candidates than the current rank.
        know = np.zeros((n + 1, width), dtype=np.uint64)
        masks = []
        for i, node in enumerate(nodes):
            mask = initial_knowledge.get(node, 0)
            if mask >> chain_bits:
                raise ConfigurationError(
                    f"initial knowledge of node {node} exceeds chain width"
                )
            masks.append(mask if alive_arr[i] else 0)
        know[:n] = maskbatch.ints_to_words(masks, chain_bits)
        know_any = np.zeros(n, dtype=bool)
        know_any[:] = [mask != 0 for mask in masks]

        if initiators is None:
            candidates = know_any & alive_arr
            if not candidates.any():
                raise ConfigurationError("no node has data; cannot start round")
            initiator_arr = np.zeros(n, dtype=bool)
            initiator_arr[int(candidates.argmax())] = True
        else:
            initiator_set = set(initiators)
            unknown = initiator_set - set(nodes)
            if unknown:
                raise ConfigurationError(f"unknown initiators {sorted(unknown)}")
            initiator_arr = np.zeros(n, dtype=bool)
            for node in initiator_set:
                initiator_arr[index[node]] = True

        armed = initiator_arr & alive_arr & know_any
        force = armed.copy()
        tx_count = np.zeros(n, dtype=np.int64)
        budget = np.full(n, ntx > 0)
        radio = alive_arr.copy()
        tx_us = np.zeros(n, dtype=np.int64)
        radio_off_slot = np.full(n, -1, dtype=np.int64)
        round_duration_us = schedule.round_duration_us
        on_until_us = np.where(radio, round_duration_us, 0).astype(np.int64)

        requirements = dict(requirements or {})
        # completion: -1 = satisfied at start (or no requirement),
        # -2 = still pending, >= 0 = slot of first satisfaction.
        completion = np.full(n, -1, dtype=np.int64)
        req_mask = np.zeros((n, width), dtype=np.uint64)
        req_min = np.zeros(n, dtype=np.int64)
        pending = np.zeros(n, dtype=bool)
        for node, requirement in requirements.items():
            i = index.get(node)
            if i is None or requirement.satisfied_by(masks[i]):
                continue
            completion[i] = -2
            pending[i] = True
            req_mask[i] = maskbatch.ints_to_words(
                [requirement.mask], chain_bits
            )[0]
            req_min[i] = requirement.min_count

        arm_by_slot: dict[int, list[int]] = {}
        max_arm_slot = -1
        for node, arm_slot in (arm_schedule or {}).items():
            i = index.get(node)
            if i is not None:
                arm_by_slot.setdefault(arm_slot, []).append(i)
            if arm_slot > max_arm_slot:
                max_arm_slot = arm_slot
        fail_by_slot: dict[int, list[int]] = {}
        for node, fail_slot in (failures or {}).items():
            i = index.get(node)
            if i is not None:
                fail_by_slot.setdefault(fail_slot, []).append(i)
        actual_failures: dict[int, int] = {}

        slots_run = 0
        for slot in range(schedule.num_slots):
            joiners = arm_by_slot.get(slot)
            if joiners:
                for i in joiners:
                    if alive_arr[i] and know_any[i] and budget[i]:
                        armed[i] = True

            casualties = fail_by_slot.get(slot)
            if casualties:
                for i in casualties:
                    if alive_arr[i]:
                        alive_arr[i] = False
                        radio[i] = False
                        on_until_us[i] = slot * chain_slot_us
                        actual_failures[nodes[i]] = slot

            contenders = radio & armed & budget & know_any
            if not contenders.any():
                if max_arm_slot > slot:
                    continue  # a scheduled joiner may still wake the round
                break
            slots_run = slot + 1

            # Transmit decision: forced contenders always go, the rest
            # flip Bernoulli(tx_probability) coins — one vector draw, the
            # non-contender entries discarded unread.
            tx = contenders & (force | (gen.random(n) < tx_probability))
            force &= ~tx
            if not tx.any():
                # Every contender's coin flip said "listen"; the slot is
                # silent but the round is still live.
                continue
            tx_count[tx] += 1
            budget = tx_count < ntx
            tx_rows = know[:n][tx]
            tx_us[tx] += (
                np.bitwise_count(tx_rows).sum(axis=1).astype(np.int64)
                * packet_us
            )
            tx_union = np.bitwise_or.reduce(tx_rows, axis=0)

            # Reception, rank-major over compacted listener rows.  Like
            # the scalar fast loop, a listener only participates while it
            # can still change state: fresh sub-slots are sampled per
            # bit, deliveries of already-known bits fold into one
            # closed-form arming draw, and rows drop out of the batch as
            # soon as every reachable fresh bit arrived and the arming
            # question is settled.
            listeners = radio & ~tx
            fresh_matrix = tx_union[None, :] & ~know[:n]
            can_rearm = ~armed & budget
            active = listeners & (
                (fresh_matrix != 0).any(axis=1) | can_rearm
            )
            if active.any():
                lrows = np.flatnonzero(active)
                tx_idx = np.flatnonzero(tx)
                # Each row's transmitters in its own descending-PRR
                # order; floor-dropped links sort to the back as padding.
                rank_sub = rank_matrix[np.ix_(lrows, tx_idx)]
                rank_order = np.argsort(rank_sub, axis=1)
                src_sorted = tx_idx[rank_order]
                valid_counts = (rank_sub != _RANK_NONE).sum(axis=1)
                total_ranks = len(tx_idx)
                rows = lrows
                m = len(rows)
                know_c = know[rows]
                fresh_c = fresh_matrix[rows]
                rearm_c = can_rearm[rows]

                # Block phase: a bit saturates only after ``max_div``
                # attempts, so the first ``max_div`` ranks can never be
                # capture-limited — every (listener, rank) pair in the
                # block is independent.  One gather, one batched
                # Bernoulli draw and a handful of reductions replace
                # ``max_div`` sequential rank steps; for most slots the
                # block is the whole reception.
                r0 = min(total_ranks, max_div)
                blk_valid = np.arange(r0)[None, :] < valid_counts[:, None]
                src_blk = np.where(blk_valid, src_sorted[:, :r0], n)
                ksrc = know[src_blk]  # (m, r0, width)
                fresh_blk = ksrc & ~know_c[:, None, :]
                q_blk = np.where(
                    blk_valid, q_matrix[rows[:, None], src_blk], 0
                )
                certain_blk = q_blk >= (1 << precision)
                samp = (fresh_blk != 0).any(axis=2) & ~certain_blk
                got_blk = np.zeros_like(fresh_blk)
                flat = np.flatnonzero(samp)
                if len(flat):
                    mask = maskbatch.bernoulli_mask_matrix(
                        gen, q_blk.reshape(-1)[flat], chain_bits, precision
                    )
                    got_blk.reshape(-1, width)[flat] = (
                        fresh_blk.reshape(-1, width)[flat] & mask
                    )
                if certain_blk.any():
                    # Certain links (quantized saturated) deliver every
                    # eligible bit without a draw, like the fast loop.
                    got_blk |= np.where(certain_blk[:, :, None], ksrc, 0)
                hit_rank = (got_blk != 0).any(axis=2)
                recv_c = np.bitwise_or.reduce(got_blk, axis=1)
                hit_c = hit_rank.any(axis=1)
                miss_c = np.ones(m, dtype=np.float64)
                if rearm_c.any():
                    # Already-known bits can only re-arm a node; fold
                    # their delivery odds into one closed-form draw.  A
                    # rank folds only while no earlier (or own-rank
                    # fresh) delivery already decoded, like the scalar
                    # loop's running ``sampled_hit``.
                    hit_through = np.cumsum(hit_rank, axis=1) > 0
                    fold = (
                        rearm_c[:, None]
                        & ~hit_through
                        & ~certain_blk
                        & blk_valid
                    )
                    if fold.any():
                        stale = np.bitwise_count(
                            ksrc & know_c[:, None, :]
                        ).sum(axis=2)
                        missq = miss_matrix[rows[:, None], src_blk]
                        miss_c = np.where(
                            fold, missq ** stale, 1.0
                        ).prod(axis=1)
                att_c = np.zeros((max_div, m, width), dtype=np.uint64)
                for j in range(r0):
                    eligible = np.where(blk_valid[:, j, None], ksrc[:, j], 0)
                    for plane in range(max_div - 1, 0, -1):
                        att_c[plane] |= att_c[plane - 1] & eligible
                    att_c[0] |= eligible

                fin_rows = []
                fin_recv = []
                fin_hit = []
                fin_miss = []
                fin_rearm = []
                # Sequential residue: ranks past the block, where the
                # capture cap is live.  Rows leave the batch (state
                # banked in ``fin_*``) the moment their outcome is
                # settled and every still-missing fresh bit is saturated
                # — no later (weaker) transmitter can deliver it — so
                # late ranks touch only the few listeners still in play.
                if total_ranks > r0:
                    for rank in range(r0, total_ranks):
                        settled = hit_c | ~rearm_c
                        not_done = ~settled | (
                            (fresh_c & ~recv_c & ~att_c[max_div - 1]) != 0
                        ).any(axis=1)
                        live = not_done & (valid_counts > rank)
                        if not live.all():
                            leave = ~live
                            fin_rows.append(rows[leave])
                            fin_recv.append(recv_c[leave])
                            fin_hit.append(hit_c[leave])
                            fin_miss.append(miss_c[leave])
                            fin_rearm.append(rearm_c[leave])
                            if not live.any():
                                rows = rows[:0]
                                break
                            rows = rows[live]
                            know_c = know_c[live]
                            fresh_c = fresh_c[live]
                            rearm_c = rearm_c[live]
                            recv_c = recv_c[live]
                            att_c = att_c[:, live]
                            miss_c = miss_c[live]
                            hit_c = hit_c[live]
                            valid_counts = valid_counts[live]
                            src_sorted = src_sorted[live]
                        src = src_sorted[:, rank]
                        eligible = know[src] & ~att_c[max_div - 1]
                        fresh = eligible & ~know_c
                        q = q_matrix[rows, src]
                        certain_links = q >= (1 << precision)
                        sample = (fresh != 0).any(axis=1) & ~certain_links
                        if sample.any():
                            si = np.flatnonzero(sample)
                            mask = maskbatch.bernoulli_mask_matrix(
                                gen, q[si], chain_bits, precision
                            )
                            got = fresh[si] & mask
                            recv_c[si] |= got
                            hit_c[si] |= (got != 0).any(axis=1)
                        if certain_links.any():
                            recv_c |= np.where(
                                certain_links[:, None], eligible, 0
                            )
                            hit_c |= certain_links & (eligible != 0).any(
                                axis=1
                            )
                        fold = rearm_c & ~hit_c & ~certain_links
                        if fold.any():
                            stale = np.bitwise_count(
                                eligible & know_c
                            ).sum(axis=1)
                            miss_c = np.where(
                                fold,
                                miss_c * miss_matrix[rows, src] ** stale,
                                miss_c,
                            )
                        for plane in range(max_div - 1, 0, -1):
                            att_c[plane] |= att_c[plane - 1] & eligible
                        att_c[0] |= eligible
                if len(rows):
                    fin_rows.append(rows)
                    fin_recv.append(recv_c)
                    fin_hit.append(hit_c)
                    fin_miss.append(miss_c)
                    fin_rearm.append(rearm_c)
                out_rows = np.concatenate(fin_rows)
                out_recv = np.concatenate(fin_recv)
                out_hit = np.concatenate(fin_hit)
                out_miss = np.concatenate(fin_miss)
                out_rearm = np.concatenate(fin_rearm)
                decoded = out_hit
                undecided = out_rearm & ~out_hit & (out_miss < 1.0)
                if undecided.any():
                    decoded = decoded | (
                        undecided
                        & (gen.random(len(out_rows)) >= out_miss)
                    )
                if decoded.any():
                    hit_rows = out_rows[decoded]
                    know[hit_rows] |= out_recv[decoded]
                    know_any[hit_rows] = True
                    armed[hit_rows] |= budget[hit_rows]
                    if pending.any():
                        check = pending & radio
                        if check.any():
                            satisfied = check & (
                                np.bitwise_count(know[:n] & req_mask)
                                .sum(axis=1)
                                .astype(np.int64)
                                >= req_min
                            )
                            if satisfied.any():
                                completion[satisfied] = slot
                                pending &= ~satisfied

            if early_off:
                off = radio & ~budget & (completion != -2)
                if off.any():
                    radio &= ~off
                    radio_off_slot[off] = slot
                    on_until_us[off] = (slot + 1) * chain_slot_us

        tx_us_list = tx_us.tolist()
        on_until_list = on_until_us.tolist()
        completion_list = completion.tolist()
        off_list = radio_off_slot.tolist()
        knowledge_ints = maskbatch.masks_to_ints(know[:n])
        return MiniCastResult(
            knowledge={node: knowledge_ints[i] for i, node in enumerate(nodes)},
            completion_slot={
                node: (None if completion_list[i] == -2 else completion_list[i])
                for i, node in enumerate(nodes)
            },
            tx_us={node: tx_us_list[i] for i, node in enumerate(nodes)},
            rx_us={
                node: max(0, on_until_list[i] - tx_us_list[i])
                for i, node in enumerate(nodes)
            },
            radio_off_slot={
                node: (None if off_list[i] < 0 else off_list[i])
                for i, node in enumerate(nodes)
            },
            slots_run=slots_run,
            schedule=schedule,
            failures=actual_failures,
        )
