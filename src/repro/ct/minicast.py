"""MiniCast: many-to-many data sharing over a chain of packets.

MiniCast (Saha et al., DCOSS 2017) extends Glossy from one packet to a
*chain* of sub-slot packets transmitted back-to-back.  Every node that is
triggered (hears a chain) transmits its own view of the chain — the
sub-slots it originates plus every sub-slot it has received so far — in
the next chain slot, up to NTX chain transmissions.  Because a sub-slot's
content is immutable (set by its source), concurrent transmitters send
*identical* packets in any sub-slot they both know, which is exactly the
condition Glossy-style constructive interference needs.

Simulation model (slot-synchronous, one event per chain slot):

* a node's chain view is a bit mask over sub-slot indices (one big int);
* per (listener, slot): concurrent transmitters are tried strongest
  first; each contributes an independent Bernoulli(PRR) *mask* of
  delivered sub-slots (sampled in O(precision) big-int ops via
  :mod:`repro.sim.bitrandom`), and each sub-slot accepts attempts from at
  most ``max_diversity`` transmitters *that know it* — the capture cap is
  per packet, not per node, tracked with saturating bit-plane counters;
* decoding at least one sub-slot arms the listener, which then transmits
  in each following slot with probability ``tx_probability`` until its
  NTX budget is spent.  The randomized transmit decision is how
  Chaos/Mixer-class many-to-many CT protocols desynchronize the network;
  a deterministic transmit-after-reception rule phase-locks the network
  into two alternating crowds and data from all but the strongest
  transmitters never propagates (we reproduce that pathology in tests);
* radio accounting: a transmitter spends ``popcount(view) × packet`` time
  in TX and the rest of the chain slot in RX; a listener spends the whole
  chain slot in RX; a node whose radio is off spends nothing.

Two radio-off policies mirror S3 vs S4:

* ``ALWAYS_ON`` — the naive schedule: every alive node keeps its radio on
  until the scheduled end of the round.
* ``EARLY_OFF`` — Glossy-style termination: a node switches off once it
  has (a) spent its NTX budget and (b) satisfied its local reception
  requirement, since it can contribute nothing further.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.ct.slots import RoundSchedule
from repro.sim.bitrandom import random_bitmask
from repro.sim.trace import TraceRecorder


class RadioOffPolicy(enum.Enum):
    """When a node may power its radio down within a round."""

    ALWAYS_ON = "always_on"
    EARLY_OFF = "early_off"


@dataclass(frozen=True, slots=True)
class Requirement:
    """A node's local reception goal: ``min_count`` sub-slots of ``mask``.

    ``min_count == popcount(mask)`` means "all of them"; the sharing phase
    uses that form, the reconstruction phase uses ``min_count = degree+1``
    over the holders' mask.
    """

    mask: int
    min_count: int

    @classmethod
    def all_of(cls, mask: int) -> "Requirement":
        """Require every sub-slot in ``mask``."""
        return cls(mask=mask, min_count=mask.bit_count())

    @classmethod
    def count_of(cls, mask: int, min_count: int) -> "Requirement":
        """Require any ``min_count`` sub-slots of ``mask``."""
        if min_count > mask.bit_count():
            raise ConfigurationError(
                f"min_count {min_count} exceeds mask population {mask.bit_count()}"
            )
        return cls(mask=mask, min_count=min_count)

    @classmethod
    def nothing(cls) -> "Requirement":
        """No reception requirement (pure source/relay)."""
        return cls(mask=0, min_count=0)

    def satisfied_by(self, knowledge: int) -> bool:
        """Whether ``knowledge`` meets this requirement."""
        if self.min_count == 0:
            return True
        return (knowledge & self.mask).bit_count() >= self.min_count


@dataclass(frozen=True)
class MiniCastResult:
    """Outcome of one MiniCast round.

    Attributes:
        knowledge: node → final chain-view bit mask.
        completion_slot: node → chain-slot index at whose end the node's
            requirement was first satisfied (−1 if satisfied at start,
            ``None`` if never).
        tx_us / rx_us: per-node radio time split over the round.
        radio_off_slot: node → slot after which it powered down (None if
            it stayed on to the scheduled end).
        slots_run: chain slots actually simulated before network-quiet.
        schedule: the round schedule that was executed.
    """

    knowledge: dict[int, int]
    completion_slot: dict[int, int | None]
    tx_us: dict[int, int]
    rx_us: dict[int, int]
    radio_off_slot: dict[int, int | None]
    slots_run: int
    schedule: RoundSchedule
    failures: dict[int, int] = field(default_factory=dict)

    def completion_us(self, node: int) -> int | None:
        """Time at which ``node`` met its requirement (end of that slot)."""
        slot = self.completion_slot.get(node)
        if slot is None:
            return None
        if slot < 0:
            return 0
        return (slot + 1) * self.schedule.chain_slot_us

    def radio_on_us(self, node: int) -> int:
        """Radio-on time (TX + RX) of ``node`` for this round."""
        return self.tx_us.get(node, 0) + self.rx_us.get(node, 0)

    @property
    def round_duration_us(self) -> int:
        """Scheduled duration of the round (what TDMA reserves)."""
        return self.schedule.round_duration_us

    def delivery_ratio(self, mask: int) -> float:
        """Fraction of nodes whose final view contains all of ``mask``."""
        if not self.knowledge:
            return 0.0
        hits = sum(
            1 for view in self.knowledge.values() if view & mask == mask
        )
        return hits / len(self.knowledge)


class MiniCastRound:
    """One configured MiniCast round, runnable many times with fresh RNG."""

    __slots__ = (
        "_links",
        "_schedule",
        "_capture",
        "_policy",
        "_tx_probability",
        "_prr",
        "_rx_order",
    )

    def __init__(
        self,
        links: LinkTable,
        schedule: RoundSchedule,
        capture: CaptureModel | None = None,
        policy: RadioOffPolicy = RadioOffPolicy.ALWAYS_ON,
        tx_probability: float = 0.5,
    ):
        if not 0.0 < tx_probability <= 1.0:
            raise ConfigurationError(
                f"tx_probability must be in (0, 1], got {tx_probability}"
            )
        self._links = links
        self._schedule = schedule
        self._capture = capture or CaptureModel()
        self._policy = policy
        self._tx_probability = tx_probability
        self._prr = {node: links.prr_row(node) for node in links.node_ids}
        self._rx_order = {
            dst: sorted(
                (src for src in links.node_ids if src != dst),
                key=lambda src: self._prr[src][dst],
                reverse=True,
            )
            for dst in links.node_ids
        }

    @property
    def schedule(self) -> RoundSchedule:
        """The schedule this round executes."""
        return self._schedule

    @property
    def policy(self) -> RadioOffPolicy:
        """The radio-off policy in force."""
        return self._policy

    def run(
        self,
        rng,
        initial_knowledge: Mapping[int, int],
        requirements: Mapping[int, Requirement] | None = None,
        initiators: Iterable[int] | None = None,
        alive: set[int] | None = None,
        failures: Mapping[int, int] | None = None,
        arm_schedule: Mapping[int, int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> MiniCastResult:
        """Execute the round.

        Args:
            rng: randomness source (``random``-like).
            initial_knowledge: node → bit mask of sub-slots it originates.
            requirements: node → local reception goal (default: nothing).
            initiators: nodes triggered at slot 0; defaults to the lowest
                node id with non-empty initial knowledge.
            alive: nodes participating at all (default: every node).
            failures: node → chain-slot index at whose *start* it dies.
            arm_schedule: node → chain-slot at which it joins the flood
                regardless of reception.  This models MiniCast's TDMA wave
                ("first-hop neighbors of the initiator transmit ... which
                in turn trigger the second hop"): in a time-synchronized
                network a node at hop h starts contending at slot h.
                Reception still arms a node earlier if it happens.
            trace: optional event recorder.
        """
        nodes = self._links.node_ids
        schedule = self._schedule
        chain_bits = schedule.chain_length
        ntx = schedule.ntx
        packet_us = schedule.packet_slot_us
        chain_slot_us = schedule.chain_slot_us
        capture = self._capture
        floor = capture.prr_floor
        max_div = capture.max_diversity
        early_off = self._policy is RadioOffPolicy.EARLY_OFF

        alive_set = set(nodes) if alive is None else set(alive)
        failures = dict(failures or {})
        requirements = dict(requirements or {})

        know: dict[int, int] = {}
        for node in nodes:
            mask = initial_knowledge.get(node, 0)
            if mask >> chain_bits:
                raise ConfigurationError(
                    f"initial knowledge of node {node} exceeds chain width"
                )
            know[node] = mask if node in alive_set else 0

        if initiators is None:
            with_data = [n for n in nodes if know[n] and n in alive_set]
            if not with_data:
                raise ConfigurationError("no node has data; cannot start round")
            initiator_set = {with_data[0]}
        else:
            initiator_set = set(initiators)
            unknown = initiator_set - set(nodes)
            if unknown:
                raise ConfigurationError(f"unknown initiators {sorted(unknown)}")

        # "Armed" nodes have joined the flood and contend for transmission
        # with probability tx_probability per slot until NTX is spent.
        armed = {
            node: (node in initiator_set and node in alive_set and know[node] != 0)
            for node in nodes
        }
        force_tx = dict(armed)  # initiators transmit slot 0 unconditionally
        tx_count = {node: 0 for node in nodes}
        tx_us = {node: 0 for node in nodes}
        radio_on = {node: node in alive_set for node in nodes}
        radio_off_slot: dict[int, int | None] = {node: None for node in nodes}
        # When each node's radio finally powered down; RX time falls out as
        # on-time minus TX time, which transparently covers silent slots
        # and early network-quiet.
        on_until_us = {
            node: (schedule.round_duration_us if radio_on[node] else 0)
            for node in nodes
        }
        completion: dict[int, int | None] = {}
        actual_failures: dict[int, int] = {}
        for node in nodes:
            requirement = requirements.get(node)
            if requirement is not None and requirement.satisfied_by(know[node]):
                completion[node] = -1
            elif requirement is None:
                completion[node] = -1
            else:
                completion[node] = None

        arm_schedule = dict(arm_schedule or {})

        slots_run = 0
        for slot in range(schedule.num_slots):
            # TDMA wave: nodes scheduled to join this slot become armed.
            for node, arm_slot in arm_schedule.items():
                if (
                    arm_slot == slot
                    and node in alive_set
                    and know[node] != 0
                    and tx_count[node] < ntx
                ):
                    armed[node] = True

            # Fault injection scheduled for the start of this slot.
            for node, fail_slot in failures.items():
                if fail_slot == slot and node in alive_set:
                    alive_set.discard(node)
                    radio_on[node] = False
                    on_until_us[node] = slot * chain_slot_us
                    actual_failures[node] = slot
                    if trace is not None:
                        trace.record(slot * chain_slot_us, node, "node_failed")

            contenders = [
                node
                for node in nodes
                if radio_on[node]
                and armed[node]
                and tx_count[node] < ntx
                and know[node] != 0
            ]
            if not contenders:
                if any(arm_slot > slot for arm_slot in arm_schedule.values()):
                    continue  # a scheduled joiner may still wake the round
                # Arming otherwise only happens on reception: quiet stays
                # quiet, so stop simulating.
                break
            slots_run = slot + 1
            transmitters = [
                node
                for node in contenders
                if force_tx[node] or rng.random() < self._tx_probability
            ]
            tx_set = set(transmitters)
            slot_start_us = slot * chain_slot_us

            for node in transmitters:
                force_tx[node] = False
                tx_count[node] += 1
                tx_us[node] += know[node].bit_count() * packet_us
                if trace is not None:
                    trace.record(
                        slot_start_us, node, "chain_tx", know[node].bit_count()
                    )

            if not tx_set:
                # Every contender's coin flip said "listen"; the slot is
                # silent but the round is still live.
                continue

            for node in nodes:
                if not radio_on[node] or node in tx_set:
                    continue
                received = 0
                decoded_any = False
                # Per-sub-slot saturating attempt counters (bit planes):
                # attempted[k] has a 1 wherever a bit received >= k+1
                # attempts, so a bit stops accepting transmitters once the
                # max_diversity strongest holders of *that bit* have tried.
                attempted = [0] * max_div
                saturated = 0
                for src in self._rx_order[node]:
                    if src not in tx_set:
                        continue
                    prr = self._prr[src][node]
                    if prr <= floor:
                        break  # descending order: the rest are weaker
                    eligible = know[src] & ~saturated
                    if not eligible:
                        continue
                    mask = random_bitmask(rng, chain_bits, prr)
                    got = eligible & mask
                    if got:
                        decoded_any = True
                        received |= got
                    for plane in range(max_div - 1, 0, -1):
                        attempted[plane] |= attempted[plane - 1] & eligible
                    attempted[0] |= eligible
                    saturated = attempted[max_div - 1]
                if not decoded_any:
                    continue
                new_bits = received & ~know[node]
                if new_bits:
                    know[node] |= new_bits
                    if trace is not None:
                        trace.record(
                            slot_start_us, node, "chain_rx", new_bits.bit_count()
                        )
                if tx_count[node] < ntx:
                    armed[node] = True

            # End-of-slot bookkeeping: completion and early radio-off.
            for node in nodes:
                if not radio_on[node]:
                    continue
                if completion[node] is None:
                    requirement = requirements.get(node)
                    if requirement is not None and requirement.satisfied_by(
                        know[node]
                    ):
                        completion[node] = slot
                if (
                    early_off
                    and tx_count[node] >= ntx
                    and completion[node] is not None
                ):
                    radio_on[node] = False
                    radio_off_slot[node] = slot
                    on_until_us[node] = (slot + 1) * chain_slot_us
                    if trace is not None:
                        trace.record(
                            (slot + 1) * chain_slot_us, node, "radio_off"
                        )

        # RX time = radio-on time minus transmission time.  Nodes that kept
        # the radio on to the end idle-listen out the scheduled round: TDMA
        # gives them no way to know the network has gone quiet.
        rx_us = {
            node: max(0, on_until_us[node] - tx_us[node]) for node in nodes
        }

        return MiniCastResult(
            knowledge=know,
            completion_slot=completion,
            tx_us=tx_us,
            rx_us=rx_us,
            radio_off_slot=radio_off_slot,
            slots_run=slots_run,
            schedule=schedule,
            failures=actual_failures,
        )
