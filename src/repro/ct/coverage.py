"""NTX → coverage profiling (the measurement behind S4's bootstrapping).

Section III of the paper observes that MiniCast coverage grows
non-linearly with NTX — a node quickly hears a large neighbourhood, but
full network coverage takes disproportionately longer — and that S4's
bootstrapping phase has "every node take note of which neighbor is
reachable at what NTX value".

:func:`profile_coverage` runs many probe rounds (every node sourcing one
sub-slot, i.e. a chain of length n) per candidate NTX and records, for
each (source, destination) pair, the empirical delivery probability.
From that the protocol layer derives:

* the minimum NTX for reliable *full* coverage (what S3 must use),
* per-node reachability sets at low NTX (what S4's collector election
  uses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro import fastpath
from repro.errors import ConfigurationError
from repro.phy.capture import CaptureModel
from repro.phy.link import LinkTable
from repro.phy.radio import RadioTimings
from repro.ct.minicast import MiniCastRound, RadioOffPolicy, Requirement
from repro.ct.packet import ChainLayout
from repro.ct.slots import RoundSchedule
from repro.sim.seeds import stable_seed
from repro.topology.graph import bfs_hops


def arm_offsets(links: LinkTable, root: int) -> dict[int, int]:
    """TDMA wave offsets: node → good-link hop distance from ``root``.

    This is the slot at which each node is scheduled to join a MiniCast
    round started by ``root`` ("first-hop neighbors of the initiator
    transmit ... which in turn trigger the second hop").  Nodes outside
    the root's good-link component (possible under aggressive shadowing)
    join one slot after the farthest connected node.
    """
    if fastpath.enabled():
        cached = links.derived_cache.get(("wave", root))
        if cached is not None:
            return dict(cached)
    adjacency = links.adjacency()
    hops = bfs_hops(adjacency, root)
    fallback = (max(hops.values()) if hops else 0) + 1
    offsets = {node: hops.get(node, fallback) for node in links.node_ids}
    if fastpath.enabled():
        links.derived_cache[("wave", root)] = dict(offsets)
    return offsets


@dataclass(frozen=True)
class CoverageStats:
    """Aggregate coverage measurements at one NTX value.

    Attributes:
        ntx: the NTX these stats describe.
        pair_delivery: (source, destination) → empirical delivery
            probability over the probe iterations.
        mean_delivery: mean of ``pair_delivery`` values.
        full_coverage_fraction: fraction of iterations in which *every*
            pair was delivered (true all-to-all).
        mean_reachable: average number of distinct sources a node
            received — the "how far does NTX reach" curve of §III.
        slots_run_mean: average chain slots until network-quiet.
    """

    ntx: int
    pair_delivery: dict[tuple[int, int], float]
    mean_delivery: float
    full_coverage_fraction: float
    mean_reachable: float
    slots_run_mean: float

    def reachable_sources(self, node: int, threshold: float = 0.99) -> set[int]:
        """Sources whose data reached ``node`` with ≥ ``threshold`` probability."""
        return {
            src
            for (src, dst), probability in self.pair_delivery.items()
            if dst == node and probability >= threshold
        }

    def reliable_destinations(self, source: int, threshold: float = 0.99) -> set[int]:
        """Destinations that hear ``source`` with ≥ ``threshold`` probability."""
        return {
            dst
            for (src, dst), probability in self.pair_delivery.items()
            if src == source and probability >= threshold
        }


@dataclass(frozen=True)
class CoverageProfile:
    """Coverage statistics across a sweep of NTX values."""

    stats: dict[int, CoverageStats]

    def at(self, ntx: int) -> CoverageStats:
        """Stats for one NTX value."""
        try:
            return self.stats[ntx]
        except KeyError:
            raise ConfigurationError(
                f"NTX {ntx} was not profiled (have {sorted(self.stats)})"
            ) from None

    def min_full_coverage_ntx(self, target: float = 0.95) -> int | None:
        """Smallest profiled NTX whose full-coverage fraction ≥ ``target``."""
        for ntx in sorted(self.stats):
            if self.stats[ntx].full_coverage_fraction >= target:
                return ntx
        return None

    def reach_curve(self) -> list[tuple[int, float]]:
        """(NTX, mean reachable sources) pairs — the §III non-linearity."""
        return [
            (ntx, self.stats[ntx].mean_reachable) for ntx in sorted(self.stats)
        ]


def probe_round(
    links: LinkTable,
    timings: RadioTimings,
    ntx: int,
    depth_hint: int,
    capture: CaptureModel | None = None,
    psdu_bytes: int | None = None,
) -> tuple[MiniCastRound, ChainLayout]:
    """Build the 1-sub-slot-per-node probe round used for profiling."""
    nodes = links.node_ids
    layout = ChainLayout.reconstruction(nodes, num_nodes=len(nodes))
    schedule = RoundSchedule.plan(
        chain_length=len(layout),
        psdu_bytes=psdu_bytes if psdu_bytes is not None else layout.psdu_bytes,
        ntx=ntx,
        depth_hint=depth_hint,
        timings=timings,
    )
    round_ = MiniCastRound(
        links,
        schedule,
        capture=capture,
        policy=RadioOffPolicy.ALWAYS_ON,
        # Probe statistics feed deployment decisions (full-coverage NTX,
        # collector election); keep them bit-identical to the seed.
        force_reference=True,
    )
    return round_, layout


def profile_coverage(
    links: LinkTable,
    timings: RadioTimings,
    ntx_values: Sequence[int],
    depth_hint: int,
    iterations: int = 30,
    seed: int = 0,
    capture: CaptureModel | None = None,
) -> CoverageProfile:
    """Measure delivery statistics for each NTX in ``ntx_values``."""
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    nodes = links.node_ids
    wave = arm_offsets(links, nodes[0])
    stats: dict[int, CoverageStats] = {}
    for ntx in ntx_values:
        round_, layout = probe_round(links, timings, ntx, depth_hint, capture)
        initial = {node: layout.source_mask(node) for node in nodes}
        requirements = {
            node: Requirement.all_of(layout.full_mask()) for node in nodes
        }
        pair_hits: dict[tuple[int, int], int] = {
            (src, dst): 0 for src in nodes for dst in nodes if src != dst
        }
        full_rounds = 0
        reachable_total = 0
        slots_total = 0
        fast_counting = fastpath.enabled()
        if fast_counting:
            # Hot-loop hoists: bit position per source (computed once, not
            # per pair per iteration), the mask of everyone-but-me, and a
            # dense per-destination hit counter indexed by bit position.
            bit_of_source = {src: layout.index_of(src, None) for src in nodes}
            source_of_bit = {bit: src for src, bit in bit_of_source.items()}
            hit_rows: dict[int, list[int]] = {
                dst: [0] * len(layout) for dst in nodes
            }
            others_mask = {
                dst: layout.full_mask() & ~(1 << bit_of_source[dst])
                for dst in nodes
            }
        for iteration in range(iterations):
            rng = random.Random(stable_seed(seed, ntx, iteration))
            result = round_.run(
                rng,
                initial_knowledge=initial,
                requirements=requirements,
                initiators=[nodes[0]],
                arm_schedule=wave,
            )
            slots_total += result.slots_run
            if fast_counting:
                everything = True
                for dst in nodes:
                    relevant = result.knowledge[dst] & others_mask[dst]
                    count = relevant.bit_count()
                    reachable_total += count
                    if count != len(nodes) - 1:
                        everything = False
                    row = hit_rows[dst]
                    while relevant:
                        low_bit = relevant & -relevant
                        row[low_bit.bit_length() - 1] += 1
                        relevant ^= low_bit
                if everything:
                    full_rounds += 1
                continue
            everything = True
            for dst in nodes:
                view = result.knowledge[dst]
                for src in nodes:
                    if src == dst:
                        continue
                    bit = layout.index_of(src, None)
                    if (view >> bit) & 1:
                        pair_hits[(src, dst)] += 1
                        reachable_total += 1
                    else:
                        everything = False
            if everything:
                full_rounds += 1
        if fast_counting:
            for dst in nodes:
                row = hit_rows[dst]
                for bit, hits in enumerate(row):
                    if hits:
                        pair_hits[(source_of_bit[bit], dst)] = hits
        pair_delivery = {
            pair: hits / iterations for pair, hits in pair_hits.items()
        }
        num_pairs = len(pair_hits)
        stats[ntx] = CoverageStats(
            ntx=ntx,
            pair_delivery=pair_delivery,
            mean_delivery=sum(pair_delivery.values()) / num_pairs,
            full_coverage_fraction=full_rounds / iterations,
            mean_reachable=reachable_total / (iterations * len(nodes)),
            slots_run_mean=slots_total / iterations,
        )
    return CoverageProfile(stats=stats)


def elect_collectors(
    coverage: CoverageStats,
    num_collectors: int,
    sources: Sequence[int],
    candidates: Sequence[int],
    threshold: float = 0.95,
) -> list[int]:
    """Choose collectors every source reaches reliably at the profiled NTX.

    Two criteria, in order:

    1. *Reachability* — a candidate's worst-case (minimum over sources)
       delivery probability must be at least ``threshold``.
    2. *Compactness* — among qualified candidates, pick the best-scoring
       one as the cluster centre and fill the remaining seats with the
       candidates best connected to it.

    Compactness is not cosmetic: clustered collectors see correlated
    deliveries, so when a marginal source's shares go missing they tend
    to go missing *identically* across collectors, which keeps the
    contributor sets consistent and reconstruction possible.  It also
    matches the paper's wording — shares go to "a few known
    pre-determined *neighbors*".

    Raises :class:`ConfigurationError` when fewer than ``num_collectors``
    candidates meet ``threshold`` — the caller should then raise NTX, the
    exact trade-off §III describes.
    """
    if num_collectors < 1:
        raise ConfigurationError(
            f"num_collectors must be >= 1, got {num_collectors}"
        )
    scored: list[tuple[float, int]] = []
    for candidate in candidates:
        worst = min(
            (
                coverage.pair_delivery.get((source, candidate), 1.0)
                for source in sources
                if source != candidate
            ),
            default=1.0,
        )
        scored.append((worst, candidate))
    scored.sort(key=lambda item: (-item[0], item[1]))
    qualified = [candidate for score, candidate in scored if score >= threshold]
    if len(qualified) < num_collectors:
        raise ConfigurationError(
            f"only {len(qualified)} candidates reach {threshold:.0%} worst-case "
            f"delivery at NTX {coverage.ntx}; need {num_collectors} — "
            "increase NTX or lower the threshold"
        )
    center = qualified[0]
    others = sorted(
        (c for c in qualified if c != center),
        key=lambda c: (
            -(
                coverage.pair_delivery.get((center, c), 0.0)
                + coverage.pair_delivery.get((c, center), 0.0)
            ),
            c,
        ),
    )
    return sorted([center] + others[: num_collectors - 1])
