"""Synthetic stand-ins for the paper's two public testbeds.

The paper evaluates on FlockLab 2 (ETH Zurich, 26 nRF52840 observers in an
office building) and D-Cube (TU Graz, 45 nodes in a denser office/lab
area).  We cannot run on the physical testbeds, so — per the substitution
policy in DESIGN.md — each is replaced by a deterministic synthetic layout
plus channel parameters calibrated so that the *structural* properties the
paper's results depend on hold:

* FlockLab: 26 nodes, building-scale L-shaped deployment, good-link
  diameter ≈ 4 hops, moderate density;
* D-Cube: 45 nodes, denser and flatter, good-link diameter ≈ 3 hops,
  high density (which is what amplifies S4's gains there).

``tests/topology/test_testbeds.py`` pins these calibration targets so a
change to the channel model cannot silently invalidate the benchmarks.

Each testbed also records the evaluation parameters the paper states for
it: the source-count sweep of Fig. 1, the polynomial degree rule
``⌊n/3⌋``, and the sharing-phase NTX the authors found sufficient (6 for
FlockLab, 5 for D-Cube).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.phy.channel import ChannelParameters
from repro.topology.graph import Topology


@dataclass(frozen=True)
class TestbedSpec:
    """A testbed: geometry, propagation environment, paper parameters.

    Attributes:
        topology: node placement.
        channel: propagation parameters calibrated for this testbed.
        sharing_ntx: NTX the paper found sufficient for S4's sharing phase.
        full_coverage_ntx: NTX at which dissemination reliably reaches the
            whole network (what S3 must use); profiled during calibration.
        source_sweep: the x-axis of the paper's Fig. 1 for this testbed.
        name: testbed name used in reports.
    """

    topology: Topology
    channel: ChannelParameters
    sharing_ntx: int
    full_coverage_ntx: int
    source_sweep: tuple[int, ...]
    name: str = "testbed"
    extras: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Total node count n."""
        return len(self.topology)

    @property
    def polynomial_degree(self) -> int:
        """The paper's degree rule: ⌊n/3⌋."""
        return self.num_nodes // 3


def _jittered(
    base: list[tuple[float, float]], seed: int, jitter_m: float
) -> dict[int, tuple[float, float]]:
    """Apply deterministic position jitter to break grid symmetries."""
    rng = random.Random(seed)
    return {
        i: (
            x + rng.uniform(-jitter_m, jitter_m),
            y + rng.uniform(-jitter_m, jitter_m),
        )
        for i, (x, y) in enumerate(base)
    }


def flocklab() -> TestbedSpec:
    """Synthetic FlockLab: 26 nodes in an L-shaped office building.

    Two wings of offices either side of a corridor, ~52 m tip-to-tip.
    With the calibrated channel (path-loss exponent 4.0, 52 dB reference
    loss — interior walls), good links span ≈ 15-20 m, giving the ≈ 4-hop
    diameter FlockLab's nRF connectivity maps show.
    """
    base: list[tuple[float, float]] = []
    # Wing A: offices along a horizontal corridor (14 nodes).
    for x in (2.0, 7.0, 12.0, 17.0, 22.0, 27.0, 32.0):
        base.append((x, -4.0))
        base.append((x, 4.0))
    # Wing B: offices along a vertical corridor at the east end (12 nodes).
    for y in (6.0, 11.0, 16.0, 21.0, 26.0, 31.0):
        base.append((32.0, y))
        base.append((40.0, y))
    positions = _jittered(base, seed=26, jitter_m=1.0)
    topology = Topology(positions, name="flocklab-26")
    channel = ChannelParameters(
        tx_power_dbm=0.0,
        path_loss_exponent=4.0,
        reference_loss_db=52.0,
        shadowing_sigma_db=3.0,
        noise_floor_dbm=-96.0,
        shadowing_seed=0xF10C,
    )
    return TestbedSpec(
        topology=topology,
        channel=channel,
        sharing_ntx=6,
        # Profiled minimum for reliable full-network n^2-chain coverage is
        # NTX=10 (see tests/ct/test_coverage_calibration.py); the naive
        # baseline has no bootstrapping insight, so it over-provisions by
        # the customary +2 margin.
        full_coverage_ntx=12,
        source_sweep=(3, 6, 10, 24),
        name="FlockLab",
        # Calibrated S4 operating point for this synthetic channel: our
        # loss tail needs NTX=7 where the authors' hardware managed 6,
        # plus two redundant collectors (see EXPERIMENTS.md deviations).
        extras={"s4_sharing_ntx": 7, "s4_redundancy": 2},
    )


def dcube() -> TestbedSpec:
    """Synthetic D-Cube: 45 nodes, dense office/lab deployment.

    A 9 x 5 jittered grid over ~44 x 21 m.  Denser than FlockLab — a good
    link reaches a sizeable fraction of the network — giving the ≈ 3-hop
    diameter and the larger S4 advantage the paper reports there.
    """
    base = [
        (column * 5.5, row * 5.25)
        for row in range(5)
        for column in range(9)
    ]
    positions = _jittered(base, seed=45, jitter_m=1.2)
    topology = Topology(positions, name="dcube-45")
    channel = ChannelParameters(
        tx_power_dbm=0.0,
        path_loss_exponent=4.0,
        reference_loss_db=52.0,
        shadowing_sigma_db=3.0,
        noise_floor_dbm=-96.0,
        shadowing_seed=0xDC0B,
    )
    return TestbedSpec(
        topology=topology,
        channel=channel,
        sharing_ntx=5,
        # Same provisioning rule as FlockLab: profiled minimum 10 plus 2.
        full_coverage_ntx=12,
        source_sweep=(5, 7, 12, 45),
        name="DCube",
        # Calibrated S4 operating point: our synthetic channel's loss tail
        # needs NTX=7 where the authors' physical testbed managed 5, plus
        # two redundant collectors (see EXPERIMENTS.md deviations).
        extras={"s4_sharing_ntx": 7, "s4_redundancy": 2},
    )


def testbed_by_name(name: str) -> TestbedSpec:
    """Look a testbed up by case-insensitive name."""
    lowered = name.lower()
    if lowered in ("flocklab", "flocklab-26"):
        return flocklab()
    if lowered in ("dcube", "d-cube", "dcube-45"):
        return dcube()
    from repro.errors import TopologyError

    raise TopologyError(f"unknown testbed {name!r} (have: flocklab, dcube)")
