"""Geometric cell partitioning for sharded MPC deployments.

A million-node deployment cannot run as a single broadcast domain: chain
lengths, link tables and share fan-out all grow super-linearly in n.  The
standard route in related work (MOZAIK's partitioned MPC engines, von
Maltitz & Carle's federated SMC groups) is hierarchical composition —
slice the deployment into **cells**, run the paper's protocol inside each
cell, then combine per-cell aggregates in a cross-cell round.

This module provides the slicing: a deterministic, geometry-aware
partition of a :class:`~repro.topology.graph.Topology` into ``cells``
near-equal groups.  Nodes are striped along the x-axis, then each stripe
is cut along y — so cells are spatially contiguous blocks, which is what
keeps an engine-simulated cell connected under the channel model.  The
partition is a pure function of (topology, cells): no RNG, no dependence
on dict order (ties break on node id), so every worker and every process
computes the same cells.

Works for generated graphs (:mod:`repro.topology.generators`) and testbed
specs alike; :func:`cell_subspec` carves a per-cell
:class:`~repro.topology.testbeds.TestbedSpec` the way
``subnetwork_spec`` does for Fig. 1 sub-deployments.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro.topology.testbeds import TestbedSpec


def _split_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` near-equal positive counts."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def partition_nodes(
    topology: Topology, cells: int
) -> list[tuple[int, ...]]:
    """Partition a topology into ``cells`` spatially contiguous node groups.

    Returns one sorted node-id tuple per cell, cells ordered west-to-east
    then south-to-north.  Every node lands in exactly one cell and cell
    sizes differ by at most one.

    Deterministic by construction: nodes are ordered by (x, y, id), so the
    same (topology, cells) input yields the same partition in every
    process — the property the sharded campaign's seeding relies on.
    """
    n = len(topology)
    if cells < 1:
        raise TopologyError(f"cells must be >= 1, got {cells}")
    if cells > n:
        raise TopologyError(
            f"cannot split {n} nodes into {cells} non-empty cells"
        )
    positions = topology.positions
    by_x = sorted(
        positions, key=lambda node: (positions[node][0], positions[node][1], node)
    )
    # Global target sizes first (so cells are near-equal *across* stripes,
    # not just within one), then stripe along x with ~sqrt(cells) stripes
    # and cut each stripe along y into its run of cells.
    cell_sizes = _split_counts(n, cells)
    stripes = max(1, round(math.sqrt(cells)))
    cells_per_stripe = _split_counts(cells, stripes)
    partition: list[tuple[int, ...]] = []
    cursor = 0
    cell_cursor = 0
    for stripe_cells in cells_per_stripe:
        sizes = cell_sizes[cell_cursor : cell_cursor + stripe_cells]
        cell_cursor += stripe_cells
        stripe = by_x[cursor : cursor + sum(sizes)]
        cursor += sum(sizes)
        stripe.sort(key=lambda node: (positions[node][1], positions[node][0], node))
        inner = 0
        for count in sizes:
            partition.append(tuple(sorted(stripe[inner : inner + count])))
            inner += count
    return partition


def cell_topology(
    topology: Topology, node_ids: tuple[int, ...], index: int
) -> Topology:
    """The sub-topology of one cell (same ids, same positions)."""
    positions = {node: topology.position(node) for node in node_ids}
    return Topology(positions, name=f"{topology.name}-cell{index}")


def cell_subspec(
    spec: TestbedSpec, node_ids: tuple[int, ...], index: int
) -> TestbedSpec:
    """Carve one cell's :class:`TestbedSpec` out of a parent testbed.

    Channel parameters, NTX settings and extras are inherited — a cell is
    the same physical environment, just fewer nodes.
    """
    return dataclasses.replace(
        spec, topology=cell_topology(spec.topology, node_ids, index)
    )
