"""Network topologies: geometry, graph metrics, and testbed layouts.

* :mod:`repro.topology.graph` — the :class:`Topology` container (node
  positions) and hop-distance/diameter/eccentricity computations over a
  good-link adjacency.
* :mod:`repro.topology.generators` — deterministic grid / random-geometric
  / line generators for tests and ablations.
* :mod:`repro.topology.testbeds` — synthetic stand-ins for the two public
  testbeds the paper uses (FlockLab, 26 nodes; DCube, 45 nodes), calibrated
  by tests to the hop structure the paper's numbers imply.
"""

from repro.topology.graph import (
    Topology,
    bfs_hops,
    diameter,
    eccentricities,
    is_connected,
)
from repro.topology.generators import grid, line, random_geometric
from repro.topology.testbeds import dcube, flocklab

__all__ = [
    "Topology",
    "bfs_hops",
    "diameter",
    "eccentricities",
    "is_connected",
    "grid",
    "line",
    "random_geometric",
    "flocklab",
    "dcube",
]
