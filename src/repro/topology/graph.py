"""Topology container and hop-graph metrics.

A :class:`Topology` is pure geometry — node ids and planar coordinates.
Hop-level structure (who is whose neighbour) only exists relative to a
channel model, so the graph metrics here take an adjacency mapping
(typically :meth:`repro.phy.link.LinkTable.adjacency`) rather than the
topology itself.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.errors import TopologyError


class Topology:
    """Immutable set of node positions.

    Args:
        positions: mapping node id → (x, y) in metres.
        name: human-readable label used in traces and reports.
    """

    __slots__ = ("_positions", "_name")

    def __init__(
        self,
        positions: Mapping[int, tuple[float, float]],
        name: str = "topology",
    ):
        if not positions:
            raise TopologyError("topology needs at least one node")
        if any(node_id < 0 for node_id in positions):
            raise TopologyError("node ids must be >= 0")
        self._positions = {
            node_id: (float(x), float(y))
            for node_id, (x, y) in sorted(positions.items())
        }
        self._name = name

    @property
    def name(self) -> str:
        """Label of this topology."""
        return self._name

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Sorted node ids."""
        return tuple(self._positions)

    @property
    def positions(self) -> dict[int, tuple[float, float]]:
        """Copy of the position map."""
        return dict(self._positions)

    def position(self, node_id: int) -> tuple[float, float]:
        """Position of one node."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in metres."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the deployment."""
        xs = [x for x, _ in self._positions.values()]
        ys = [y for _, y in self._positions.values()]
        return min(xs), min(ys), max(xs), max(ys)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def __repr__(self) -> str:
        return f"Topology({self._name!r}, {len(self)} nodes)"


def bfs_hops(adjacency: Mapping[int, Sequence[int]], source: int) -> dict[int, int]:
    """Hop distance from ``source`` to every reachable node (BFS).

    Unreachable nodes are absent from the result.
    """
    if source not in adjacency:
        raise TopologyError(f"unknown source node {source}")
    hops = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in hops:
                hops[neighbor] = hops[node] + 1
                queue.append(neighbor)
    return hops


def eccentricities(adjacency: Mapping[int, Sequence[int]]) -> dict[int, int]:
    """Eccentricity (max hop distance to any node) of every node.

    Raises :class:`TopologyError` if the graph is disconnected, because an
    eccentricity is undefined there and every caller in this library needs
    full connectivity anyway.
    """
    result: dict[int, int] = {}
    for node in adjacency:
        hops = bfs_hops(adjacency, node)
        if len(hops) != len(adjacency):
            missing = sorted(set(adjacency) - set(hops))
            raise TopologyError(
                f"graph disconnected: {missing} unreachable from {node}"
            )
        result[node] = max(hops.values())
    return result


def diameter(adjacency: Mapping[int, Sequence[int]]) -> int:
    """Network diameter in hops (max eccentricity)."""
    return max(eccentricities(adjacency).values())


def is_connected(adjacency: Mapping[int, Sequence[int]]) -> bool:
    """Whether every node reaches every other over the adjacency."""
    if not adjacency:
        return True
    first = next(iter(adjacency))
    return len(bfs_hops(adjacency, first)) == len(adjacency)


def connected_subset(
    adjacency: Mapping[int, Sequence[int]],
    size: int,
    root: int | None = None,
) -> list[int]:
    """A connected ``size``-node subset grown breadth-first from ``root``.

    Used by the Fig-1 sweep to carve sub-testbeds of 3..n nodes out of a
    deployment: BFS order keeps the subset connected (so the protocol can
    actually run on it) and contiguous (so it looks like a plausible
    smaller deployment rather than a scattering of islands).
    """
    if size < 1:
        raise TopologyError(f"subset size must be >= 1, got {size}")
    if size > len(adjacency):
        raise TopologyError(
            f"subset of {size} requested from a {len(adjacency)}-node graph"
        )
    if root is None:
        root = min(adjacency)
    order: list[int] = []
    seen = {root}
    queue: deque[int] = deque([root])
    while queue and len(order) < size:
        node = queue.popleft()
        order.append(node)
        for neighbor in sorted(adjacency[node]):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    if len(order) < size:
        raise TopologyError(
            f"graph component of {root} has only {len(order)} nodes; "
            f"cannot carve a subset of {size}"
        )
    return sorted(order)


def subset_adjacency(
    adjacency: Mapping[int, Sequence[int]], keep: Iterable[int]
) -> dict[int, list[int]]:
    """Induced sub-adjacency on ``keep`` (models failed nodes dropping out)."""
    keep_set = set(keep)
    unknown = keep_set - set(adjacency)
    if unknown:
        raise TopologyError(f"unknown nodes in subset: {sorted(unknown)}")
    return {
        node: [n for n in neighbors if n in keep_set]
        for node, neighbors in adjacency.items()
        if node in keep_set
    }
