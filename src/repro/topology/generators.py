"""Deterministic topology generators.

Used by unit tests (small controlled layouts) and by the scaling
ablations.  All randomness comes from an explicit seed so any topology a
test complains about can be reproduced exactly.
"""

from __future__ import annotations

import math
import random

from repro.errors import TopologyError
from repro.topology.graph import Topology


def line(num_nodes: int, spacing_m: float = 10.0) -> Topology:
    """Nodes on a line — the canonical multi-hop worst case.

    Hop distance between ends is predictable, which makes it the topology
    of choice for flood-latency unit tests.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    if spacing_m <= 0:
        raise TopologyError(f"spacing must be > 0, got {spacing_m}")
    return Topology(
        {i: (i * spacing_m, 0.0) for i in range(num_nodes)},
        name=f"line-{num_nodes}",
    )


def grid(
    columns: int,
    rows: int,
    spacing_m: float = 10.0,
    jitter_m: float = 0.0,
    seed: int = 0,
) -> Topology:
    """Rectangular grid with optional position jitter.

    Jitter breaks the pathological symmetry of a perfect grid (equal
    distances produce correlated shadowing draws) while keeping the hop
    structure predictable.
    """
    if columns < 1 or rows < 1:
        raise TopologyError(f"grid must be >= 1x1, got {columns}x{rows}")
    if spacing_m <= 0:
        raise TopologyError(f"spacing must be > 0, got {spacing_m}")
    if jitter_m < 0:
        raise TopologyError(f"jitter must be >= 0, got {jitter_m}")
    rng = random.Random(seed)
    positions = {}
    for row in range(rows):
        for column in range(columns):
            node_id = row * columns + column
            x = column * spacing_m + rng.uniform(-jitter_m, jitter_m)
            y = row * spacing_m + rng.uniform(-jitter_m, jitter_m)
            positions[node_id] = (x, y)
    return Topology(positions, name=f"grid-{columns}x{rows}")


def random_geometric(
    num_nodes: int,
    width_m: float,
    height_m: float,
    seed: int = 0,
    min_separation_m: float = 1.0,
    max_attempts: int = 10_000,
) -> Topology:
    """Uniform random placement with a minimum pairwise separation.

    The separation constraint models the physical reality that two motes
    are never stacked on top of each other, and keeps the channel model
    inside its validity region (>= 1 m).
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    if width_m <= 0 or height_m <= 0:
        raise TopologyError("area dimensions must be > 0")
    if min_separation_m < 0:
        raise TopologyError("min_separation must be >= 0")
    rng = random.Random(seed)
    positions: dict[int, tuple[float, float]] = {}
    attempts = 0
    while len(positions) < num_nodes:
        attempts += 1
        if attempts > max_attempts:
            raise TopologyError(
                f"could not place {num_nodes} nodes with separation "
                f"{min_separation_m} m in {width_m}x{height_m} m "
                f"after {max_attempts} attempts"
            )
        candidate = (rng.uniform(0, width_m), rng.uniform(0, height_m))
        if all(
            math.hypot(candidate[0] - x, candidate[1] - y) >= min_separation_m
            for x, y in positions.values()
        ):
            positions[len(positions)] = candidate
    return Topology(positions, name=f"rgg-{num_nodes}-seed{seed}")
