"""CBC-MAC message authentication.

Sharing-phase packets carry a short authentication tag so a receiver can
reject sub-slots corrupted in flight (or spoofed by a non-colluding
outsider).  Classic CBC-MAC is insecure for variable-length messages, so
we prepend the message length to the first block (the standard
length-prepending fix), which is sound for the fixed-format packets this
library exchanges.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.crypto.modes import pad_pkcs7
from repro.errors import AuthenticationError, CryptoError

#: Default truncated tag length carried in packets (bytes).
DEFAULT_TAG_LENGTH = 4


def cbc_mac(cipher: AES128, message: bytes, tag_length: int = DEFAULT_TAG_LENGTH) -> bytes:
    """Length-prepended CBC-MAC, truncated to ``tag_length`` bytes.

    Only the final CBC block survives into the tag, so the chain is
    computed on 128-bit ints via :attr:`AES128.encrypt_int` — no
    intermediate ciphertext bytes, no per-block XOR helper.  The chained
    value is identical to ``cbc_encrypt(cipher, zero_iv, padded)[-16:]``
    (the modes tests pin the two together).
    """
    if not 1 <= tag_length <= BLOCK_SIZE:
        raise CryptoError(
            f"tag length must be in [1, {BLOCK_SIZE}], got {tag_length}"
        )
    prefixed = len(message).to_bytes(8, "big") + message
    padded = pad_pkcs7(prefixed)
    encrypt_int = cipher.encrypt_int
    data = int.from_bytes(padded, "big")
    chained = 0
    mask = (1 << 128) - 1
    for shift in range(8 * len(padded) - 128, -1, -128):
        chained = encrypt_int((data >> shift & mask) ^ chained)
    return chained.to_bytes(BLOCK_SIZE, "big")[:tag_length]


def verify_mac(
    cipher: AES128,
    message: bytes,
    tag: bytes,
    tag_length: int = DEFAULT_TAG_LENGTH,
) -> None:
    """Verify a CBC-MAC tag; raises :class:`AuthenticationError` on mismatch."""
    expected = cbc_mac(cipher, message, tag_length)
    # Constant-time-ish comparison; timing attacks are out of scope for a
    # simulator but the habit is free.
    if len(tag) != len(expected):
        raise AuthenticationError("MAC length mismatch")
    difference = 0
    for a, b in zip(tag, expected):
        difference |= a ^ b
    if difference:
        raise AuthenticationError("MAC verification failed")
