"""Vectorized AES-128 over packet batches (numpy backend).

A sharing round encrypts and MACs hundreds of independent share packets,
each under its own pairwise key.  Per-block Python AES costs ~10 µs; the
same T-table round function expressed as numpy gathers over ``(N,)``
uint32 lanes costs ~1-2 µs per block once a round's packets are batched,
because the interpreter overhead is paid per *round function*, not per
block.

The kernel evaluates exactly the column equations of
:mod:`repro.crypto.aes` (same tables, same key schedule), so its output
is bit-identical to the scalar implementation — enforced by
``tests/crypto/test_aes_fastpath.py``.  numpy is an optional
acceleration: every caller must guard on :data:`HAVE_NUMPY` and fall
back to the scalar path (the library never *requires* numpy).
"""

from __future__ import annotations

from repro.crypto.aes import _SBOX, _TE0, _TE1, _TE2, _TE3, AES128

try:  # pragma: no cover - import guard
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

if HAVE_NUMPY:
    _T0 = _np.array(_TE0, dtype=_np.uint32)
    _T1 = _np.array(_TE1, dtype=_np.uint32)
    _T2 = _np.array(_TE2, dtype=_np.uint32)
    _T3 = _np.array(_TE3, dtype=_np.uint32)
    _S = _np.array(list(_SBOX), dtype=_np.uint32)

#: Cached per-cipher round-key rows (uint32, length 44), keyed by id().
#: Ciphers are pooled process-wide by the fast path, so ids are stable
#: for the lifetime of the entries; the cache is cleared wholesale when
#: it grows past the bound.
_KEY_ROWS: dict[int, "tuple[AES128, object]"] = {}
_KEY_ROWS_MAX = 8192


def key_rows(ciphers) -> "object":
    """Stack the expanded round keys of ``ciphers`` into an (N, 44) array.

    Every cipher must be a table-mode :class:`AES128` (the fast path
    guarantees this); the row for each cipher is cached so repeated
    rounds over the same pairwise keys only pay a stack, not a rebuild.
    The cache holds a reference to the cipher itself so an id() can never
    be recycled while its row is alive.
    """
    rows = []
    for cipher in ciphers:
        entry = _KEY_ROWS.get(id(cipher))
        if entry is None or entry[0] is not cipher:
            row = _np.array(cipher._enc_words, dtype=_np.uint32)
            if len(_KEY_ROWS) >= _KEY_ROWS_MAX:
                _KEY_ROWS.clear()
            entry = (cipher, row)
            _KEY_ROWS[id(cipher)] = entry
        rows.append(entry[1])
    return _np.stack(rows)


def words_from_ints(values) -> "tuple":
    """Split 128-bit block ints into four big-endian uint32 word arrays."""
    s0 = _np.fromiter((v >> 96 for v in values), dtype=_np.uint32, count=len(values))
    s1 = _np.fromiter(
        ((v >> 64) & 0xFFFFFFFF for v in values), dtype=_np.uint32, count=len(values)
    )
    s2 = _np.fromiter(
        ((v >> 32) & 0xFFFFFFFF for v in values), dtype=_np.uint32, count=len(values)
    )
    s3 = _np.fromiter(
        (v & 0xFFFFFFFF for v in values), dtype=_np.uint32, count=len(values)
    )
    return s0, s1, s2, s3


def ints_from_words(words) -> list[int]:
    """Inverse of :func:`words_from_ints`."""
    s0, s1, s2, s3 = (w.tolist() for w in words)
    return [
        (a << 96) | (b << 64) | (c << 32) | d
        for a, b, c, d in zip(s0, s1, s2, s3)
    ]


def encrypt_words(rk, s0, s1, s2, s3):
    """One AES-128 encryption per lane; state as four uint32 arrays.

    ``rk`` is the (N, 44) round-key matrix from :func:`key_rows` — each
    lane uses its own key.  Returns the four output word arrays.
    """
    s0 = s0 ^ rk[:, 0]
    s1 = s1 ^ rk[:, 1]
    s2 = s2 ^ rk[:, 2]
    s3 = s3 ^ rk[:, 3]
    for round_index in range(1, 10):
        k = 4 * round_index
        u0 = _T0[s0 >> 24] ^ _T1[(s1 >> 16) & 255] ^ _T2[(s2 >> 8) & 255] ^ _T3[s3 & 255] ^ rk[:, k]
        u1 = _T0[s1 >> 24] ^ _T1[(s2 >> 16) & 255] ^ _T2[(s3 >> 8) & 255] ^ _T3[s0 & 255] ^ rk[:, k + 1]
        u2 = _T0[s2 >> 24] ^ _T1[(s3 >> 16) & 255] ^ _T2[(s0 >> 8) & 255] ^ _T3[s1 & 255] ^ rk[:, k + 2]
        u3 = _T0[s3 >> 24] ^ _T1[(s0 >> 16) & 255] ^ _T2[(s1 >> 8) & 255] ^ _T3[s2 & 255] ^ rk[:, k + 3]
        s0, s1, s2, s3 = u0, u1, u2, u3
    u0 = ((_S[s0 >> 24] << 24) | (_S[(s1 >> 16) & 255] << 16) | (_S[(s2 >> 8) & 255] << 8) | _S[s3 & 255]) ^ rk[:, 40]
    u1 = ((_S[s1 >> 24] << 24) | (_S[(s2 >> 16) & 255] << 16) | (_S[(s3 >> 8) & 255] << 8) | _S[s0 & 255]) ^ rk[:, 41]
    u2 = ((_S[s2 >> 24] << 24) | (_S[(s3 >> 16) & 255] << 16) | (_S[(s0 >> 8) & 255] << 8) | _S[s1 & 255]) ^ rk[:, 42]
    u3 = ((_S[s3 >> 24] << 24) | (_S[(s0 >> 16) & 255] << 16) | (_S[(s1 >> 8) & 255] << 8) | _S[s2 & 255]) ^ rk[:, 43]
    return u0, u1, u2, u3


def encrypt_blocks(ciphers, blocks: list[int]) -> list[int]:
    """One single-block encryption per (cipher, block) pair, batched.

    Bit-identical to ``[c.encrypt_int(b) for c, b in zip(ciphers, blocks)]``.
    """
    if not blocks:
        return []
    rk = key_rows(ciphers)
    return ints_from_words(encrypt_words(rk, *words_from_ints(blocks)))


def ctr_keystream(cipher: AES128, counter: int, count: int) -> bytes:
    """``count`` CTR keystream blocks of ``cipher``, lane-vectorized.

    Bit-identical to ``cipher.ctr_blocks(counter, count)`` — the same
    big-endian counter blocks through the same T-table round function —
    with the per-block interpreter cost amortised across all ``count``
    lanes.  This is the bulk-refill kernel behind the DRBG's fast path
    and the batched dealer-fork prefill.
    """
    if count <= 0:
        return b""
    counter &= (1 << 128) - 1
    rk = _np.array(cipher._enc_words, dtype=_np.uint32).reshape(1, 44)
    lanes = _np.arange(count, dtype=_np.uint64)
    base0 = counter >> 96
    base1 = (counter >> 64) & 0xFFFFFFFF
    base2 = (counter >> 32) & 0xFFFFFFFF
    base3 = counter & 0xFFFFFFFF
    # 128-bit increment with carries, vectorized: the low word counts up
    # lane-wise; each overflow ripples one word left.  uint64 intermediate
    # arithmetic keeps the carries exact for any count < 2**32.
    w3 = base3 + lanes
    w2 = base2 + (w3 >> _np.uint64(32))
    w1 = base1 + (w2 >> _np.uint64(32))
    w0 = base0 + (w1 >> _np.uint64(32))
    mask32 = _np.uint64(0xFFFFFFFF)
    s0 = (w0 & mask32).astype(_np.uint32)
    s1 = (w1 & mask32).astype(_np.uint32)
    s2 = (w2 & mask32).astype(_np.uint32)
    s3 = (w3 & mask32).astype(_np.uint32)
    o0, o1, o2, o3 = encrypt_words(rk, s0, s1, s2, s3)
    out = _np.empty((count, 4), dtype=">u4")
    out[:, 0] = o0
    out[:, 1] = o1
    out[:, 2] = o2
    out[:, 3] = o3
    return out.tobytes()


def ctr_keystream_many(ciphers, counters, counts) -> list[bytes]:
    """Per-cipher CTR keystream runs, all lanes in one kernel call.

    ``ciphers[i]`` contributes ``counts[i]`` consecutive blocks starting
    at ``counters[i]``; the return value is one keystream byte string per
    cipher, each bit-identical to ``ciphers[i].ctr_blocks(counters[i],
    counts[i])``.  Batching *across independent keys* is what makes
    per-dealer DRBG forks affordable: a round's worth of short keystream
    runs becomes a single wide batch.
    """
    total = sum(counts)
    if total == 0:
        return [b"" for _ in counts]
    s0 = _np.empty(total, dtype=_np.uint32)
    s1 = _np.empty(total, dtype=_np.uint32)
    s2 = _np.empty(total, dtype=_np.uint32)
    s3 = _np.empty(total, dtype=_np.uint32)
    rk = _np.empty((total, 44), dtype=_np.uint32)
    offset = 0
    mask32 = _np.uint64(0xFFFFFFFF)
    for cipher, counter, count in zip(ciphers, counters, counts):
        if count == 0:
            continue
        end = offset + count
        counter &= (1 << 128) - 1
        # Same vectorized 128-bit carry ripple as ctr_keystream, written
        # into this cipher's lane slice; per-lane Python work would
        # re-add exactly the interpreter overhead this kernel amortises.
        lanes = _np.arange(count, dtype=_np.uint64)
        w3 = (counter & 0xFFFFFFFF) + lanes
        w2 = ((counter >> 32) & 0xFFFFFFFF) + (w3 >> _np.uint64(32))
        w1 = ((counter >> 64) & 0xFFFFFFFF) + (w2 >> _np.uint64(32))
        w0 = (counter >> 96) + (w1 >> _np.uint64(32))
        s0[offset:end] = (w0 & mask32).astype(_np.uint32)
        s1[offset:end] = (w1 & mask32).astype(_np.uint32)
        s2[offset:end] = (w2 & mask32).astype(_np.uint32)
        s3[offset:end] = (w3 & mask32).astype(_np.uint32)
        rk[offset:end] = _np.asarray(cipher._enc_words, dtype=_np.uint32)
        offset = end
    o0, o1, o2, o3 = encrypt_words(rk, s0, s1, s2, s3)
    out = _np.empty((total, 4), dtype=">u4")
    out[:, 0] = o0
    out[:, 1] = o1
    out[:, 2] = o2
    out[:, 3] = o3
    raw = out.tobytes()
    streams = []
    offset = 0
    for count in counts:
        streams.append(raw[offset : offset + 16 * count])
        offset += 16 * count
    return streams


def ctr_cbc_mac_batch(
    enc_ciphers,
    mac_ciphers,
    nonces: list[int],
    data: list[int],
    tag_bytes: int,
    mac_over_input: bool = False,
) -> tuple[list[int], list[bytes]]:
    """Batched share protection: per-lane AES-CTR + length-prepended CBC-MAC.

    For each lane ``i`` the CTR output is ``data ^ E_enc(nonce)`` and the
    tag is the truncated CBC-MAC (zero IV, 8-byte length prefix, PKCS#7
    padding) of ``nonce_bytes + ct_bytes`` under the MAC key — exactly
    what :func:`repro.crypto.modes.ctr_transform` +
    :func:`repro.crypto.mac.cbc_mac` compute packet-by-packet.

    On the sender ``data`` is the plaintext, the CTR output is the
    ciphertext and the MAC covers that output.  On the receiver ``data``
    is the received ciphertext (CTR is an involution, so the output is
    the plaintext) and the MAC must cover the *input* — select that with
    ``mac_over_input=True``.

    Returns (CTR output ints, tag bytes).
    """
    n = len(nonces)
    if n == 0:
        return [], []
    enc_rk = key_rows(enc_ciphers)
    mac_rk = key_rows(mac_ciphers)
    n0, n1, n2, n3 = words_from_ints(nonces)

    # CTR: output = data ^ E_enc(nonce).
    k0, k1, k2, k3 = encrypt_words(enc_rk, n0, n1, n2, n3)
    d0, d1, d2, d3 = words_from_ints(data)
    o0, o1, o2, o3 = d0 ^ k0, d1 ^ k1, d2 ^ k2, d3 ^ k3
    if mac_over_input:
        c0, c1, c2, c3 = d0, d1, d2, d3
    else:
        c0, c1, c2, c3 = o0, o1, o2, o3

    # CBC-MAC over the 40-byte prefixed message, padded to 48 bytes:
    #   block 1 = len(32).to_bytes(8) || nonce[0:8]
    #   block 2 = nonce[8:16]         || ct[0:8]
    #   block 3 = ct[8:16]            || 0x08 * 8   (PKCS#7)
    b1_0 = _np.zeros(n, dtype=_np.uint32)
    b1_1 = _np.full(n, 32, dtype=_np.uint32)
    m0, m1, m2, m3 = encrypt_words(mac_rk, b1_0, b1_1, n0, n1)
    m0, m1, m2, m3 = encrypt_words(mac_rk, m0 ^ n2, m1 ^ n3, m2 ^ c0, m3 ^ c1)
    pad = _np.full(n, 0x08080808, dtype=_np.uint32)
    m0, m1, m2, m3 = encrypt_words(mac_rk, m0 ^ c2, m1 ^ c3, m2 ^ pad, m3 ^ pad)

    outputs = ints_from_words((o0, o1, o2, o3))
    tags = [
        tag_int.to_bytes(16, "big")[:tag_bytes]
        for tag_int in ints_from_words((m0, m1, m2, m3))
    ]
    return outputs, tags
