"""AES-128 block cipher, pure Python, from scratch (FIPS-197).

The paper's sharing phase encrypts each MiniCast sub-slot packet with
AES-128 under a pairwise key.  nRF52840 does this in hardware; we implement
the same algorithm in software.  The implementation favours clarity over
speed — it is table-driven only for the S-boxes, with MixColumns done via
``xtime`` exactly as the standard describes — and is validated against the
FIPS-197 and SP 800-38A known-answer vectors in the test suite.

Security note: this is a *simulation fidelity* component, not hardened
code — no constant-time guarantees are attempted (nor needed here).
"""

from __future__ import annotations

from repro.errors import CryptoError

#: AES block size in bytes.
BLOCK_SIZE = 16
#: AES-128 key size in bytes.
KEY_SIZE = 16

_ROUNDS = 10


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from first principles.

    Each entry is the multiplicative inverse in GF(2^8) followed by the
    affine transformation from FIPS-197 §5.1.1.  Building the table instead
    of pasting 256 magic numbers keeps the implementation auditable.
    """
    # Multiplicative inverses in GF(2^8) with the AES polynomial 0x11B,
    # computed via log/antilog tables over the generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by generator 3 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        result = 0
        for bit in range(8):
            b = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= b << bit
        sbox[value] = result

    inv_sbox = bytearray(256)
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for key expansion (rcon[i] = x^(i-1) in GF(2^8)).
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook, used by InvMixColumns)."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a = _xtime(a)
        b >>= 1
    return product


class AES128:
    """AES-128 with a fixed expanded key schedule.

    >>> cipher = AES128(bytes(range(16)))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    __slots__ = ("_round_keys",)

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise CryptoError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS-197 key expansion: 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (_ROUNDS + 1)):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], word)])
        round_keys = []
        for r in range(_ROUNDS + 1):
            key_bytes: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                key_bytes.extend(w)
            round_keys.append(key_bytes)
        return round_keys

    # State layout: list of 16 ints, column-major as in FIPS-197
    # (state[r + 4*c] is row r, column c) — matching the byte order of the
    # input block laid out column by column.

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r shifts left by r positions.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            total = col[0] ^ col[1] ^ col[2] ^ col[3]
            first = col[0]
            state[4 * c + 0] = col[0] ^ total ^ _xtime(col[0] ^ col[1])
            state[4 * c + 1] = col[1] ^ total ^ _xtime(col[1] ^ col[2])
            state[4 * c + 2] = col[2] ^ total ^ _xtime(col[2] ^ col[3])
            state[4 * c + 3] = col[3] ^ total ^ _xtime(col[3] ^ first)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _mul(a0, 14) ^ _mul(a1, 11) ^ _mul(a2, 13) ^ _mul(a3, 9)
            state[4 * c + 1] = _mul(a0, 9) ^ _mul(a1, 14) ^ _mul(a2, 11) ^ _mul(a3, 13)
            state[4 * c + 2] = _mul(a0, 13) ^ _mul(a1, 9) ^ _mul(a2, 14) ^ _mul(a3, 11)
            state[4 * c + 3] = _mul(a0, 11) ^ _mul(a1, 13) ^ _mul(a2, 9) ^ _mul(a3, 14)

    def _add_round_key(self, state: list[int], round_index: int) -> None:
        round_key = self._round_keys[round_index]
        for i in range(16):
            state[i] ^= round_key[i]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, 0)
        for round_index in range(1, _ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, round_index)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, _ROUNDS)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, _ROUNDS)
        for round_index in range(_ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, round_index)
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, 0)
        return bytes(state)
