"""AES-128 block cipher, pure Python, from scratch (FIPS-197).

The paper's sharing phase encrypts each MiniCast sub-slot packet with
AES-128 under a pairwise key.  nRF52840 does this in hardware; we implement
the same algorithm in software.  Two implementations live side by side:

* the **reference path** — clarity over speed, table-driven only for the
  S-boxes, with MixColumns done via ``xtime`` exactly as the standard
  describes.  This is the auditable oracle the test suite validates
  against the FIPS-197 and SP 800-38A known-answer vectors.
* the **fast path** (default, see :mod:`repro.fastpath`) — the classic
  T-table formulation: SubBytes, ShiftRows and MixColumns for one state
  column collapse into four 256-entry word-table lookups.  The tables are
  derived from the reference S-box once at import time (the import lock
  makes that construction thread-safe) and the implementation is
  self-checked against a FIPS-197 vector before the module finishes
  importing, so a table-construction bug can never produce silently wrong
  ciphertext.

Security note: this is a *simulation fidelity* component, not hardened
code — no constant-time guarantees are attempted (nor needed here).
"""

from __future__ import annotations

from repro import fastpath
from repro.errors import CryptoError

#: AES block size in bytes.
BLOCK_SIZE = 16
#: AES-128 key size in bytes.
KEY_SIZE = 16

_ROUNDS = 10


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from first principles.

    Each entry is the multiplicative inverse in GF(2^8) followed by the
    affine transformation from FIPS-197 §5.1.1.  Building the table instead
    of pasting 256 magic numbers keeps the implementation auditable.
    """
    # Multiplicative inverses in GF(2^8) with the AES polynomial 0x11B,
    # computed via log/antilog tables over the generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by generator 3 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        result = 0
        for bit in range(8):
            b = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= b << bit
        sbox[value] = result

    inv_sbox = bytearray(256)
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for key expansion (rcon[i] = x^(i-1) in GF(2^8)).
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook, used by InvMixColumns)."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a = _xtime(a)
        b >>= 1
    return product


# -- T-tables (fast path) ------------------------------------------------------
#
# One encryption table word per S-box output s = S[x]:
#
#   Te0[x] = [2s, s, s, 3s]   (big-endian column word)
#
# is the MixColumns contribution of a state byte sitting in row 0 of a
# column; rows 1..3 are byte rotations of the same word.  The decryption
# tables do the same for InvSubBytes + InvMixColumns:
#
#   Td0[x] = [14·is, 9·is, 13·is, 11·is]   with is = InvS[x]
#
# Built once at import (the interpreter's import lock serialises this, so
# no explicit lock is needed even under threaded importers).


def _ror8(word: int) -> int:
    """Rotate a 32-bit word right by one byte."""
    return ((word >> 8) | (word << 24)) & 0xFFFFFFFF


def _build_encrypt_tables() -> tuple[list[int], ...]:
    te0 = []
    for x in range(256):
        s = _SBOX[x]
        te0.append((_mul(s, 2) << 24) | (s << 16) | (s << 8) | _mul(s, 3))
    te1 = [_ror8(w) for w in te0]
    te2 = [_ror8(w) for w in te1]
    te3 = [_ror8(w) for w in te2]
    return te0, te1, te2, te3


def _build_decrypt_tables() -> tuple[list[int], ...]:
    td0 = []
    for x in range(256):
        s = _INV_SBOX[x]
        td0.append(
            (_mul(s, 14) << 24) | (_mul(s, 9) << 16) | (_mul(s, 13) << 8) | _mul(s, 11)
        )
    td1 = [_ror8(w) for w in td0]
    td2 = [_ror8(w) for w in td1]
    td3 = [_ror8(w) for w in td2]
    return td0, td1, td2, td3


_TE0, _TE1, _TE2, _TE3 = _build_encrypt_tables()
_TD0, _TD1, _TD2, _TD3 = _build_decrypt_tables()


# -- generated per-key encryptor -----------------------------------------------
#
# The hottest primitive is single-block encryption, so the 9 identical
# rounds are unrolled into a generated closure whose 44 round-key words
# live in closure cells (LOAD_DEREF is as cheap as a local), eliminating
# the round loop, the key-schedule indexing and all per-call attribute
# lookups.  The four 256-entry T-tables are kept deliberately small — a
# 16-bit "paired table" variant benches faster in a tight loop but loses
# in real campaigns, where its multi-megabyte working set falls out of
# cache between calls.  The generator emits the same column equations the
# readable ``_encrypt_block_reference`` implements, and the import-time
# self-check plus the FIPS-197 vectors in the test suite pin the two
# together.


def _generate_encryptor_factory():
    """Compile the unrolled (128-bit int → 128-bit int) block encryptor."""
    lines = ["def _make_int_encryptor(rk, T0, T1, T2, T3, S):"]
    for i in range(44):
        lines.append(f"    k{i} = rk[{i}]")
    lines.append("    def encrypt_int(v):")
    lines.append(
        "        s0 = (v >> 96) ^ k0; s1 = ((v >> 64) & 4294967295) ^ k1; "
        "s2 = ((v >> 32) & 4294967295) ^ k2; s3 = (v & 4294967295) ^ k3"
    )
    for round_index in range(1, _ROUNDS):
        k = 4 * round_index
        for c in range(4):
            a, b, cc, d = c, (c + 1) % 4, (c + 2) % 4, (c + 3) % 4
            lines.append(
                f"        u{c} = T0[s{a} >> 24] ^ T1[(s{b} >> 16) & 255]"
                f" ^ T2[(s{cc} >> 8) & 255] ^ T3[s{d} & 255] ^ k{k + c}"
            )
        lines.append("        s0 = u0; s1 = u1; s2 = u2; s3 = u3")
    for c in range(4):
        a, b, cc, d = c, (c + 1) % 4, (c + 2) % 4, (c + 3) % 4
        lines.append(
            f"        u{c} = ((S[s{a} >> 24] << 24) | (S[(s{b} >> 16) & 255] << 16)"
            f" | (S[(s{cc} >> 8) & 255] << 8) | S[s{d} & 255]) ^ k{40 + c}"
        )
    lines.append("        return (u0 << 96) | (u1 << 64) | (u2 << 32) | u3")
    lines.append("    return encrypt_int")
    namespace: dict = {}
    exec(compile("\n".join(lines), "<aes-codegen>", "exec"), namespace)
    return namespace["_make_int_encryptor"]


_make_int_encryptor = _generate_encryptor_factory()


def _inv_mix_word(word: int) -> int:
    """InvMixColumns applied to one big-endian column word (key setup)."""
    a0 = word >> 24
    a1 = (word >> 16) & 0xFF
    a2 = (word >> 8) & 0xFF
    a3 = word & 0xFF
    return (
        ((_mul(a0, 14) ^ _mul(a1, 11) ^ _mul(a2, 13) ^ _mul(a3, 9)) << 24)
        | ((_mul(a0, 9) ^ _mul(a1, 14) ^ _mul(a2, 11) ^ _mul(a3, 13)) << 16)
        | ((_mul(a0, 13) ^ _mul(a1, 9) ^ _mul(a2, 14) ^ _mul(a3, 11)) << 8)
        | (_mul(a0, 11) ^ _mul(a1, 13) ^ _mul(a2, 9) ^ _mul(a3, 14))
    )


def _expand_key_words(key: bytes) -> list[int]:
    """FIPS-197 key expansion as 44 big-endian 32-bit words (fast path).

    Processed four words per round: only the first word of each round
    applies RotWord/SubWord/Rcon, the other three are chained xors.
    """
    sbox = _SBOX
    w0, w1, w2, w3 = (int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4))
    words = [w0, w1, w2, w3]
    for rcon in _RCON:
        temp = ((w3 << 8) | (w3 >> 24)) & 0xFFFFFFFF  # RotWord
        temp = (  # SubWord
            (sbox[temp >> 24] << 24)
            | (sbox[(temp >> 16) & 0xFF] << 16)
            | (sbox[(temp >> 8) & 0xFF] << 8)
            | sbox[temp & 0xFF]
        ) ^ (rcon << 24)
        w0 ^= temp
        w1 ^= w0
        w2 ^= w1
        w3 ^= w2
        words += (w0, w1, w2, w3)
    return words


class AES128:
    """AES-128 with a fixed expanded key schedule.

    ``use_tables`` selects the T-table fast path explicitly; by default it
    follows the global :mod:`repro.fastpath` flag at construction time.
    Both paths produce bit-identical output.

    >>> cipher = AES128(bytes(range(16)))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    __slots__ = (
        "_round_keys",
        "_enc_words",
        "_dec_words",
        "_use_tables",
        "encrypt_int",
    )

    def __init__(self, key: bytes, use_tables: bool | None = None):
        if len(key) != KEY_SIZE:
            raise CryptoError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
        if use_tables is None:
            use_tables = fastpath.enabled()
        self._use_tables = use_tables
        if use_tables:
            self._enc_words = _expand_key_words(key)
            self._dec_words: list[int] | None = None
            self._round_keys: list[list[int]] | None = None
            #: 128-bit-int → 128-bit-int single-block encryption, the
            #: primitive behind every fast bulk path (CTR, CBC-MAC).
            self.encrypt_int = _make_int_encryptor(
                self._enc_words, _TE0, _TE1, _TE2, _TE3, _SBOX
            )
        else:
            self._round_keys = self._expand_key(key)
            self._enc_words = None
            self._dec_words = None
            self.encrypt_int = self._encrypt_int_reference

    # Cipher objects are persisted by the commissioning disk cache (the
    # pairwise key *schedules* are the artifact worth keeping), but the
    # generated ``encrypt_int`` closure cannot be pickled — so state is
    # the expanded schedule words and the closure is regenerated on load.
    def __getstate__(self) -> dict:
        return {
            "use_tables": self._use_tables,
            "enc_words": self._enc_words,
            "dec_words": self._dec_words,
            "round_keys": self._round_keys,
        }

    def __setstate__(self, state: dict) -> None:
        self._use_tables = state["use_tables"]
        self._enc_words = state["enc_words"]
        self._dec_words = state["dec_words"]
        self._round_keys = state["round_keys"]
        if self._use_tables:
            self.encrypt_int = _make_int_encryptor(
                self._enc_words, _TE0, _TE1, _TE2, _TE3, _SBOX
            )
        else:
            self.encrypt_int = self._encrypt_int_reference

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS-197 key expansion: 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (_ROUNDS + 1)):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], word)])
        round_keys = []
        for r in range(_ROUNDS + 1):
            key_bytes: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                key_bytes.extend(w)
            round_keys.append(key_bytes)
        return round_keys

    # State layout: list of 16 ints, column-major as in FIPS-197
    # (state[r + 4*c] is row r, column c) — matching the byte order of the
    # input block laid out column by column.

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r shifts left by r positions.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            total = col[0] ^ col[1] ^ col[2] ^ col[3]
            first = col[0]
            state[4 * c + 0] = col[0] ^ total ^ _xtime(col[0] ^ col[1])
            state[4 * c + 1] = col[1] ^ total ^ _xtime(col[1] ^ col[2])
            state[4 * c + 2] = col[2] ^ total ^ _xtime(col[2] ^ col[3])
            state[4 * c + 3] = col[3] ^ total ^ _xtime(col[3] ^ first)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _mul(a0, 14) ^ _mul(a1, 11) ^ _mul(a2, 13) ^ _mul(a3, 9)
            state[4 * c + 1] = _mul(a0, 9) ^ _mul(a1, 14) ^ _mul(a2, 11) ^ _mul(a3, 13)
            state[4 * c + 2] = _mul(a0, 13) ^ _mul(a1, 9) ^ _mul(a2, 14) ^ _mul(a3, 11)
            state[4 * c + 3] = _mul(a0, 11) ^ _mul(a1, 13) ^ _mul(a2, 9) ^ _mul(a3, 14)

    def _add_round_key(self, state: list[int], round_index: int) -> None:
        round_key = self._round_keys[round_index]
        for i in range(16):
            state[i] ^= round_key[i]

    # -- reference data path ---------------------------------------------------

    def _encrypt_block_reference(self, block: bytes) -> bytes:
        state = list(block)
        self._add_round_key(state, 0)
        for round_index in range(1, _ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, round_index)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, _ROUNDS)
        return bytes(state)

    def _decrypt_block_reference(self, block: bytes) -> bytes:
        state = list(block)
        self._add_round_key(state, _ROUNDS)
        for round_index in range(_ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, round_index)
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, 0)
        return bytes(state)

    # -- T-table data path -----------------------------------------------------

    def _encrypt_int_reference(self, value: int) -> int:
        """128-bit-int encryption through the reference byte path."""
        return int.from_bytes(
            self._encrypt_block_reference(value.to_bytes(16, "big")), "big"
        )

    def _decrypt_key_words(self) -> list[int]:
        """The equivalent-inverse-cipher key schedule (FIPS-197 §5.3.5).

        Built lazily on first decryption; a concurrent double-build is a
        benign race (both threads compute the same words and the attribute
        store is atomic).
        """
        dec = self._dec_words
        if dec is None:
            rk = self._enc_words
            dec = list(rk[40:44])
            for r in range(1, _ROUNDS):
                base = 4 * (_ROUNDS - r)
                dec.extend(_inv_mix_word(rk[base + j]) for j in range(4))
            dec.extend(rk[0:4])
            self._dec_words = dec
        return dec

    def _decrypt_block_tables(self, block: bytes) -> bytes:
        rk = self._decrypt_key_words()
        t0_, t1_, t2_, t3_ = _TD0, _TD1, _TD2, _TD3
        value = int.from_bytes(block, "big")
        s0 = (value >> 96) ^ rk[0]
        s1 = ((value >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((value >> 32) & 0xFFFFFFFF) ^ rk[2]
        s3 = (value & 0xFFFFFFFF) ^ rk[3]
        i = 4
        for _ in range(_ROUNDS - 1):
            u0 = t0_[s0 >> 24] ^ t1_[(s3 >> 16) & 255] ^ t2_[(s2 >> 8) & 255] ^ t3_[s1 & 255] ^ rk[i]
            u1 = t0_[s1 >> 24] ^ t1_[(s0 >> 16) & 255] ^ t2_[(s3 >> 8) & 255] ^ t3_[s2 & 255] ^ rk[i + 1]
            u2 = t0_[s2 >> 24] ^ t1_[(s1 >> 16) & 255] ^ t2_[(s0 >> 8) & 255] ^ t3_[s3 & 255] ^ rk[i + 2]
            u3 = t0_[s3 >> 24] ^ t1_[(s2 >> 16) & 255] ^ t2_[(s1 >> 8) & 255] ^ t3_[s0 & 255] ^ rk[i + 3]
            s0, s1, s2, s3 = u0, u1, u2, u3
            i += 4
        sbox = _INV_SBOX
        u0 = ((sbox[s0 >> 24] << 24) | (sbox[(s3 >> 16) & 255] << 16) | (sbox[(s2 >> 8) & 255] << 8) | sbox[s1 & 255]) ^ rk[40]
        u1 = ((sbox[s1 >> 24] << 24) | (sbox[(s0 >> 16) & 255] << 16) | (sbox[(s3 >> 8) & 255] << 8) | sbox[s2 & 255]) ^ rk[41]
        u2 = ((sbox[s2 >> 24] << 24) | (sbox[(s1 >> 16) & 255] << 16) | (sbox[(s0 >> 8) & 255] << 8) | sbox[s3 & 255]) ^ rk[42]
        u3 = ((sbox[s3 >> 24] << 24) | (sbox[(s2 >> 16) & 255] << 16) | (sbox[(s1 >> 8) & 255] << 8) | sbox[s0 & 255]) ^ rk[43]
        return ((u0 << 96) | (u1 << 64) | (u2 << 32) | u3).to_bytes(16, "big")

    # -- public interface ------------------------------------------------------

    @property
    def uses_tables(self) -> bool:
        """Whether this instance runs the T-table fast path."""
        return self._use_tables

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        if self._use_tables:
            return self.encrypt_int(int.from_bytes(block, "big")).to_bytes(16, "big")
        return self._encrypt_block_reference(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        if self._use_tables:
            return self._decrypt_block_tables(block)
        return self._decrypt_block_reference(block)

    def ctr_blocks(self, counter: int, count: int) -> bytes:
        """Keystream for ``count`` consecutive CTR counter blocks.

        ``counter`` is the 128-bit big-endian integer value of the first
        counter block; successive blocks increment it modulo 2^128.  This
        is the batched primitive behind :func:`repro.crypto.modes.ctr_keystream`
        and the DRBG — one call amortises the per-block dispatch overhead
        over a whole keystream run.
        """
        if count < 0:
            raise CryptoError(f"block count must be >= 0, got {count}")
        mask128 = (1 << 128) - 1
        counter &= mask128
        out = bytearray()
        if self._use_tables:
            encrypt_int = self.encrypt_int
            for _ in range(count):
                out += encrypt_int(counter).to_bytes(16, "big")
                counter = (counter + 1) & mask128
        else:
            for _ in range(count):
                out += self._encrypt_block_reference(counter.to_bytes(16, "big"))
                counter = (counter + 1) & mask128
        return bytes(out)


def _self_check() -> None:
    """Import-time known-answer check of the T-table path (FIPS-197 C.1)."""
    key = bytes(range(16))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    cipher = AES128(key, use_tables=True)
    if cipher.encrypt_block(plaintext) != expected:
        raise CryptoError("AES T-table encryption failed its FIPS-197 self-check")
    if cipher.decrypt_block(expected) != plaintext:
        raise CryptoError("AES T-table decryption failed its FIPS-197 self-check")


_self_check()
