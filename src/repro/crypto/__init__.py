"""Cryptographic substrate, implemented from scratch.

The paper encrypts every sharing-phase packet with AES-128 using pairwise
keys assumed to be installed during bootstrapping.  This package provides
everything that requires:

* :mod:`repro.crypto.aes` — the AES-128 block cipher (FIPS-197), pure
  Python, both directions.
* :mod:`repro.crypto.modes` — CTR mode (the packet cipher) plus a minimal
  CBC mode used by the MAC.
* :mod:`repro.crypto.mac` — CBC-MAC with length prepending for
  fixed-format packet authentication.
* :mod:`repro.crypto.prng` — a deterministic AES-CTR DRBG used wherever
  the *protocol* needs randomness (polynomial coefficients, nonces) so
  simulations are reproducible from a seed.
* :mod:`repro.crypto.keystore` — pairwise key pre-distribution, modelling
  the paper's "key ... assumed to be already shared ... during the
  bootstrapping phase".
"""

from repro.crypto.aes import AES128, BLOCK_SIZE, KEY_SIZE
from repro.crypto.modes import ctr_keystream, ctr_transform, cbc_encrypt, cbc_decrypt
from repro.crypto.mac import cbc_mac, verify_mac
from repro.crypto.prng import AesCtrDrbg
from repro.crypto.keystore import PairwiseKeyStore, derive_pairwise_key

__all__ = [
    "AES128",
    "BLOCK_SIZE",
    "KEY_SIZE",
    "ctr_keystream",
    "ctr_transform",
    "cbc_encrypt",
    "cbc_decrypt",
    "cbc_mac",
    "verify_mac",
    "AesCtrDrbg",
    "PairwiseKeyStore",
    "derive_pairwise_key",
]
