"""Block-cipher modes of operation on top of :class:`AES128`.

CTR is the packet cipher: the sharing-phase sub-slot payload is a single
field element, and CTR turns AES into a stream cipher so payloads need no
padding and ciphertext length equals plaintext length (which keeps the
802.15.4 air-time model honest).  CBC exists to support CBC-MAC.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.errors import CryptoError


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) == len(b):
        # One big-int XOR beats a per-byte generator for the block-sized
        # operands every caller in this library uses.
        return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
            len(a), "big"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def ctr_keystream(cipher: AES128, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes for a 16-byte initial counter.

    The full 16-byte ``nonce`` is the initial counter block; successive
    blocks increment it as a big-endian 128-bit integer (wrapping), per
    SP 800-38A.  The blocks are produced in one batched
    :meth:`AES128.ctr_blocks` call.
    """
    if len(nonce) != BLOCK_SIZE:
        raise CryptoError(f"CTR nonce must be {BLOCK_SIZE} bytes, got {len(nonce)}")
    if length < 0:
        raise CryptoError(f"keystream length must be >= 0, got {length}")
    blocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    stream = cipher.ctr_blocks(int.from_bytes(nonce, "big"), blocks)
    return stream[:length]


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operation is its own
    inverse)."""
    if len(data) == BLOCK_SIZE and len(nonce) == BLOCK_SIZE:
        # Single-block payloads (every share packet) skip the keystream
        # buffer entirely: one int encryption, one int XOR.
        keystream = cipher.encrypt_int(int.from_bytes(nonce, "big"))
        return (int.from_bytes(data, "big") ^ keystream).to_bytes(
            BLOCK_SIZE, "big"
        )
    return _xor_bytes(data, ctr_keystream(cipher, nonce, len(data)))


def cbc_encrypt(cipher: AES128, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt a block-aligned plaintext."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"CBC IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if len(plaintext) % BLOCK_SIZE != 0:
        raise CryptoError(
            f"CBC plaintext must be a multiple of {BLOCK_SIZE} bytes, "
            f"got {len(plaintext)}"
        )
    previous = iv
    ciphertext = bytearray()
    for offset in range(0, len(plaintext), BLOCK_SIZE):
        block = _xor_bytes(plaintext[offset : offset + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        ciphertext.extend(previous)
    return bytes(ciphertext)


def cbc_decrypt(cipher: AES128, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt a block-aligned ciphertext."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"CBC IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise CryptoError(
            f"CBC ciphertext must be a multiple of {BLOCK_SIZE} bytes, "
            f"got {len(ciphertext)}"
        )
    previous = iv
    plaintext = bytearray()
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        plaintext.extend(_xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return bytes(plaintext)


def pad_pkcs7(data: bytes) -> bytes:
    """PKCS#7-pad ``data`` up to the next block boundary."""
    pad_length = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([pad_length]) * pad_length


def unpad_pkcs7(data: bytes) -> bytes:
    """Strip PKCS#7 padding, validating every pad byte."""
    if not data or len(data) % BLOCK_SIZE != 0:
        raise CryptoError("invalid PKCS#7 input length")
    pad_length = data[-1]
    if not 1 <= pad_length <= BLOCK_SIZE:
        raise CryptoError("invalid PKCS#7 pad length")
    if data[-pad_length:] != bytes([pad_length]) * pad_length:
        raise CryptoError("corrupt PKCS#7 padding")
    return data[:-pad_length]
