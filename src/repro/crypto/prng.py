"""Deterministic AES-CTR DRBG.

Everywhere the *protocol* needs randomness — Shamir polynomial
coefficients, per-packet nonces — we draw from this DRBG rather than the
simulation RNG.  Two reasons:

* reproducibility: a whole experiment is replayable from ``(seed, node)``;
* separation: channel randomness (fading, losses) and cryptographic
  randomness never share a stream, so changing the PHY model does not
  change which polynomials a node deals.

The generator exposes the subset of the ``random.Random`` interface the
library uses (``randrange``, ``getrandbits``, ``random_bytes``) so it can
be passed anywhere a stdlib RNG is accepted.

Performance: the keystream is produced in multi-block batches through
:meth:`repro.crypto.aes.AES128.ctr_blocks` (one call per refill instead of
one ``encrypt_block`` call per 16 bytes) and consumed through a moving
offset instead of re-slicing the buffer.  Batching only changes *when*
keystream blocks are computed, never their values, so the output stream is
bit-identical to the seed implementation; the reference path
(:mod:`repro.fastpath` disabled) refills one block at a time exactly as
the original code did.
"""

from __future__ import annotations

import hashlib

from repro import fastpath
from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.errors import CryptoError

#: Process-wide cipher pool (fast path): protocol randomness is seeded
#: deterministically, so identical campaigns re-derive identical DRBG
#: keys — pooling the expanded schedules makes repeat campaigns skip the
#: per-key setup entirely.  AES128 objects are immutable after
#: construction, so sharing is safe.
_CIPHER_POOL: dict[bytes, AES128] = {}
_CIPHER_POOL_MAX = 8192

#: Maximum keystream blocks generated per refill on the fast path.
#: Prefetching ahead of demand is free: CTR output depends only on the
#: counter, so the stream a consumer sees is identical regardless of batch
#: size.  Refills grow geometrically from one block up to this cap, so a
#: short-lived DRBG (e.g. a per-dealer fork that draws a handful of
#: coefficients) never wastes a big batch while long-lived streams
#: amortise the per-call overhead fully.
_FAST_REFILL_BLOCKS_MAX = 32

#: Minimum refill size (blocks) worth routing through the numpy lane
#: kernel.  Below this the per-call numpy dispatch overhead exceeds the
#: scalar T-table loop; above it the lane kernel's ~an-order-of-magnitude
#: per-block advantage dominates.  Bulk consumers (``random_bytes`` of
#: whole buffers, the maskbatch sampler) blow straight past it.
_LANE_REFILL_BLOCKS_MIN = 16


def _lane_keystream_available() -> bool:
    """Whether the vectorized CTR refill kernel may be used."""
    if not fastpath.vector_enabled():
        return False
    from repro.crypto import aesbatch

    return aesbatch.HAVE_NUMPY


class AesCtrDrbg:
    """Deterministic random bit generator running AES-128 in counter mode.

    The 16-byte key is derived from an arbitrary seed via SHA-256 (first
    16 bytes); the counter starts at zero.  Output blocks are buffered so
    small requests don't waste cipher calls.

    >>> drbg = AesCtrDrbg.from_seed(b"experiment-42")
    >>> value = drbg.randrange(1000)
    >>> 0 <= value < 1000
    True
    """

    __slots__ = (
        "_cipher",
        "_key",
        "_counter",
        "_buffer",
        "_offset",
        "_refill_blocks",
        "_batching",
    )

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise CryptoError(f"DRBG key must be 16 bytes, got {len(key)}")
        self._key = key
        if fastpath.enabled():
            cipher = _CIPHER_POOL.get(key)
            if cipher is None:
                cipher = AES128(key)
                if len(_CIPHER_POOL) >= _CIPHER_POOL_MAX:
                    _CIPHER_POOL.clear()
                _CIPHER_POOL[key] = cipher
            self._cipher = cipher
            self._batching = True
        else:
            self._cipher = AES128(key)
            self._batching = False
        self._counter = 0
        self._buffer = b""
        self._offset = 0
        self._refill_blocks = 1

    @classmethod
    def from_seed(cls, seed: bytes | str | int) -> "AesCtrDrbg":
        """Build a DRBG from any hashable seed material."""
        if isinstance(seed, int):
            seed = seed.to_bytes((max(seed.bit_length(), 1) + 7) // 8, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        digest = hashlib.sha256(seed).digest()
        return cls(digest[:16])

    @property
    def key_bytes(self) -> bytes:
        """The 16-byte AES key this stream runs under.

        A DRBG's entire output is a pure function of this key, so it
        doubles as a replay-cache identity for values derived from the
        stream (see the dealt-share pool in :mod:`repro.core.protocol`).
        """
        return self._key

    def _generate_blocks(self, count: int) -> bytes:
        """``count`` keystream blocks from the current counter position.

        Large batches go through the :mod:`repro.crypto.aesbatch` lane
        kernel when the vector backend is on; the bytes are bit-identical
        to the scalar ``ctr_blocks`` either way, so the routing decision
        never shows in the output stream.
        """
        if count >= _LANE_REFILL_BLOCKS_MIN and self._batching:
            if _lane_keystream_available():
                from repro.crypto import aesbatch

                fresh = aesbatch.ctr_keystream(self._cipher, self._counter, count)
                self._counter += count
                return fresh
        fresh = self._cipher.ctr_blocks(self._counter, count)
        self._counter += count
        return fresh

    def prefill(self, length: int) -> None:
        """Ensure at least ``length`` bytes of keystream are buffered.

        Purely a scheduling hint: the stream a consumer sees is identical
        with or without the call, but one big refill through the lane
        kernel is far cheaper than the geometric ramp of small scalar
        refills it replaces.
        """
        available = len(self._buffer) - self._offset
        if available >= length:
            return
        blocks = (length - available + BLOCK_SIZE - 1) // BLOCK_SIZE
        fresh = self._generate_blocks(blocks)
        self._buffer = self._buffer[self._offset :] + fresh
        self._offset = 0

    def random_bytes(self, length: int) -> bytes:
        """Next ``length`` bytes of keystream."""
        if length < 0:
            raise CryptoError(f"length must be >= 0, got {length}")
        buffer = self._buffer
        offset = self._offset
        available = len(buffer) - offset
        if available < length:
            needed_blocks = (length - available + BLOCK_SIZE - 1) // BLOCK_SIZE
            batch = needed_blocks
            if self._batching:
                batch = max(needed_blocks, self._refill_blocks)
                self._refill_blocks = min(
                    self._refill_blocks * 2, _FAST_REFILL_BLOCKS_MAX
                )
            fresh = self._generate_blocks(batch)
            buffer = buffer[offset:] + fresh
            offset = 0
            self._buffer = buffer
        output = buffer[offset : offset + length]
        self._offset = offset + length
        return output

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits (like ``random.getrandbits``)."""
        if bits < 0:
            raise CryptoError(f"bits must be >= 0, got {bits}")
        if bits == 0:
            return 0
        num_bytes = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(num_bytes), "big")
        return value >> (8 * num_bytes - bits)

    def randrange(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError(f"bound must be >= 1, got {bound}")
        bits = bound.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < bound:
                return candidate

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive, like stdlib)."""
        if high < low:
            raise CryptoError(f"empty range [{low}, {high}]")
        return low + self.randrange(high - low + 1)

    def fork(self, label: bytes | str) -> "AesCtrDrbg":
        """Derive an independent child DRBG bound to ``label``.

        Used to give every node / every round its own stream without the
        streams ever overlapping.
        """
        if isinstance(label, str):
            label = label.encode("utf-8")
        material = self.random_bytes(16) + label
        return AesCtrDrbg.from_seed(material)

    def fork_many(self, labels) -> "list[AesCtrDrbg]":
        """Children of :meth:`fork` for every label, in order.

        Stream-identical to ``[self.fork(label) for label in labels]`` —
        the parent material draws happen in the same order and the child
        keys come out bit-for-bit the same — but the parent draws are one
        buffered read, which keeps a round's worth of dealer forks off
        the scalar refill path.
        """
        labels = list(labels)
        if not labels:
            return []
        self.prefill(16 * len(labels))
        return [self.fork(label) for label in labels]

    @staticmethod
    def prefill_many(drbgs, length: int) -> None:
        """Buffer ``length`` keystream bytes into every DRBG, batched.

        One :func:`repro.crypto.aesbatch.ctr_keystream_many` call covers
        all the streams' blocks (each under its own key), so a fleet of
        short-lived forks pays the AES interpreter overhead once instead
        of per fork.  Falls back to per-stream scalar prefills when the
        vector backend (or numpy) is unavailable.  Either way every
        stream's future output is bit-identical to the unprefilled one.
        """
        if length <= 0:
            return
        pending = []
        counts = []
        for drbg in drbgs:
            available = len(drbg._buffer) - drbg._offset
            if available >= length:
                continue
            blocks = (length - available + BLOCK_SIZE - 1) // BLOCK_SIZE
            pending.append(drbg)
            counts.append(blocks)
        if not pending:
            return
        use_lanes = _lane_keystream_available() and all(
            drbg._batching for drbg in pending
        )
        if use_lanes and sum(counts) >= _LANE_REFILL_BLOCKS_MIN:
            from repro.crypto import aesbatch

            streams = aesbatch.ctr_keystream_many(
                [drbg._cipher for drbg in pending],
                [drbg._counter for drbg in pending],
                counts,
            )
            for drbg, count, fresh in zip(pending, counts, streams):
                drbg._counter += count
                drbg._buffer = drbg._buffer[drbg._offset :] + fresh
                drbg._offset = 0
            return
        for drbg, count in zip(pending, counts):
            fresh = drbg._generate_blocks(count)
            drbg._buffer = drbg._buffer[drbg._offset :] + fresh
            drbg._offset = 0
