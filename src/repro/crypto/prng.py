"""Deterministic AES-CTR DRBG.

Everywhere the *protocol* needs randomness — Shamir polynomial
coefficients, per-packet nonces — we draw from this DRBG rather than the
simulation RNG.  Two reasons:

* reproducibility: a whole experiment is replayable from ``(seed, node)``;
* separation: channel randomness (fading, losses) and cryptographic
  randomness never share a stream, so changing the PHY model does not
  change which polynomials a node deals.

The generator exposes the subset of the ``random.Random`` interface the
library uses (``randrange``, ``getrandbits``, ``random_bytes``) so it can
be passed anywhere a stdlib RNG is accepted.
"""

from __future__ import annotations

import hashlib

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.errors import CryptoError


class AesCtrDrbg:
    """Deterministic random bit generator running AES-128 in counter mode.

    The 16-byte key is derived from an arbitrary seed via SHA-256 (first
    16 bytes); the counter starts at zero.  Output blocks are buffered so
    small requests don't waste cipher calls.

    >>> drbg = AesCtrDrbg.from_seed(b"experiment-42")
    >>> value = drbg.randrange(1000)
    >>> 0 <= value < 1000
    True
    """

    __slots__ = ("_cipher", "_counter", "_buffer")

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise CryptoError(f"DRBG key must be 16 bytes, got {len(key)}")
        self._cipher = AES128(key)
        self._counter = 0
        self._buffer = b""

    @classmethod
    def from_seed(cls, seed: bytes | str | int) -> "AesCtrDrbg":
        """Build a DRBG from any hashable seed material."""
        if isinstance(seed, int):
            seed = seed.to_bytes((max(seed.bit_length(), 1) + 7) // 8, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        digest = hashlib.sha256(seed).digest()
        return cls(digest[:16])

    def random_bytes(self, length: int) -> bytes:
        """Next ``length`` bytes of keystream."""
        if length < 0:
            raise CryptoError(f"length must be >= 0, got {length}")
        while len(self._buffer) < length:
            block = self._counter.to_bytes(BLOCK_SIZE, "big")
            self._buffer += self._cipher.encrypt_block(block)
            self._counter += 1
        output, self._buffer = self._buffer[:length], self._buffer[length:]
        return output

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits (like ``random.getrandbits``)."""
        if bits < 0:
            raise CryptoError(f"bits must be >= 0, got {bits}")
        if bits == 0:
            return 0
        num_bytes = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(num_bytes), "big")
        return value >> (8 * num_bytes - bits)

    def randrange(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError(f"bound must be >= 1, got {bound}")
        bits = bound.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < bound:
                return candidate

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive, like stdlib)."""
        if high < low:
            raise CryptoError(f"empty range [{low}, {high}]")
        return low + self.randrange(high - low + 1)

    def fork(self, label: bytes | str) -> "AesCtrDrbg":
        """Derive an independent child DRBG bound to ``label``.

        Used to give every node / every round its own stream without the
        streams ever overlapping.
        """
        if isinstance(label, str):
            label = label.encode("utf-8")
        material = self.random_bytes(16) + label
        return AesCtrDrbg.from_seed(material)
