"""Pairwise key pre-distribution.

The paper assumes "a key ... already shared with the destination node
during the bootstrapping phase".  We model that assumption faithfully: a
trusted setup derives one AES-128 key per unordered node pair from a
network master secret, and each node's :class:`PairwiseKeyStore` holds the
keys involving that node.  Key derivation is deterministic so both ends of
a pair independently agree on the key — exactly how a commissioning tool
would provision a real deployment.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.crypto.aes import AES128
from repro.errors import CryptoError, KeyNotFoundError


def derive_pairwise_key(master_secret: bytes, node_a: int, node_b: int) -> bytes:
    """Derive the AES-128 key for the unordered pair ``{node_a, node_b}``.

    Symmetric in its node arguments; distinct pairs get independent keys
    (HKDF-style extract via SHA-256 over a canonical encoding).
    """
    if node_a == node_b:
        raise CryptoError(f"no pairwise key for a node with itself ({node_a})")
    if node_a < 0 or node_b < 0:
        raise CryptoError(f"node ids must be >= 0, got {node_a}, {node_b}")
    low, high = sorted((node_a, node_b))
    material = (
        b"repro-pairwise-key-v1|"
        + master_secret
        + b"|"
        + low.to_bytes(4, "big")
        + high.to_bytes(4, "big")
    )
    return hashlib.sha256(material).digest()[:16]


class PairwiseKeyStore:
    """The key material held by one node after bootstrapping.

    Stores AES cipher objects keyed by peer id; cipher schedules are
    expanded once at installation time (mirroring how firmware loads keys
    into the crypto peripheral once, not per packet).
    """

    __slots__ = ("_node_id", "_ciphers")

    def __init__(self, node_id: int):
        if node_id < 0:
            raise CryptoError(f"node id must be >= 0, got {node_id}")
        self._node_id = node_id
        self._ciphers: dict[int, AES128] = {}

    @property
    def node_id(self) -> int:
        """Owner of this key store."""
        return self._node_id

    @classmethod
    def provision(
        cls,
        node_id: int,
        peers: Iterable[int],
        master_secret: bytes,
    ) -> "PairwiseKeyStore":
        """Build a fully provisioned store for ``node_id`` against ``peers``."""
        store = cls(node_id)
        for peer in peers:
            if peer == node_id:
                continue
            store.install_key(peer, derive_pairwise_key(master_secret, node_id, peer))
        return store

    def install_key(self, peer_id: int, key: bytes) -> None:
        """Install (or replace) the key shared with ``peer_id``."""
        if peer_id == self._node_id:
            raise CryptoError("cannot install a key with oneself")
        self._ciphers[peer_id] = AES128(key)

    def cipher_for(self, peer_id: int) -> AES128:
        """The AES cipher shared with ``peer_id``.

        Raises :class:`KeyNotFoundError` when no key was provisioned, which
        a caller should treat as "this destination is outside my
        pre-determined neighbour set".
        """
        cipher = self._ciphers.get(peer_id)
        if cipher is None:
            raise KeyNotFoundError(
                f"node {self._node_id} holds no key for peer {peer_id}"
            )
        return cipher

    def has_key(self, peer_id: int) -> bool:
        """Whether a key for ``peer_id`` is installed."""
        return peer_id in self._ciphers

    def peers(self) -> list[int]:
        """Sorted list of peers this node shares a key with."""
        return sorted(self._ciphers)

    def __len__(self) -> int:
        return len(self._ciphers)

    def __repr__(self) -> str:
        return f"PairwiseKeyStore(node={self._node_id}, peers={len(self._ciphers)})"
