"""Classic Shamir Secret Sharing (dealer / reconstructor).

:class:`ShamirScheme` is the textbook scheme: split a secret into shares
evaluated at given public points, reconstruct from any ``degree + 1`` of
them.  The aggregation protocol in :mod:`repro.sss.aggregation` composes
many dealers' shares; this class is the single-dealer building block and
is also used directly by the privacy analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReconstructionError, SecretSharingError
from repro.field.kernels import horner_eval_many
from repro.field.lagrange import interpolate_constant, interpolate_polynomial
from repro.field.polynomial import Polynomial
from repro.field.prime_field import FieldElement, IntoElement, PrimeField
from repro.sss.shares import Share


class ShamirScheme:
    """A ``(degree, n)`` Shamir scheme over a prime field.

    ``degree`` is the polynomial degree, i.e. the *collusion threshold*:
    any coalition of at most ``degree`` share-holders learns nothing about
    the secret, while any ``degree + 1`` shares reconstruct it exactly.
    """

    __slots__ = ("_field", "_degree")

    def __init__(self, field: PrimeField, degree: int):
        if degree < 0:
            raise SecretSharingError(f"degree must be >= 0, got {degree}")
        if degree >= field.prime - 1:
            raise SecretSharingError(
                f"degree {degree} too large for GF({field.prime})"
            )
        self._field = field
        self._degree = degree

    @property
    def field(self) -> PrimeField:
        """Field the scheme operates in."""
        return self._field

    @property
    def degree(self) -> int:
        """Polynomial degree == collusion threshold."""
        return self._degree

    @property
    def threshold(self) -> int:
        """Number of shares needed to reconstruct (``degree + 1``)."""
        return self._degree + 1

    def deal_polynomial(self, secret: IntoElement, rng) -> Polynomial:
        """Draw the dealer polynomial hiding ``secret``."""
        return Polynomial.random_with_secret(
            self._field, secret, self._degree, rng
        )

    def _validated_points(
        self, points: Sequence[IntoElement]
    ) -> list[FieldElement]:
        """Coerce and validate a public-point set (shared by both splits).

        ``points`` must contain at least ``degree + 1`` distinct non-zero
        points, otherwise the secret could never be reconstructed.
        """
        elements = [self._field(p) for p in points]
        if len({e.value for e in elements}) != len(elements):
            raise SecretSharingError("public points must be distinct")
        if any(e.value == 0 for e in elements):
            raise SecretSharingError("x=0 cannot be a public point")
        if len(elements) < self.threshold:
            raise SecretSharingError(
                f"need at least {self.threshold} points for degree "
                f"{self._degree}, got {len(elements)}"
            )
        return elements

    def split(
        self,
        secret: IntoElement,
        points: Sequence[IntoElement],
        rng,
        dealer_id: int = 0,
    ) -> list[Share]:
        """Split ``secret`` into one share per public point."""
        elements = self._validated_points(points)
        polynomial = self.deal_polynomial(secret, rng)
        return [
            Share(dealer_id=dealer_id, x=x, y=polynomial(x)) for x in elements
        ]

    def split_many(
        self,
        secrets: Sequence[IntoElement],
        points: Sequence[IntoElement],
        rng,
        dealer_ids: Sequence[int] | None = None,
    ) -> list[list[Share]]:
        """Split many secrets at once over a common public-point set.

        The batched form of :meth:`split`: point validation happens once,
        each dealer polynomial is evaluated with the raw-integer Horner
        kernel, and ``FieldElement`` objects are built only for the final
        :class:`Share` values.  The randomness draw order matches
        ``[self.split(s, points, rng) for s in secrets]`` exactly, so the
        two paths produce *identical* shares from identical RNG state
        (enforced by ``tests/sss/test_batch_fastpath.py``).
        """
        if dealer_ids is None:
            dealer_ids = range(len(secrets))
        elif len(dealer_ids) != len(secrets):
            raise SecretSharingError(
                f"{len(dealer_ids)} dealer ids for {len(secrets)} secrets"
            )
        field = self._field
        elements = self._validated_points(points)
        x_values = [e.value for e in elements]
        prime = field.prime
        batches: list[list[Share]] = []
        for secret, dealer_id in zip(secrets, dealer_ids):
            polynomial = self.deal_polynomial(secret, rng)
            values = horner_eval_many(polynomial.coefficients, x_values, prime)
            batches.append(
                [
                    Share(dealer_id=dealer_id, x=x, y=FieldElement(field, y))
                    for x, y in zip(elements, values)
                ]
            )
        return batches

    def reconstruct(self, shares: Sequence[Share]) -> FieldElement:
        """Reconstruct the secret from at least ``degree + 1`` shares."""
        self._validate_share_set(shares)
        points = [(share.x, share.y) for share in shares[: self.threshold]]
        return interpolate_constant(self._field, points)

    def reconstruct_polynomial(self, shares: Sequence[Share]) -> Polynomial:
        """Recover the full dealer polynomial (testing / analysis tool)."""
        self._validate_share_set(shares)
        points = [(share.x, share.y) for share in shares]
        polynomial = interpolate_polynomial(self._field, points)
        if polynomial.degree > self._degree:
            raise ReconstructionError(
                f"shares are inconsistent: interpolated degree "
                f"{polynomial.degree} exceeds scheme degree {self._degree}"
            )
        return polynomial

    def _validate_share_set(self, shares: Sequence[Share]) -> None:
        if len(shares) < self.threshold:
            raise ReconstructionError(
                f"need {self.threshold} shares, got {len(shares)}"
            )
        xs = [share.x.value for share in shares]
        if len(set(xs)) != len(xs):
            raise ReconstructionError("shares contain duplicate x-coordinates")
        for share in shares:
            if share.x.field is not self._field:
                raise ReconstructionError("share from a different field")

    def __repr__(self) -> str:
        return f"ShamirScheme(degree={self._degree}, field=GF({self._field.prime}))"
