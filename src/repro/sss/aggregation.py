"""Privacy-preserving aggregation on top of Shamir shares.

The PPDA construction the paper uses: every source ``i`` deals a random
degree-``p`` polynomial ``P_i`` with ``P_i(0) = S_i`` and sends ``P_i(x_j)``
to the holder of point ``x_j``.  Each holder *sums* what it receives:

    Y_j = sum_i P_i(x_j) = (sum_i P_i)(x_j) = P_s(x_j)

so the per-point sums are themselves shares of the sum polynomial ``P_s``,
and any ``p + 1`` of them interpolate the aggregate ``P_s(0) = sum_i S_i``
— without any holder ever seeing an individual secret.

The subtlety a real system must handle (and the reason S4's fault
tolerance needs care) is *consistency*: the sums ``Y_j`` only lie on a
common polynomial if they were built from the **same contributor set**.
:class:`ShareAccumulator` therefore tracks contributors per point, and
:func:`reconstruct_aggregate` only combines points whose contributor sets
agree, choosing the largest such group.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Mapping, Sequence

from repro.errors import ReconstructionError, SecretSharingError
from repro.field.lagrange import interpolate_constant
from repro.field.prime_field import FieldElement, PrimeField
from repro.sss.shares import Share


@dataclass(slots=True)
class ShareAccumulator:
    """Running share-sum at one public point, with contributor tracking.

    This is exactly the state a holder node keeps during the sharing
    phase: the field sum of received shares and the set of dealers that
    contributed.
    """

    x: FieldElement
    total: FieldElement
    contributors: set[int] = dataclass_field(default_factory=set)

    @classmethod
    def empty(cls, x: FieldElement) -> "ShareAccumulator":
        """Fresh accumulator for point ``x``."""
        return cls(x=x, total=x.field.zero(), contributors=set())

    def add(self, share: Share) -> None:
        """Fold one received share into the sum."""
        if share.x != self.x:
            raise SecretSharingError(
                f"share for x={share.x.value} added to accumulator of "
                f"x={self.x.value}"
            )
        if share.dealer_id in self.contributors:
            raise SecretSharingError(
                f"dealer {share.dealer_id} contributed twice at x={self.x.value}"
            )
        self.total = self.total + share.y
        self.contributors.add(share.dealer_id)

    @property
    def contributor_key(self) -> frozenset[int]:
        """Hashable contributor-set identity used for consistency grouping."""
        return frozenset(self.contributors)


@dataclass(frozen=True, slots=True)
class AggregationResult:
    """Outcome of a fault-tolerant aggregate reconstruction.

    Attributes:
        value: the reconstructed aggregate sum.
        contributors: the dealer set whose secrets are inside ``value``.
        points_used: how many consistent points the interpolation used.
        points_available: how many candidate points existed in total.
    """

    value: FieldElement
    contributors: frozenset[int]
    points_used: int
    points_available: int

    @property
    def is_complete(self) -> bool:
        """True when every available point agreed on the contributor set."""
        return self.points_used == self.points_available


def aggregate_shares(
    field: PrimeField,
    shares_by_point: Mapping[int, Iterable[Share]],
) -> dict[int, ShareAccumulator]:
    """Sum shares point-by-point (offline helper mirroring holder logic).

    ``shares_by_point`` maps a point's integer value to the shares received
    for it.  Returns accumulators keyed the same way.
    """
    accumulators: dict[int, ShareAccumulator] = {}
    for x_value, shares in shares_by_point.items():
        shares = list(shares)
        if not shares:
            continue
        accumulator = ShareAccumulator.empty(field(x_value))
        for share in shares:
            accumulator.add(share)
        accumulators[x_value] = accumulator
    return accumulators


def reconstruct_aggregate(
    field: PrimeField,
    accumulators: Sequence[ShareAccumulator],
    degree: int,
    expected_contributors: frozenset[int] | None = None,
) -> AggregationResult:
    """Reconstruct the aggregate from per-point sums, fault-tolerantly.

    Groups accumulators by contributor set, picks the group that (a)
    matches ``expected_contributors`` when given, otherwise (b) has the
    most points (ties broken toward the larger contributor set — more
    secrets aggregated), and interpolates from ``degree + 1`` of them.

    Raises :class:`ReconstructionError` when no contributor-consistent
    group reaches the threshold — the fail-safe the module docstring
    describes.
    """
    threshold = degree + 1
    if not accumulators:
        raise ReconstructionError("no per-point sums available")

    groups: dict[frozenset[int], list[ShareAccumulator]] = {}
    for accumulator in accumulators:
        if not accumulator.contributors:
            continue
        groups.setdefault(accumulator.contributor_key, []).append(accumulator)

    if expected_contributors is not None:
        candidates = groups.get(frozenset(expected_contributors), [])
        if len(candidates) < threshold:
            raise ReconstructionError(
                f"only {len(candidates)} points carry the expected "
                f"contributor set (need {threshold})"
            )
        chosen = candidates
        chosen_key = frozenset(expected_contributors)
    else:
        viable = {
            key: group for key, group in groups.items() if len(group) >= threshold
        }
        if not viable:
            best = max((len(g) for g in groups.values()), default=0)
            raise ReconstructionError(
                f"no contributor-consistent group reaches threshold "
                f"{threshold} (best has {best} points)"
            )
        chosen_key = max(viable, key=lambda key: (len(viable[key]), len(key)))
        chosen = viable[chosen_key]

    xs_seen = {accumulator.x.value for accumulator in chosen}
    if len(xs_seen) != len(chosen):
        raise ReconstructionError("duplicate points within a contributor group")

    points = [(a.x, a.total) for a in chosen[:threshold]]
    value = interpolate_constant(field, points)
    return AggregationResult(
        value=value,
        contributors=chosen_key,
        points_used=len(chosen),
        points_available=len(accumulators),
    )


def reconstruct_from_sums(
    field: PrimeField,
    sums: Mapping[int, int],
    degree: int,
) -> FieldElement:
    """Convenience reconstruction from raw ``{x_value: sum_value}`` pairs.

    Assumes the caller already knows the sums are contributor-consistent
    (e.g. unit tests, or S3 with verified full delivery).
    """
    threshold = degree + 1
    if len(sums) < threshold:
        raise ReconstructionError(
            f"need {threshold} sums for degree {degree}, got {len(sums)}"
        )
    items = sorted(sums.items())[:threshold]
    points = [(field(x), field(y)) for x, y in items]
    return interpolate_constant(field, points)


def reconstruct_many_from_sums(
    field: PrimeField,
    sums_batch: Sequence[Mapping[int, int]],
    degree: int,
) -> list[FieldElement]:
    """Batched :func:`reconstruct_from_sums` over many rounds' sums.

    The batched reconstruction entry point for campaign post-processing:
    one Lagrange weight vector is computed (and cached in
    :data:`repro.field.lagrange.SHARED_WEIGHTS`) per distinct point set
    and reused across the whole batch — with a fixed collector set that
    is a single weight computation for an arbitrarily long campaign.
    Results are value-identical to calling :func:`reconstruct_from_sums`
    once per entry.
    """
    from repro.field.lagrange import SHARED_WEIGHTS

    threshold = degree + 1
    prime = field.prime
    results: list[FieldElement] = []
    for sums in sums_batch:
        if len(sums) < threshold:
            raise ReconstructionError(
                f"need {threshold} sums for degree {degree}, got {len(sums)}"
            )
        items = sorted(sums.items())[:threshold]
        xs = tuple(x % prime for x, _ in items)
        weights = SHARED_WEIGHTS.weight_values(prime, xs, 0)
        total = 0
        for (_, y), weight in zip(items, weights):
            total += weight * (y % prime)
        results.append(FieldElement(field, total % prime))
    return results


def majority_contributor_set(
    accumulators: Sequence[ShareAccumulator],
) -> frozenset[int] | None:
    """The most common contributor set among accumulators (or ``None``)."""
    counter: Counter[frozenset[int]] = Counter(
        accumulator.contributor_key
        for accumulator in accumulators
        if accumulator.contributors
    )
    if not counter:
        return None
    return counter.most_common(1)[0][0]
