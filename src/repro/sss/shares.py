"""The :class:`Share` value type.

A share is an evaluation of a dealer's polynomial at a public point.  It
remembers who dealt it and at which point it was evaluated, which is what
the aggregation layer needs to track contributor sets for consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SecretSharingError
from repro.field.prime_field import FieldElement


@dataclass(frozen=True, slots=True)
class Share:
    """One evaluation ``y = P_dealer(x)`` of a dealer polynomial.

    Attributes:
        dealer_id: node id of the secret owner who dealt this share.
        x: the public evaluation point (a field element).
        y: the polynomial value at ``x``.
    """

    dealer_id: int
    x: FieldElement
    y: FieldElement

    def __post_init__(self) -> None:
        if self.dealer_id < 0:
            raise SecretSharingError(f"dealer_id must be >= 0, got {self.dealer_id}")
        if self.x.field is not self.y.field:
            raise SecretSharingError("share x and y must live in the same field")
        if self.x.value == 0:
            raise SecretSharingError(
                "shares must not be evaluated at x=0 (that would leak the secret)"
            )

    @property
    def point(self) -> tuple[FieldElement, FieldElement]:
        """The ``(x, y)`` pair, ready for interpolation."""
        return (self.x, self.y)

    def to_bytes(self) -> bytes:
        """Serialize the y value (the x is implied by the destination)."""
        return self.y.to_bytes()

    def __repr__(self) -> str:
        return f"Share(dealer={self.dealer_id}, x={self.x.value}, y={self.y.value})"
