"""Shamir Secret Sharing and its additive-aggregation form.

This package is the *algorithmic* heart of the paper, independent of any
networking:

* :mod:`repro.sss.shares` — the :class:`Share` value type.
* :mod:`repro.sss.public_points` — the node-ID → field-point registry
  ("every node is designated for a specific public-point based on the ID
  of the node").
* :mod:`repro.sss.scheme` — classic dealer/reconstructor Shamir.
* :mod:`repro.sss.aggregation` — the PPDA construction: share-wise sums
  of many dealers' polynomials, consistency tracking, fault-tolerant
  reconstruction of the aggregate.
"""

from repro.sss.shares import Share
from repro.sss.public_points import PublicPointRegistry
from repro.sss.scheme import ShamirScheme
from repro.sss.aggregation import (
    AggregationResult,
    ShareAccumulator,
    aggregate_shares,
    reconstruct_aggregate,
    reconstruct_from_sums,
    reconstruct_many_from_sums,
)

__all__ = [
    "Share",
    "PublicPointRegistry",
    "ShamirScheme",
    "ShareAccumulator",
    "AggregationResult",
    "aggregate_shares",
    "reconstruct_aggregate",
    "reconstruct_from_sums",
    "reconstruct_many_from_sums",
]
