"""Node-ID → public evaluation point mapping.

The paper: "Every node is designated for a specific public-point based on
the ID of the node."  We map node ``i`` to field point ``i + 1`` — the +1
keeps every point away from ``x = 0``, where the secret lives.  The
registry validates that the network is small enough that points stay
distinct and non-zero in the chosen field (always true for realistic
fields, but tiny test fields exercise the check).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SecretSharingError
from repro.field.prime_field import FieldElement, PrimeField


class PublicPointRegistry:
    """Bidirectional map between node ids and their public field points."""

    __slots__ = ("_field", "_node_ids", "_points", "_point_to_node")

    def __init__(self, field: PrimeField, node_ids: Sequence[int]):
        if len(set(node_ids)) != len(node_ids):
            raise SecretSharingError("node ids must be unique")
        if any(node_id < 0 for node_id in node_ids):
            raise SecretSharingError("node ids must be >= 0")
        if len(node_ids) >= field.prime - 1:
            raise SecretSharingError(
                f"field GF({field.prime}) too small for {len(node_ids)} nodes"
            )
        self._field = field
        self._node_ids = tuple(node_ids)
        self._points: dict[int, FieldElement] = {
            node_id: field(node_id + 1) for node_id in node_ids
        }
        self._point_to_node: dict[int, int] = {
            point.value: node_id for node_id, point in self._points.items()
        }
        if len(self._point_to_node) != len(self._points):
            raise SecretSharingError("public points collide in this field")

    @property
    def field(self) -> PrimeField:
        """Field the points live in."""
        return self._field

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All registered node ids, in registration order."""
        return self._node_ids

    def point_of(self, node_id: int) -> FieldElement:
        """The public point designated to ``node_id``."""
        point = self._points.get(node_id)
        if point is None:
            raise SecretSharingError(f"unknown node id {node_id}")
        return point

    def node_of(self, point: FieldElement | int) -> int:
        """Inverse lookup: which node owns ``point``."""
        value = point.value if isinstance(point, FieldElement) else point
        node_id = self._point_to_node.get(value)
        if node_id is None:
            raise SecretSharingError(f"no node owns point {value}")
        return node_id

    def points_of(self, node_ids: Iterable[int]) -> list[FieldElement]:
        """Points for several nodes at once."""
        return [self.point_of(node_id) for node_id in node_ids]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._points

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"PublicPointRegistry({len(self._points)} nodes "
            f"over GF({self._field.prime}))"
        )
