"""Shard-process supervision: one OS process per shard journal.

:class:`ShardSupervisor` is the cross-process form of
:class:`~repro.service.daemon.ShardedServiceDaemon`: the same WAL
layout (``shard-NNN.wal`` per shard, ``fold.wal`` for authoritative
closes), the same admission state machine, the same recovery
verification — but each shard journal is owned by its *own daemon
process* (:func:`_shard_main`), reached over the localhost socket
transport (:mod:`repro.service.transport`), and the fold is coordinated
by the supervisor in the parent.

Responsibilities, by half:

* **Shard process** (:class:`ShardServer`, running inside the child):
  replays its WAL on start (truncating any torn tail — it is the
  journal's owner), binds an ephemeral TCP port, publishes
  ``{pid, port}`` through an atomically-replaced port file, and then
  serves admission with the daemon's exact journal-before-ack
  discipline.  ``CLOSE`` is idempotent (accepted submissions are kept
  by window after the deadline advances), so a supervisor whose close
  request lost its reply can simply re-send it.
* **Supervisor** (parent): holds the service-directory lock, re-verifies
  every journaled fold close against recomputation *before* spawning
  anything, spawns one process per shard, monitors liveness (process
  exit + heartbeat pings) and respawns crashed shards into bit-identical
  state from their WALs, serializes window closes (collect each shard's
  window set over the wire, fold, journal to ``fold.wal``), and exposes
  the same surface :class:`~repro.service.client.ServiceClient` expects
  of a daemon.

Fault injection hooks (driven by the soak's ``FaultPlan``):
``kill_shard`` SIGKILLs a shard process (the monitor restarts it);
``inject_drop`` makes a shard admit-then-drop the next N submission
connections without replying (a true lost ack); ``inject_delay`` makes
it stall the next N admission replies past any configured deadline.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import signal
import threading
import time
from dataclasses import replace

from repro.core.metrics import WindowSummary
from repro.errors import ServiceError, TransportError, WireError
from repro.lintkit.lockdep import ordered_lock
from repro.service import wal, wire
from repro.service.daemon import Admission, AdmissionResult, ServiceConfig
from repro.service.transport import (
    OP_CLOSE_WINDOW,
    OP_FAULT_DELAY,
    OP_FAULT_DROP,
    OP_PAUSE,
    OP_PING,
    OP_RESUME,
    OP_SHUTDOWN,
    OP_STAT_ACCEPTED,
    OP_STAT_RECORDS,
    DROP_CONNECTION,
    ShardEndpoint,
    SocketRecordServer,
    admission_from_reply,
    admission_to_reply,
)
from repro.service.windows import aggregate_shards, aggregate_window
from repro.service.wire import ShareSubmission

__all__ = ["ShardServer", "ShardSupervisor"]

#: Port-file name per shard (same index discipline as the WALs).
PORT_PATTERN = "shard-{index:03d}.port"


def _port_path(journal_dir: pathlib.Path, index: int) -> pathlib.Path:
    return journal_dir / PORT_PATTERN.format(index=index)


def _write_port_file(path: pathlib.Path, port: int) -> None:
    """Publish ``{pid, port}`` atomically (readers never see a torn file)."""
    tmp = path.with_suffix(".port.tmp")
    tmp.write_text(json.dumps({"pid": os.getpid(), "port": port}))
    os.replace(tmp, path)


def _read_port_file(path: pathlib.Path) -> dict | None:
    try:
        info = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(info, dict):
        return None
    pid, port = info.get("pid"), info.get("port")
    if not isinstance(pid, int) or not isinstance(port, int):
        return None
    return {"pid": pid, "port": port}


class ShardServer:
    """One shard's in-process state machine (runs inside the child).

    The admission ladder is the daemon's, shard-locally: LATE (against
    the shard's own deadline) ≺ DUPLICATE ≺ paused RETRY_AFTER ≺ SHED at
    ``window_capacity`` ≺ RETRY_AFTER at ``queue_capacity`` (which on
    the socket path bounds *this shard's* pending set — shards share no
    memory, so the bound cannot be global) ≺ journal-append-fsync ≺
    ACCEPTED.  Accepted submissions are retained by window even after
    the deadline advances, which makes ``CLOSE`` idempotent under
    supervisor retries.
    """

    def __init__(
        self,
        index: int,
        shards: int,
        journal_path: str | os.PathLike,
        deadline: int,
        paused: bool,
        window_capacity: int,
        queue_capacity: int,
        retry_after_s: float,
        fsync: bool,
    ):
        self.index = index
        self.shards = shards
        self.journal = wal.WindowJournal(journal_path, fsync=fsync)
        self.window_capacity = window_capacity
        self.queue_capacity = queue_capacity
        self.retry_after_s = retry_after_s
        self._lock = ordered_lock("shardserver.state")
        self._seen: set[tuple[int, int]] = set()
        self._by_window: dict[int, list[ShareSubmission]] = {}
        self._deadline = deadline
        self._paused = paused
        self._pending = 0
        self._drop_pending = 0
        self._delay_pending = 0
        self._delay_s = 0.0
        self._server: SocketRecordServer | None = None
        self._replay()

    def _replay(self) -> None:
        state = self.journal.replay()
        if state.skipped or state.closes:
            raise ServiceError(
                f"shard journal {self.journal.path} holds foreign records"
            )
        for submission in state.accepted:
            self._seen.add((submission.device, submission.seq))
            self._by_window.setdefault(submission.window, []).append(submission)
            if submission.window > self._deadline:
                self._pending += 1

    # -- request handling ------------------------------------------------------

    def handle(self, record):
        if isinstance(record, ShareSubmission):
            return self._handle_submit(record)
        if isinstance(record, wire.ServiceRequest):
            return self._handle_control(record)
        raise ServiceError(
            f"shard {self.index} cannot serve {type(record).__name__} frames"
        )

    def _admit(self, s: ShareSubmission) -> AdmissionResult:
        if s.device % self.shards != self.index:
            raise ServiceError(
                f"device {s.device} routes to shard {s.device % self.shards}, "
                f"not {self.index}"
            )
        if s.window <= self._deadline:
            return AdmissionResult(Admission.LATE, s.window)
        if (s.device, s.seq) in self._seen:
            return AdmissionResult(Admission.DUPLICATE, s.window)
        if self._paused:
            return AdmissionResult(
                Admission.RETRY_AFTER, s.window, retry_after_s=self.retry_after_s
            )
        if len(self._by_window.get(s.window, ())) >= self.window_capacity:
            return AdmissionResult(Admission.SHED, s.window)
        if self._pending >= self.queue_capacity:
            return AdmissionResult(
                Admission.RETRY_AFTER, s.window, retry_after_s=self.retry_after_s
            )
        self.journal.append_submission(s)
        self._seen.add((s.device, s.seq))
        self._by_window.setdefault(s.window, []).append(s)
        self._pending += 1
        return AdmissionResult(Admission.ACCEPTED, s.window)

    def _handle_submit(self, s: ShareSubmission):
        with self._lock:
            result = self._admit(s)
            drop = delay = False
            if result.accepted and self._drop_pending > 0:
                self._drop_pending -= 1
                drop = True
            elif self._delay_pending > 0:
                self._delay_pending -= 1
                delay = True
        if drop:
            # The share is journaled and admitted; the ack is lost.  The
            # client's re-send comes back DUPLICATE — which is the point.
            return DROP_CONNECTION
        if delay:
            time.sleep(self._delay_s)
        return [admission_to_reply(result)]

    def _handle_control(self, request: wire.ServiceRequest):
        op = request.op
        if op == OP_PING:
            return [wire.ServiceReply(op=op, ok=True, value=self.index)]
        if op == OP_CLOSE_WINDOW:
            return self._handle_close(request.window)
        if op == OP_PAUSE:
            with self._lock:
                self._paused = True
            return [wire.ServiceReply(op=op, ok=True)]
        if op == OP_RESUME:
            with self._lock:
                self._paused = False
            return [wire.ServiceReply(op=op, ok=True)]
        if op == OP_STAT_RECORDS:
            return [wire.ServiceReply(op=op, ok=True, value=self.journal.records)]
        if op == OP_STAT_ACCEPTED:
            return [wire.ServiceReply(op=op, ok=True, value=len(self._seen))]
        if op == OP_FAULT_DROP:
            with self._lock:
                self._drop_pending += max(0, request.value)
            return [wire.ServiceReply(op=op, ok=True)]
        if op == OP_FAULT_DELAY:
            with self._lock:
                self._delay_pending += max(0, request.window)
                self._delay_s = request.value / 1_000_000.0
            return [wire.ServiceReply(op=op, ok=True)]
        if op == OP_SHUTDOWN:
            if self._server is not None:
                self._server.stop()
            return [wire.ServiceReply(op=op, ok=True)]
        raise ServiceError(f"unknown control op {op}")

    def _handle_close(self, window: int):
        with self._lock:
            strays = sorted(
                w
                for w, subs in self._by_window.items()
                if self._deadline < w < window and subs
            )
            if strays:
                raise ServiceError(
                    f"shard {self.index} cannot close window {window} past "
                    f"open windows {strays}; windows close in order"
                )
            submissions = list(self._by_window.get(window, ()))
            if window > self._deadline:
                for w, subs in self._by_window.items():
                    if self._deadline < w <= window:
                        self._pending -= len(subs)
                self._deadline = window
        return [
            wire.ServiceReply(op=OP_CLOSE_WINDOW, ok=True, value=len(submissions)),
            *submissions,
        ]

    # -- lifetime --------------------------------------------------------------

    def run(self, port_file: pathlib.Path) -> None:
        """Bind, publish the port, serve until SHUTDOWN; then sync out."""
        self._server = SocketRecordServer(self.handle)
        _write_port_file(port_file, self._server.port)
        try:
            self._server.serve_forever()
        finally:
            # Give in-flight connection threads a beat to finish their
            # current request before the journal handle goes away.
            time.sleep(0.05)
            with self._lock:
                self.journal.sync()
                self.journal.close()


def _shard_main(
    index: int,
    shards: int,
    journal_path: str,
    port_file: str,
    deadline: int,
    paused: bool,
    window_capacity: int,
    queue_capacity: int,
    retry_after_s: float,
    fsync: bool,
) -> None:
    """Child-process entry point (spawn-safe: flat picklable args only)."""
    # The supervisor owns process-group signals; a shard dies by SIGKILL
    # or by SHUTDOWN, never by an inherited SIGINT from a test runner.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = ShardServer(
        index=index,
        shards=shards,
        journal_path=journal_path,
        deadline=deadline,
        paused=paused,
        window_capacity=window_capacity,
        queue_capacity=queue_capacity,
        retry_after_s=retry_after_s,
        fsync=fsync,
    )
    server.run(pathlib.Path(port_file))


class ShardSupervisor:
    """Own one daemon process per shard journal; coordinate the fold.

    Presents the :class:`~repro.service.daemon.ShardedServiceDaemon`
    surface (``submit``/``close_window``/``pause``/``window_records``/
    ``hard_stop``...) so :class:`~repro.service.client.ServiceClient`
    can treat ``transport="socket"`` as one more backend.  Extra,
    socket-only surface: :meth:`kill_shard`, :meth:`inject_drop`,
    :meth:`inject_delay`, and ``restarts``.
    """

    SHARD_PATTERN = "shard-{index:03d}.wal"
    FOLD_NAME = "fold.wal"

    def __init__(
        self,
        config: ServiceConfig,
        journal_dir: str | os.PathLike,
        shards: int = 1,
        request_deadline_s: float = 5.0,
        control_deadline_s: float = 15.0,
        heartbeat_s: float = 0.05,
        heartbeat_misses: int = 5,
    ):
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        if heartbeat_s <= 0 or heartbeat_misses < 1:
            raise ServiceError("heartbeat settings must be positive")
        self.config = config
        self.shards = shards
        self.journal_dir = pathlib.Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.request_deadline_s = request_deadline_s
        self.control_deadline_s = control_deadline_s
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        for existing in self.journal_dir.glob("shard-*.wal"):
            try:
                index = int(existing.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index >= shards:
                raise ServiceError(
                    f"journal dir {self.journal_dir} holds {existing.name} "
                    f"but this service runs {shards} shard(s); resharding a "
                    "journal directory is not supported"
                )
        self._lock = wal.ServiceDirLock(self.journal_dir)
        self._lock.acquire()
        try:
            self._state = ordered_lock("supervisor.state")
            self._close_lock = ordered_lock("service.close")
            self._closed: dict[int, WindowSummary] = {}
            self._deadline = -1
            self._shard_accepted = [0] * shards
            self._closed_accepted = 0
            self._duplicates: dict[int, int] = {}
            self._shed: dict[int, int] = {}
            self._retried: dict[int, int] = {}
            self._late: dict[int, int] = {}
            self.late_total = 0
            self._degraded_windows: set[int] = set()
            self._paused = False
            self._stopped = False
            self.last_close_submissions: tuple[ShareSubmission, ...] = ()
            self.restarts = 0
            self.restart_log: list[dict] = []
            self.recovered = False
            self._recover()
            self._fold = wal.WindowJournal(
                self.journal_dir / self.FOLD_NAME, fsync=config.fsync
            )
            self._ctx = multiprocessing.get_context("spawn")
            self._processes: list = [None] * shards
            self._spawn_locks = [
                ordered_lock("supervisor.spawn", index=index)
                for index in range(shards)
            ]
            self._endpoints = [
                ShardEndpoint(
                    self._resolver(index), request_deadline_s=request_deadline_s
                )
                for index in range(shards)
            ]
            self._monitor_endpoints = [
                ShardEndpoint(
                    self._resolver(index),
                    request_deadline_s=min(1.0, request_deadline_s),
                )
                for index in range(shards)
            ]
            for index in range(shards):
                self._spawn(index)
            self._monitor_stop = threading.Event()
            self._monitor_thread = threading.Thread(
                target=self._monitor, name="shard-monitor", daemon=True
            )
            self._monitor_thread.start()
        except BaseException:
            self._lock.release()
            raise

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        """Read-only pre-spawn verification, mirroring the daemon's.

        Every fold close must recompute bit-for-bit from the shard WALs
        (the same invariants ``ShardedServiceDaemon._recover`` enforces)
        — a supervisor never hands a shard process a journal it has not
        proven consistent with the authoritative fold.
        """
        shard_states = []
        for index in range(self.shards):
            path = self.journal_dir / self.SHARD_PATTERN.format(index=index)
            state = wal.replay_journal(path)
            if state.skipped:
                raise ServiceError(
                    f"shard journal {path} holds {state.skipped} "
                    "undecodable records"
                )
            if state.closes:
                raise ServiceError(
                    f"shard journal {path} holds close records; closes "
                    "belong to the fold journal"
                )
            seen: set[tuple[int, int]] = set()
            for submission in state.accepted:
                if submission.device % self.shards != index:
                    raise ServiceError(
                        f"shard journal {path} holds device "
                        f"{submission.device}, which routes to shard "
                        f"{submission.device % self.shards}"
                    )
                identity = (submission.device, submission.seq)
                if identity in seen:
                    raise ServiceError(
                        f"shard journal {path} holds a duplicate "
                        f"submission identity {identity}"
                    )
                seen.add(identity)
            shard_states.append(state)
            self._shard_accepted[index] = len(state.accepted)
        fold_state = wal.replay_journal(self.journal_dir / self.FOLD_NAME)
        if fold_state.skipped:
            raise ServiceError(
                f"fold journal {self.journal_dir / self.FOLD_NAME} holds "
                f"{fold_state.skipped} undecodable records"
            )
        if fold_state.accepted:
            raise ServiceError(
                "fold journal holds submissions; shares belong to the "
                "shard journals"
            )
        self.recovered = bool(fold_state.closes) or any(
            s.accepted for s in shard_states
        )
        by_shard_window: dict[tuple[int, int], list[ShareSubmission]] = {}
        for index, state in enumerate(shard_states):
            for submission in state.accepted:
                by_shard_window.setdefault(
                    (index, submission.window), []
                ).append(submission)
        for window, summary in sorted(fold_state.closes.items()):
            shard_subs = {
                index: by_shard_window.pop((index, window), [])
                for index in range(self.shards)
            }
            count = sum(len(subs) for subs in shard_subs.values())
            if count != summary.accepted:
                raise ServiceError(
                    f"window {window} fold record counts {summary.accepted} "
                    f"submissions; shard journals hold {count}"
                )
            check = self._aggregate(shard_subs, window)
            if check.total != summary.total or check.expected != summary.expected:
                raise ServiceError(
                    f"window {window} journaled total {summary.total} does "
                    f"not match its recomputation {check.total}"
                )
            self._closed[window] = replace(summary, recovered=self.recovered)
            self._closed_accepted += summary.accepted
            self._deadline = max(self._deadline, window)
        for (index, window), _subs in sorted(by_shard_window.items()):
            if window <= self._deadline:
                raise ServiceError(
                    f"shard {index} journal holds submissions for window "
                    f"{window} past the recovered deadline {self._deadline}"
                )

    def _aggregate(self, shard_subs: dict[int, list[ShareSubmission]], window: int):
        if self.shards == 1:
            return aggregate_window(
                shard_subs.get(0, []), self.config.seed, window, self.config.cells
            )
        return aggregate_shards(shard_subs, self.config.seed, window)

    # -- process lifecycle -----------------------------------------------------

    def _resolver(self, index: int):
        def resolve() -> tuple[str, int]:
            process = self._processes[index]
            info = _read_port_file(_port_path(self.journal_dir, index))
            if (
                info is None
                or process is None
                or process.pid is None
                or info["pid"] != process.pid
            ):
                raise TransportError(f"shard {index} has no live port")
            return ("127.0.0.1", info["port"])

        return resolve

    def _spawn(self, index: int, timeout_s: float = 30.0) -> float:
        """Start (or restart) one shard process; wait for its port file."""
        port_file = _port_path(self.journal_dir, index)
        try:
            port_file.unlink()
        except FileNotFoundError:
            pass
        with self._state:
            deadline, paused = self._deadline, self._paused
        started = time.perf_counter()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                index,
                self.shards,
                str(self.journal_dir / self.SHARD_PATTERN.format(index=index)),
                str(port_file),
                deadline,
                paused,
                self.config.window_capacity,
                self.config.queue_capacity,
                self.config.retry_after_s,
                self.config.fsync,
            ),
            name=f"repro-shard-{index:03d}",
            daemon=True,
        )
        process.start()
        self._processes[index] = process
        while True:
            info = _read_port_file(port_file)
            if info is not None and info["pid"] == process.pid:
                return time.perf_counter() - started
            if not process.is_alive():
                raise ServiceError(
                    f"shard {index} process died during startup "
                    f"(exit {process.exitcode})"
                )
            if time.perf_counter() - started > timeout_s:
                process.kill()
                raise ServiceError(
                    f"shard {index} did not publish a port within {timeout_s}s"
                )
            time.sleep(0.005)

    def _respawn(self, index: int) -> None:
        # Count the restart *before* the spawn: the new process only
        # becomes reachable partway through _spawn, so anything that
        # observes the revived shard (a close that reconnected, a
        # billing extract after recovery) is guaranteed to also observe
        # ``restarts`` >= 1.  The log entry trails because it carries
        # the measured recovery time; poll ``restart_log`` itself when
        # the timing is what you need.
        with self._state:
            self.restarts += 1
        recovery_s = self._spawn(index)
        with self._state:
            self.restart_log.append(
                {"shard": index, "recovery_s": round(recovery_s, 6)}
            )

    def _monitor(self) -> None:
        misses = [0] * self.shards
        tick = 0
        while not self._monitor_stop.wait(self.heartbeat_s):
            tick += 1
            for index in range(self.shards):
                if self._monitor_stop.is_set():
                    return
                with self._spawn_locks[index]:
                    process = self._processes[index]
                    if process is None:
                        continue
                    if not process.is_alive():
                        # A crashed shard restarts into bit-identical
                        # state from its WAL (replay on child start).
                        misses[index] = 0
                        self._respawn(index)
                        continue
                    if tick % 4 != 0:
                        continue
                    try:
                        self._monitor_endpoints[index].request(
                            wire.ServiceRequest(op=OP_PING)
                        )
                    except (TransportError, WireError, ServiceError):
                        misses[index] += 1
                    else:
                        misses[index] = 0
                    if misses[index] >= self.heartbeat_misses:
                        misses[index] = 0
                        process.kill()
                        process.join()
                        self._respawn(index)

    # -- admission -------------------------------------------------------------

    def shard_of(self, device: int) -> int:
        return device % self.shards

    def submit(
        self, device: int, seq: int, window: int, value: int
    ) -> AdmissionResult:
        """Route one submission to its shard over the socket.

        The LATE gate runs supervisor-side against the authoritative
        fold deadline, so a shard that restarted with a stale deadline
        can never accept a share for a closed window.
        """
        try:
            submission = ShareSubmission(
                device=device, seq=seq, window=window, value=value
            )
        except WireError as exc:
            raise ServiceError(f"malformed submission: {exc}") from exc
        with self._state:
            if self._stopped:
                raise ServiceError("shard supervisor is stopped")
            if window <= self._deadline or window in self._closed:
                self.late_total += 1
                self._late[window] = self._late.get(window, 0) + 1
                return AdmissionResult(Admission.LATE, window)
        shard = self.shard_of(device)
        reply = self._endpoints[shard].request(submission)
        if not isinstance(reply, wire.AdmissionReply):
            raise WireError(
                f"shard {shard} answered a submission with "
                f"{type(reply).__name__}"
            )
        result = admission_from_reply(reply)
        with self._state:
            if result.accepted:
                self._shard_accepted[shard] += 1
            elif result.admission is Admission.DUPLICATE:
                self._duplicates[window] = self._duplicates.get(window, 0) + 1
            elif result.admission is Admission.SHED:
                self._shed[window] = self._shed.get(window, 0) + 1
            elif result.admission is Admission.RETRY_AFTER:
                self._retried[window] = self._retried.get(window, 0) + 1
            elif result.admission is Admission.LATE:
                self.late_total += 1
                self._late[window] = self._late.get(window, 0) + 1
        return result

    # -- control plane ---------------------------------------------------------

    def _control(self, index: int, request: wire.ServiceRequest, trailing=None):
        """One control request, retried through shard restarts."""
        started = time.monotonic()
        while True:
            try:
                return self._endpoints[index].request(request, trailing=trailing)
            except TransportError as exc:
                if time.monotonic() - started > self.control_deadline_s:
                    raise ServiceError(
                        f"shard {index} unreachable for control op "
                        f"{request.op}: {exc}"
                    ) from exc
                time.sleep(0.02)

    def _stat(self, op: int) -> int:
        total = 0
        for index in range(self.shards):
            reply = self._control(index, wire.ServiceRequest(op=op))
            total += reply.value
        return total

    def pause(self) -> None:
        with self._state:
            self._paused = True
        for index in range(self.shards):
            self._control(index, wire.ServiceRequest(op=OP_PAUSE))

    def resume(self) -> None:
        with self._state:
            self._paused = False
        for index in range(self.shards):
            self._control(index, wire.ServiceRequest(op=OP_RESUME))

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def pending(self) -> int:
        """Accepted-but-unclosed submissions, exact even across lost acks
        (shard journals are the ground truth, not supervisor counters)."""
        return self._stat(OP_STAT_ACCEPTED) - self._closed_accepted

    @property
    def accepted_total(self) -> int:
        return self._stat(OP_STAT_ACCEPTED)

    @property
    def accepted_per_shard(self) -> tuple[int, ...]:
        return tuple(self._shard_accepted)

    @property
    def open_windows(self) -> tuple[int, ...]:
        # The supervisor does not mirror per-window sets; closes are
        # driven by the soak/client on a schedule, not by introspection.
        return ()

    @property
    def journal_records(self) -> int:
        return self._stat(OP_STAT_RECORDS) + self._fold.records

    # -- fault injection -------------------------------------------------------

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard process (the monitor restarts it); returns
        the killed pid."""
        if not 0 <= index < self.shards:
            raise ServiceError(f"no shard {index} in a {self.shards}-shard service")
        process = self._processes[index]
        if process is None or process.pid is None:
            raise ServiceError(f"shard {index} has no live process")
        pid = process.pid
        process.kill()
        return pid

    def inject_drop(self, index: int, count: int) -> None:
        """Make shard ``index`` admit-then-drop its next ``count``
        submission connections without replying (lost acks)."""
        self._control(
            index, wire.ServiceRequest(op=OP_FAULT_DROP, value=count)
        )

    def inject_delay(self, index: int, count: int, delay_s: float) -> None:
        """Make shard ``index`` stall its next ``count`` admission
        replies by ``delay_s`` (deadline-miss injection)."""
        self._control(
            index,
            wire.ServiceRequest(
                op=OP_FAULT_DELAY,
                window=count,
                value=int(delay_s * 1_000_000),
            ),
        )

    # -- window lifecycle ------------------------------------------------------

    def mark_degraded(self, window: int) -> None:
        with self._state:
            if window in self._closed or window <= self._deadline:
                raise ServiceError(f"window {window} is already closed")
            self._degraded_windows.add(window)

    def close_window(self, window: int) -> WindowSummary:
        """Close one window across every shard process; fold; journal.

        Each shard's ``CLOSE`` atomically advances that shard's deadline
        and returns its accepted set for the window; the request is
        retried through restarts (it is idempotent shard-side), so a
        kill *during* a close still converges.  The fold lands in
        ``fold.wal`` before the window is considered closed — a
        supervisor death before that append leaves the window open, and
        recovery re-closes it onto the same bits.
        """
        with self._close_lock:
            with self._state:
                if self._stopped:
                    raise ServiceError("shard supervisor is stopped")
                if window in self._closed or window <= self._deadline:
                    raise ServiceError(f"window {window} is already closed")
            shard_subs: dict[int, list[ShareSubmission]] = {}
            for index in range(self.shards):
                reply, extras = self._control(
                    index,
                    wire.ServiceRequest(op=OP_CLOSE_WINDOW, window=window),
                    trailing=OP_CLOSE_WINDOW,
                )
                submissions = []
                for record in extras:
                    if not isinstance(record, ShareSubmission):
                        raise WireError(
                            f"shard {index} streamed {type(record).__name__} "
                            "inside a close"
                        )
                    if record.window != window:
                        raise ServiceError(
                            f"shard {index} answered close({window}) with a "
                            f"window-{record.window} submission"
                        )
                    submissions.append(record)
                shard_subs[index] = submissions
            count = sum(len(subs) for subs in shard_subs.values())
            started = time.perf_counter_ns()
            result = self._aggregate(shard_subs, window)
            close_latency_us = (time.perf_counter_ns() - started) // 1000
            with self._state:
                summary = WindowSummary(
                    window=window,
                    accepted=count,
                    devices=len(
                        {s.device for subs in shard_subs.values() for s in subs}
                    ),
                    duplicates=self._duplicates.pop(window, 0),
                    late=self._late.pop(window, 0),
                    shed=self._shed.pop(window, 0),
                    retried=self._retried.pop(window, 0),
                    total=result.total,
                    expected=result.expected,
                    degraded=window in self._degraded_windows,
                    close_latency_us=close_latency_us,
                    recovered=self.recovered,
                )
            self._fold.append_close(summary)
            with self._state:
                self._closed[window] = summary
                self._closed_accepted += count
                self._degraded_windows.discard(window)
                self._deadline = window
            self.last_close_submissions = tuple(
                sorted(
                    (s for subs in shard_subs.values() for s in subs),
                    key=lambda s: (s.device, s.seq),
                )
            )
            return summary

    def window_records(self) -> list[WindowSummary]:
        with self._state:
            return [self._closed[w] for w in sorted(self._closed)]

    # -- shutdown --------------------------------------------------------------

    def _stop_monitor(self) -> None:
        self._monitor_stop.set()
        if self._monitor_thread.is_alive():
            self._monitor_thread.join(timeout=5.0)

    def stop(self) -> None:
        """Graceful stop: SHUTDOWN every shard, reap, release the lock."""
        with self._state:
            if self._stopped:
                return
            self._stopped = True
        self._stop_monitor()
        for index in range(self.shards):
            try:
                self._endpoints[index].request(
                    wire.ServiceRequest(op=OP_SHUTDOWN)
                )
            except (TransportError, WireError, ServiceError):
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join()
        self._teardown()

    def hard_stop(self) -> None:
        """The kill model: SIGKILL every shard process, no drain.

        Journal-before-ack makes this safe at any instant — every
        acknowledged share is fsync'd in some shard WAL, and the next
        supervisor over this directory re-verifies and resumes
        bit-identically.
        """
        with self._state:
            if self._stopped:
                return
            self._stopped = True
        self._stop_monitor()
        for process in self._processes:
            if process is not None and process.is_alive():
                process.kill()
        for process in self._processes:
            if process is not None:
                process.join(timeout=5.0)
        self._teardown()

    def _teardown(self) -> None:
        for endpoint in self._endpoints + self._monitor_endpoints:
            endpoint.close()
        self._fold.sync()
        self._fold.close()
        self._lock.release()
