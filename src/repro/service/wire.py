"""The service wire format: flat-scalar records, CRC-framed.

The sharded campaign layer earned its flat IPC with
:class:`~repro.core.metrics.RoundSummary` — every round reduces to a
fixed handful of scalars, however many nodes stand behind it.  The
service wire format generalises exactly that discipline into a byte
encoding: a record is a **flat-scalar dataclass** (every field an
``int``, ``float``, ``bool`` or ``None``), encoded field by field with
one type tag each, so any record kind serialises to a small, schema-free
frame a replaying daemon can decode without pickle (and without trusting
the writer's class definitions).

Record kinds carried on the wire / in the window journal:

* :class:`ShareSubmission` — one device's share submission for one
  billing window (``SUBMIT`` frames).
* :class:`~repro.core.metrics.WindowSummary` — one closed window
  (``WINDOW_CLOSE`` frames).

Record kinds carried on the *socket* transport only (never journaled):

* :class:`AdmissionReply` — the daemon's answer to a ``SUBMIT`` frame,
  the :class:`~repro.service.daemon.AdmissionResult` contract as bytes.
* :class:`ServiceRequest` / :class:`ServiceReply` — the control plane
  (ping, close-window, pause/resume, stats, fault injection, shutdown).
* :class:`ErrorReply` — a structured failure the peer can re-raise.

Framing: ``encode_record`` produces ``kind + field-count + fields``;
:func:`frame` wraps that in ``magic + length + crc32`` for transport
(the window journal instead rides :class:`repro.diskcache.AppendLog`,
whose frames carry the same CRC discipline).
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from dataclasses import dataclass
from typing import Any

from repro.core.metrics import WindowSummary
from repro.errors import WireError

__all__ = [
    "SUBMIT",
    "WINDOW_CLOSE",
    "DEVICE_TOTAL",
    "STORE_CHECKPOINT",
    "ADMISSION_REPLY",
    "SERVICE_REQUEST",
    "SERVICE_REPLY",
    "ERROR_REPLY",
    "AdmissionReply",
    "DeviceTotal",
    "ErrorReply",
    "ServiceReply",
    "ServiceRequest",
    "ShareSubmission",
    "StoreCheckpoint",
    "encode_record",
    "decode_record",
    "frame",
    "unframe",
]

#: Record kind tags (one byte on the wire).
SUBMIT = 1
WINDOW_CLOSE = 2
DEVICE_TOTAL = 3
STORE_CHECKPOINT = 4
#: Socket-transport-only kinds (a journal replay treats them as foreign).
ADMISSION_REPLY = 5
SERVICE_REQUEST = 6
SERVICE_REPLY = 7
ERROR_REPLY = 8

#: Transport frame magic (the journal uses AppendLog's own framing).
FRAME_MAGIC = b"RW"

_FRAME_HEADER = struct.Struct(">2sII")
_DOUBLE = struct.Struct(">d")
_INT64 = struct.Struct(">q")

#: Ints outside the 64-bit range use a length-prefixed big-int tag, so
#: full field elements (and anything bigger) still round-trip exactly.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


@dataclass(frozen=True, slots=True)
class ShareSubmission:
    """One device's share submission for one billing window.

    ``seq`` is the device's own submission counter; ``(device, seq)``
    is the deduplication identity, so a client that re-sends after a
    lost acknowledgment can never double-count a reading.  ``value`` is
    the submitted share/reading (a field element — arbitrary size ints
    round-trip).  ``window`` is the billing window the daemon resolved
    the submission into at admission time; journaling the *resolved*
    window is what makes replay independent of wall clocks.
    """

    device: int
    seq: int
    window: int
    value: int

    def __post_init__(self) -> None:
        for name in ("device", "seq", "window"):
            field_value = getattr(self, name)
            if not isinstance(field_value, int) or isinstance(field_value, bool):
                raise WireError(f"ShareSubmission.{name} must be an integer")
            if field_value < 0:
                raise WireError(f"ShareSubmission.{name} must be >= 0")
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise WireError("ShareSubmission.value must be an integer")


@dataclass(frozen=True, slots=True)
class DeviceTotal:
    """One device's compacted billing total (result-store records only).

    The result store's compaction folds the per-window contributions of
    retired windows into one of these per device: ``total`` is the exact
    integer sum of the device's accepted readings over ``windows``
    closed windows up to and including ``through_window``.  Folding is
    associative, so repeated compactions merge totals without ever
    changing a device's billed sum — the bit-for-bit retention contract.
    """

    device: int
    through_window: int
    windows: int
    total: int

    def __post_init__(self) -> None:
        for name in ("device", "through_window", "windows"):
            field_value = getattr(self, name)
            if not isinstance(field_value, int) or isinstance(field_value, bool):
                raise WireError(f"DeviceTotal.{name} must be an integer")
            if field_value < 0:
                raise WireError(f"DeviceTotal.{name} must be >= 0")
        if not isinstance(self.total, int) or isinstance(self.total, bool):
            raise WireError("DeviceTotal.total must be an integer")


@dataclass(frozen=True, slots=True)
class StoreCheckpoint:
    """The result store's compaction horizon (result-store records only).

    Every window ``<= through_window`` has been folded into
    :class:`DeviceTotal` records (or was empty and retired).  The store
    refuses to re-ingest or re-publish windows at or below its horizon,
    which is what makes journal ingest idempotent *across* compactions —
    without it, a reopen would pull a retired window back out of the
    daemon's journals and double-bill it.
    """

    through_window: int

    def __post_init__(self) -> None:
        if not isinstance(self.through_window, int) or isinstance(
            self.through_window, bool
        ):
            raise WireError("StoreCheckpoint.through_window must be an integer")
        if self.through_window < 0:
            raise WireError("StoreCheckpoint.through_window must be >= 0")


@dataclass(frozen=True, slots=True)
class AdmissionReply:
    """One ``submit`` outcome as a transport frame.

    ``admission`` carries the :class:`~repro.service.daemon.Admission`
    *value string* (``"accepted"``, ``"duplicate"``, ...) so the reply
    round-trips without this module importing the daemon's enum; the
    transport converts to/from :class:`AdmissionResult` at the edges
    and rejects unknown strings there.
    """

    admission: str
    window: int
    retry_after_s: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.admission, str) or not self.admission:
            raise WireError("AdmissionReply.admission must be a non-empty str")
        if not isinstance(self.window, int) or isinstance(self.window, bool):
            raise WireError("AdmissionReply.window must be an integer")
        if self.retry_after_s is not None and not isinstance(
            self.retry_after_s, float
        ):
            raise WireError("AdmissionReply.retry_after_s must be float or None")


@dataclass(frozen=True, slots=True)
class ServiceRequest:
    """One control-plane request to a shard server (``op`` from
    :mod:`repro.service.transport`; ``window``/``value`` are op-specific
    operands, 0 when unused)."""

    op: int
    window: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        for name in ("op", "window", "value"):
            field_value = getattr(self, name)
            if not isinstance(field_value, int) or isinstance(field_value, bool):
                raise WireError(f"ServiceRequest.{name} must be an integer")
        if self.op < 1:
            raise WireError("ServiceRequest.op must be >= 1")


@dataclass(frozen=True, slots=True)
class ServiceReply:
    """A shard server's answer to a :class:`ServiceRequest`.

    ``value`` is op-specific (a stat counter, a submission count for a
    close — the close's submission frames follow this reply on the same
    connection).
    """

    op: int
    ok: bool
    value: int = 0

    def __post_init__(self) -> None:
        for name in ("op", "value"):
            field_value = getattr(self, name)
            if not isinstance(field_value, int) or isinstance(field_value, bool):
                raise WireError(f"ServiceReply.{name} must be an integer")
        if not isinstance(self.ok, bool):
            raise WireError("ServiceReply.ok must be a bool")


@dataclass(frozen=True, slots=True)
class ErrorReply:
    """A structured failure frame (``code`` names the exception class to
    re-raise on the client: ``"service"`` → :class:`ServiceError`,
    ``"wire"`` → :class:`WireError`)."""

    code: str
    message: str

    def __post_init__(self) -> None:
        for name in ("code", "message"):
            if not isinstance(getattr(self, name), str):
                raise WireError(f"ErrorReply.{name} must be a str")
        if not self.code:
            raise WireError("ErrorReply.code must be non-empty")


#: kind tag -> record dataclass; the decode side of the registry.
RECORD_TYPES: dict[int, type] = {
    SUBMIT: ShareSubmission,
    WINDOW_CLOSE: WindowSummary,
    DEVICE_TOTAL: DeviceTotal,
    STORE_CHECKPOINT: StoreCheckpoint,
    ADMISSION_REPLY: AdmissionReply,
    SERVICE_REQUEST: ServiceRequest,
    SERVICE_REPLY: ServiceReply,
    ERROR_REPLY: ErrorReply,
}


def _encode_scalar(value: Any) -> bytes:
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"T" if value else b"F"
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return b"i" + _INT64.pack(value)
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        if len(raw) > 0xFFFF:
            raise WireError("integer field too large to frame")
        return b"I" + len(raw).to_bytes(2, "big") + raw
    if isinstance(value, float):
        return b"f" + _DOUBLE.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise WireError("string field too large to frame")
        return b"s" + len(raw).to_bytes(2, "big") + raw
    raise WireError(
        f"wire records carry flat scalars only, got {type(value).__name__}"
    )


def _decode_scalar(data: bytes, offset: int) -> tuple[Any, int]:
    try:
        tag = data[offset : offset + 1]
        if tag == b"N":
            return None, offset + 1
        if tag == b"T":
            return True, offset + 1
        if tag == b"F":
            return False, offset + 1
        if tag == b"i":
            (value,) = _INT64.unpack_from(data, offset + 1)
            return value, offset + 1 + _INT64.size
        if tag == b"I":
            length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            end = offset + 3 + length
            raw = data[offset + 3 : end]
            if len(raw) < length:
                raise WireError("truncated big-int field")
            return int.from_bytes(raw, "big", signed=True), end
        if tag == b"f":
            (value,) = _DOUBLE.unpack_from(data, offset + 1)
            return value, offset + 1 + _DOUBLE.size
        if tag == b"s":
            length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            end = offset + 3 + length
            raw = data[offset + 3 : end]
            if len(raw) < length:
                raise WireError("truncated string field")
            try:
                return raw.decode("utf-8"), end
            except UnicodeDecodeError:
                raise WireError("string field is not valid UTF-8") from None
    except struct.error:
        raise WireError("truncated scalar field") from None
    raise WireError(f"unknown scalar tag {tag!r}")


def encode_record(record: Any) -> bytes:
    """Encode a registered flat-scalar record to its wire payload."""
    for kind, cls in RECORD_TYPES.items():
        if isinstance(record, cls):
            break
    else:
        raise WireError(
            f"{type(record).__name__} is not a registered wire record"
        )
    parts = [bytes([kind])]
    fields = dataclasses.fields(record)
    if len(fields) > 0xFF:  # pragma: no cover - records are small
        raise WireError("too many fields for a wire record")
    parts.append(bytes([len(fields)]))
    for spec_field in fields:
        parts.append(_encode_scalar(getattr(record, spec_field.name)))
    return b"".join(parts)


def decode_record(payload: bytes) -> Any:
    """Decode one wire payload back into its record dataclass."""
    if len(payload) < 2:
        raise WireError("wire payload shorter than its header")
    kind, count = payload[0], payload[1]
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        raise WireError(f"unknown wire record kind {kind}")
    fields = dataclasses.fields(cls)
    if count != len(fields):
        raise WireError(
            f"{cls.__name__} frame carries {count} fields, "
            f"expected {len(fields)}"
        )
    values = []
    offset = 2
    for _ in range(count):
        value, offset = _decode_scalar(payload, offset)
        values.append(value)
    if offset != len(payload):
        raise WireError(f"{len(payload) - offset} trailing bytes after record")
    return cls(*values)


def frame(record: Any) -> bytes:
    """Transport framing: ``magic + length + crc32 + payload``."""
    payload = encode_record(record)
    return _FRAME_HEADER.pack(
        FRAME_MAGIC, len(payload), zlib.crc32(payload)
    ) + payload


def unframe(data: bytes) -> Any:
    """Decode one transport frame (strict: exact length, valid CRC)."""
    if len(data) < _FRAME_HEADER.size:
        raise WireError("frame shorter than its header")
    magic, length, crc = _FRAME_HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    payload = data[_FRAME_HEADER.size :]
    if len(payload) != length:
        raise WireError(
            f"frame length mismatch: header says {length}, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise WireError("frame CRC mismatch")
    return decode_record(payload)
