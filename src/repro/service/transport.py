"""The socket transport: length-prefixed wire frames over TCP localhost.

This module is the *byte-moving* half of the cross-process service
boundary (the process-owning half is :mod:`repro.service.supervisor`).
It reuses the :mod:`repro.service.wire` codec verbatim — a transport
frame is exactly ``wire.frame(record)``: ``RW`` magic + payload length
+ crc32 + flat-scalar payload — and adds only what sockets need:

* **stream framing** over any ``recv(n) -> bytes`` callable
  (:func:`read_frame`), strict at every layer: bad magic, an oversized
  length (refused *before* allocation), a CRC mismatch or an
  undecodable payload raise :class:`~repro.errors.WireError`; a peer
  that vanishes mid-frame raises :class:`~repro.errors.TransportError`.
  Malformed bytes can never hang the reader or crash the interpreter.
* **per-request deadlines** — every request sets a socket timeout; a
  deadline miss closes the connection (a half-read reply must never
  desynchronise the stream) and surfaces as ``TransportError``.
* a client-side :class:`RetryPolicy` — decorrelated-jitter backoff in
  the exact shape of ``CampaignExecutor._backoff_delay``, honoring the
  daemon's ``retry_after_s`` hints, capped by a total deadline.  It
  retries precisely the *unknown-outcome* (``TransportError``) and
  *transient* (``RETRY_AFTER``) cases; the idempotent ``(device, seq)``
  identity makes a re-send after a lost ack come back ``DUPLICATE``,
  which callers treat as success.
* :class:`ShardEndpoint` — one persistent connection to one shard
  server, re-resolved and re-dialed after any error (a restarted shard
  listens on a fresh port).
* :class:`SocketRecordServer` — the accept-loop a shard server runs:
  thread per connection, one reply (plus optional trailing frames) per
  request, structured :class:`~repro.service.wire.ErrorReply` frames
  for handler failures, and a :data:`DROP_CONNECTION` escape hatch for
  fault injection (admit, then slam the connection — a real lost ack).
"""

from __future__ import annotations

import random
import socket
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ServiceError, TransportError, WireError
from repro.lintkit.lockdep import ordered_lock
from repro.service import wire
from repro.service.daemon import Admission, AdmissionResult

__all__ = [
    "DROP_CONNECTION",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "ShardEndpoint",
    "SocketRecordServer",
    "admission_from_reply",
    "admission_to_reply",
    "read_frame",
    "recv_record",
    "send_record",
]

#: Hard cap on one frame's payload (a submission is tens of bytes; even
#: a full window of trailing close frames ships frame by frame).  An
#: advertised length past this is refused before any allocation.
MAX_FRAME_BYTES = 1 << 20

#: Control-plane ops (``ServiceRequest.op``).
OP_PING = 1
OP_CLOSE_WINDOW = 2
OP_PAUSE = 3
OP_RESUME = 4
OP_STAT_RECORDS = 5
OP_STAT_ACCEPTED = 6
OP_FAULT_DROP = 7
OP_FAULT_DELAY = 8
OP_SHUTDOWN = 9

#: Handler return sentinel: close the connection without replying.
DROP_CONNECTION = object()

_HEADER_SIZE = wire._FRAME_HEADER.size


# -- admission <-> frame conversion -------------------------------------------


def admission_to_reply(result: AdmissionResult) -> wire.AdmissionReply:
    """The daemon's admission answer as a transport frame."""
    return wire.AdmissionReply(
        admission=result.admission.value,
        window=result.window,
        retry_after_s=result.retry_after_s,
    )


def admission_from_reply(reply: wire.AdmissionReply) -> AdmissionResult:
    """Decode an :class:`AdmissionReply`; unknown outcome strings are a
    wire error (a skewed peer, not a transient)."""
    try:
        admission = Admission(reply.admission)
    except ValueError:
        raise WireError(
            f"unknown admission outcome {reply.admission!r} on the wire"
        ) from None
    return AdmissionResult(admission, reply.window, reply.retry_after_s)


# -- stream framing ------------------------------------------------------------


def _read_exact(recv: Callable[[int], bytes], n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``TransportError`` (never spin)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        piece = recv(remaining)
        if not piece:
            raise TransportError(
                f"connection closed {n - remaining} byte(s) into a "
                f"{n}-byte read"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_frame(recv: Callable[[int], bytes]) -> Any | None:
    """Read and decode one frame from a byte stream.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    between requests).  Anything malformed — bad magic, a length past
    :data:`MAX_FRAME_BYTES` (checked before the payload is read), a CRC
    mismatch, an undecodable record — raises ``WireError``; an EOF
    *inside* a frame raises ``TransportError``.
    """
    first = recv(_HEADER_SIZE)
    if not first:
        return None
    if len(first) < _HEADER_SIZE:
        first += _read_exact(recv, _HEADER_SIZE - len(first))
    magic, length, crc = wire._FRAME_HEADER.unpack(first)
    if magic != wire.FRAME_MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame advertises {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte transport cap"
        )
    payload = _read_exact(recv, length) if length else b""
    if zlib.crc32(payload) != crc:
        raise WireError("frame CRC mismatch")
    return wire.decode_record(payload)


def send_record(sock: socket.socket, record: Any) -> None:
    """Frame and send one record (``TransportError`` on a dead peer)."""
    try:
        sock.sendall(wire.frame(record))
    except (OSError, ValueError) as exc:
        raise TransportError(f"send failed: {exc}") from exc


def recv_record(sock: socket.socket) -> Any | None:
    """Read one frame from a socket (deadline = the socket's timeout)."""

    def recv(n: int) -> bytes:
        try:
            return sock.recv(n)
        except socket.timeout as exc:
            raise TransportError("request deadline exceeded") from exc
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc

    return read_frame(recv)


# -- client-side retry ---------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Idempotent re-send policy for ``submit`` (and control requests).

    Retries ``TransportError`` (outcome unknown — the ``(device, seq)``
    identity makes the re-send safe; a ``DUPLICATE`` answer means the
    first send landed and is returned as-is, i.e. treated as success by
    idempotent callers) and ``RETRY_AFTER`` answers (transient pressure;
    sleeps at least the daemon's ``retry_after_s`` hint).  Every other
    outcome — ``ACCEPTED``, ``DUPLICATE``, ``LATE``, ``SHED`` — is final
    and returned immediately.  Backoff between attempts is decorrelated
    jitter in the exact shape of ``CampaignExecutor._backoff_delay``
    (re-stated here so the service layer does not import the analysis
    stack): ``min(cap, uniform(base, max(base, prev * 3)))``.

    ``ServiceError`` (a broken contract, a stopped client) is never
    retried.  When every attempt fails, raises ``ServiceError`` chaining
    the last transport error.
    """

    max_attempts: int = 12
    backoff_base_s: float = 0.002
    max_backoff_s: float = 0.25
    total_deadline_s: float = 30.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ServiceError("RetryPolicy backoff bounds must be >= 0")
        if self.total_deadline_s <= 0:
            raise ServiceError(
                f"RetryPolicy.total_deadline_s must be > 0, "
                f"got {self.total_deadline_s}"
            )

    def _delay(self, rng: random.Random, prev_s: float) -> float:
        # CampaignExecutor._backoff_delay's decorrelated-jitter recipe.
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.max_backoff_s,
            rng.uniform(
                self.backoff_base_s, max(self.backoff_base_s, prev_s * 3.0)
            ),
        )

    def run(
        self,
        send: Callable[[], AdmissionResult],
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> AdmissionResult:
        """Drive ``send`` to a final admission under this policy."""
        rng = random.Random(self.seed)
        started = clock()
        prev_delay = self.backoff_base_s
        last_error: TransportError | None = None
        attempt = 0
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = send()
            except TransportError as exc:
                last_error = exc
                delay = self._delay(rng, prev_delay)
            else:
                if not result.retryable:
                    return result
                last_error = None
                delay = max(result.retry_after_s or 0.0, self._delay(rng, prev_delay))
            prev_delay = max(prev_delay, delay)
            if attempt >= self.max_attempts:
                break
            if clock() - started + delay > self.total_deadline_s:
                break
            sleep(delay)
        detail = (
            f"last transport error: {last_error}"
            if last_error is not None
            else "still RETRY_AFTER"
        )
        raise ServiceError(
            f"retry budget exhausted after {attempt} attempt(s) "
            f"({self.total_deadline_s}s deadline); {detail}"
        ) from last_error


# -- client-side endpoint ------------------------------------------------------


class ShardEndpoint:
    """One persistent, self-healing connection to one shard server.

    ``resolve`` returns the shard's current ``(host, port)`` — it is
    re-invoked on every (re)connect, because a restarted shard process
    listens on a fresh ephemeral port.  Any error on a request closes
    the connection (a timed-out request may leave an unread reply in
    the stream; reconnecting is the only safe resynchronisation) and
    the next request re-dials.  A lock serializes requests, so many
    producer threads can share one endpoint.
    """

    def __init__(
        self,
        resolve: Callable[[], tuple[str, int]],
        request_deadline_s: float = 5.0,
    ):
        if request_deadline_s <= 0:
            raise ServiceError(
                f"request_deadline_s must be > 0, got {request_deadline_s}"
            )
        self._resolve = resolve
        self.request_deadline_s = request_deadline_s
        self._sock: socket.socket | None = None
        self._lock = ordered_lock("transport.endpoint")

    def _connected(self) -> socket.socket:
        if self._sock is None:
            host, port = self._resolve()
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.request_deadline_s
                )
            except OSError as exc:
                raise TransportError(
                    f"connect to {host}:{port} failed: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def request(
        self, record: Any, trailing: int | None = None
    ) -> Any | tuple[Any, list[Any]]:
        """Send one record, read the reply (strict, deadline-bound).

        With ``trailing=op``, and the reply being a successful
        ``ServiceReply`` for that op, also reads ``reply.value``
        trailing frames (the close-window submission stream).  An
        :class:`~repro.service.wire.ErrorReply` re-raises as the named
        error class; a mid-request failure of any kind drops the
        connection before propagating.
        """
        with self._lock:
            try:
                sock = self._connected()
                sock.settimeout(self.request_deadline_s)
                send_record(sock, record)
                reply = recv_record(sock)
                if reply is None:
                    raise TransportError("peer closed before replying")
                extras: list[Any] = []
                if (
                    trailing is not None
                    and isinstance(reply, wire.ServiceReply)
                    and reply.op == trailing
                    and reply.ok
                ):
                    for _ in range(reply.value):
                        extra = recv_record(sock)
                        if extra is None:
                            raise TransportError(
                                "peer closed mid trailing stream"
                            )
                        extras.append(extra)
            except (TransportError, WireError):
                self._drop()
                raise
            if isinstance(reply, wire.ErrorReply):
                error_cls = WireError if reply.code == "wire" else ServiceError
                raise error_cls(f"shard error: {reply.message}")
            if trailing is not None:
                return reply, extras
            return reply

    def close(self) -> None:
        with self._lock:
            self._drop()


# -- server-side accept loop ---------------------------------------------------


class SocketRecordServer:
    """Thread-per-connection frame server around a ``handler(record)``.

    The handler returns the list of records to send back (first the
    reply, then any trailing frames), or :data:`DROP_CONNECTION` to
    close the connection without replying (fault injection).  Handler
    exceptions become structured :class:`~repro.service.wire.ErrorReply`
    frames — a client bug or a fault can never kill the server; a
    malformed *frame* from the peer is answered with a ``wire`` error
    and the connection closed (the stream position is unknowable).
    """

    def __init__(self, handler: Callable[[Any], Any], host: str = "127.0.0.1"):
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()
        self._stopping = threading.Event()

    def serve_forever(self) -> None:
        """Accept until :meth:`stop`; returns after the listener closes."""
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stopping.is_set():
                try:
                    record = recv_record(conn)
                except WireError as exc:
                    try:
                        send_record(
                            conn, wire.ErrorReply(code="wire", message=str(exc))
                        )
                    except TransportError:
                        pass
                    return
                except TransportError:
                    return
                if record is None:
                    return
                try:
                    replies = self._handler(record)
                except ServiceError as exc:
                    replies = [
                        wire.ErrorReply(code="service", message=str(exc))
                    ]
                except Exception as exc:  # noqa: BLE001 - server must survive
                    replies = [
                        wire.ErrorReply(code="internal", message=repr(exc))
                    ]
                if replies is DROP_CONNECTION:
                    return
                try:
                    for reply in replies:
                        send_record(conn, reply)
                except TransportError:
                    return

    def stop(self) -> None:
        """Stop accepting and unblock :meth:`serve_forever`."""
        self._stopping.set()
        # Closing the listener does not wake a thread blocked in
        # accept() on Linux; poke it with a throwaway connection first.
        try:
            with socket.create_connection((self.host, self.port), timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
