"""The concurrent ingestion front: a real queue boundary before the WAL.

:class:`IngestFront` is the thread-pool front end of the service: N
producer threads (device gateways, load generators, test harnesses)
call :meth:`submit` concurrently; each call enqueues one submission on a
bounded :class:`queue.Queue` and returns a :class:`concurrent.futures
.Future` that resolves to the daemon's explicit
:class:`~repro.service.daemon.AdmissionResult`.  Dispatcher threads
drain the queue into the sharded daemon, whose per-shard WAL remains the
**serialization point**: a submission's fate is decided exactly when its
journal append lands, never by queue position, so journal-before-ack
survives the extra hop — an acknowledged future means a journaled share.

The queue is pure backpressure plumbing.  It carries no durability (a
kill loses everything in flight, which is exactly the pre-ack loss the
dedup identity ``(device, seq)`` already covers: the producer re-sends
and is answered ``ACCEPTED`` or ``DUPLICATE``, never double-counted) and
no ordering promises beyond what the daemon's admission rules enforce.
When the queue is full, :meth:`submit` answers ``RETRY_AFTER``
immediately instead of blocking the producer — the same shed-early
stance the daemon takes at its own ``queue_capacity``.

:meth:`barrier` flushes the front: it blocks until every submission
enqueued *before* the call has been admitted (or refused) by the
daemon.  Window closes run behind the barrier, so "close window N" has
the same meaning it has against a bare daemon.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future

from repro.errors import ServiceError
from repro.lintkit.lockdep import ordered_lock
from repro.service.daemon import Admission, AdmissionResult

__all__ = ["IngestFront"]

#: Sentinel telling a dispatcher thread to exit.
_STOP = object()


class IngestFront:
    """Bounded-queue, multi-dispatcher front end over one daemon.

    ``daemon`` is anything with the daemon ``submit`` signature
    (:class:`ServiceDaemon` or :class:`ShardedServiceDaemon`); the front
    never inspects daemon state beyond calling ``submit``.

    ``dispatchers`` bounds write concurrency *into* the daemon.  The
    daemon's per-shard locks already serialize each journal, so more
    dispatchers than shards buys nothing; fewer serializes cross-shard
    traffic at the front.  ``capacity`` bounds in-flight submissions —
    enqueued but not yet admitted — and is the front's backpressure
    surface.
    """

    def __init__(self, daemon, capacity: int = 1024, dispatchers: int = 1):
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if dispatchers < 1:
            raise ServiceError(f"dispatchers must be >= 1, got {dispatchers}")
        self.daemon = daemon
        self.capacity = capacity
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._closed = False
        self._close_lock = ordered_lock("ingest.close")
        self.enqueued_total = 0
        self.refused_total = 0
        self._threads = [
            threading.Thread(
                target=self._dispatch, name=f"ingest-dispatch-{i}", daemon=True
            )
            for i in range(dispatchers)
        ]
        for thread in self._threads:
            thread.start()

    # -- producer side ---------------------------------------------------------

    def submit(
        self, device: int, seq: int, window: int, value: int
    ) -> "Future[AdmissionResult]":
        """Enqueue one submission; the future resolves to its admission.

        Never blocks on a full queue: the future resolves immediately to
        ``RETRY_AFTER`` so producers can apply their own retry policy.
        """
        future: Future[AdmissionResult] = Future()
        with self._close_lock:
            if self._closed:
                raise ServiceError("ingestion front is stopped")
            try:
                self._queue.put_nowait((future, device, seq, window, value))
            except queue.Full:
                self.refused_total += 1
                future.set_result(
                    AdmissionResult(Admission.RETRY_AFTER, window)
                )
                return future
            self.enqueued_total += 1
        return future

    def barrier(self) -> None:
        """Block until everything enqueued before this call is admitted."""
        self._queue.join()

    # -- dispatcher side -------------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            future, device, seq, window, value = item
            try:
                result = self.daemon.submit(device, seq, window, value)
            except BaseException as exc:  # noqa: BLE001 - relayed to the caller
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                self._queue.task_done()

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        """Flush the queue, then stop every dispatcher (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.join()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()

    def kill(self) -> None:
        """Simulated hard kill: stop accepting, abandon the queue.

        In-flight submissions are lost pre-ack, exactly like a process
        kill — producers re-send under ``(device, seq)`` and the dedup
        identity keeps anything journaled from double-counting.  The
        dispatchers drain what is queued (failing fast against the
        killed daemon's closed journals, each failure relayed to its
        future) and then exit.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)

    def __enter__(self) -> "IngestFront":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
