"""ServiceClient: the one API in front of the sharded service.

Everything that used to talk to :class:`ServiceDaemon` directly — the
soak driver, the smoke benches, tests, the CLI — now goes through
:class:`ServiceClient`, which wires the three service halves together
behind one surface:

* the **sharded daemon** (:class:`~repro.service.daemon
  .ShardedServiceDaemon`): per-shard WALs, fold journal, admission;
* the **ingestion front** (:class:`~repro.service.ingest.IngestFront`),
  when ``transport="queue"``: a bounded queue + dispatcher threads
  between producers and the WALs;
* the **result store** (:class:`~repro.service.store.ResultStore`):
  every window close is published to it, and :meth:`query` answers from
  it — including after a hard kill, because the client heals the store
  from the daemon's journals on construction.

The three transports share one interface.  ``transport="inproc"`` calls
the daemon inline (submission admitted on the caller's thread);
``transport="queue"`` routes through the front (submission admitted on
a dispatcher thread, the caller blocks on the acknowledgment future);
``transport="socket"`` replaces the in-process daemon with a
:class:`~repro.service.supervisor.ShardSupervisor` — one daemon
*process* per shard journal, reached over TCP localhost, supervised and
restarted on crash.  Every transport returns the daemon's explicit
:class:`~repro.service.daemon.AdmissionResult` and an acknowledged
``ACCEPTED`` means a journaled share — queue and socket add concurrency
and a process boundary, not new semantics.

Retry semantics are opt-in and transport-uniform: pass
``retry=RetryPolicy(...)`` to :meth:`submit` (or set a client-wide
default at construction) and transient outcomes — ``RETRY_AFTER``
backpressure on any transport, connection loss and deadline misses on
``socket`` — are absorbed by decorrelated-jitter re-sends under the
idempotent ``(device, seq)`` identity.

Restart-resume is the constructor: build a new client over the same
service directory and the daemon recovers (re-verifying journaled
closes bit-for-bit), the store replays its own log, and
``store.ingest`` idempotently pulls in any close the kill separated
from its store publish.
"""

from __future__ import annotations

import os
import pathlib

from repro.core.metrics import WindowSummary
from repro.errors import ServiceError
from repro.service.daemon import (
    AdmissionResult,
    ServiceConfig,
    ShardedServiceDaemon,
)
from repro.service.ingest import IngestFront
from repro.service.store import DeviceBill, ResultStore
from repro.service.transport import RetryPolicy

__all__ = ["ServiceClient", "query_store"]

#: Transports the client speaks; all present the same interface.
TRANSPORTS = ("inproc", "queue", "socket")

#: The result store's filename inside a service directory.
STORE_NAME = "results.store"


class ServiceClient:
    """One handle over daemon + ingestion front + result store.

    ``service_dir`` is the service instance's home: shard journals, the
    fold journal and the result store all live under it, so "the same
    service" across restarts means "the same directory".  ``shards``,
    ``transport``, ``capacity`` and ``dispatchers`` size the scale-out;
    defaults give the PR-7 shape (one shard, in-process calls).
    """

    def __init__(
        self,
        config: ServiceConfig,
        service_dir: str | os.PathLike,
        shards: int = 1,
        transport: str = "inproc",
        capacity: int = 1024,
        dispatchers: int | None = None,
        retry: RetryPolicy | None = None,
        request_deadline_s: float = 5.0,
    ):
        if transport not in TRANSPORTS:
            raise ServiceError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.service_dir = pathlib.Path(service_dir)
        self.transport = transport
        self._stopped = False
        self._retry = retry
        self.daemon: ShardedServiceDaemon | None = None
        self.supervisor = None
        if transport == "socket":
            from repro.service.supervisor import ShardSupervisor

            self.supervisor = ShardSupervisor(
                config,
                self.service_dir,
                shards=shards,
                request_deadline_s=request_deadline_s,
            )
            self._core = self.supervisor
        else:
            self.daemon = ShardedServiceDaemon(
                config, self.service_dir, shards=shards
            )
            self._core = self.daemon
        self.store = ResultStore(
            self.service_dir / STORE_NAME, fsync=config.fsync
        )
        # Heal the store <-> fold gap: a kill between the fold append
        # and the store publish leaves a journaled close the store never
        # saw; ingest is idempotent, so this is a no-op otherwise.
        self.store.ingest(self.service_dir)
        self._front: IngestFront | None = None
        if transport == "queue":
            self._front = IngestFront(
                self.daemon,
                capacity=capacity,
                dispatchers=dispatchers or max(1, shards),
            )

    # -- convenience passthroughs ----------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._core.config

    @property
    def shards(self) -> int:
        return self._core.shards

    @property
    def recovered(self) -> bool:
        """Whether the daemon restarted over an existing journal set."""
        return self._core.recovered

    @property
    def paused(self) -> bool:
        return self._core.paused

    @property
    def pending(self) -> int:
        return self._core.pending

    @property
    def accepted_total(self) -> int:
        return self._core.accepted_total

    @property
    def accepted_per_shard(self) -> tuple[int, ...]:
        return self._core.accepted_per_shard

    @property
    def open_windows(self) -> tuple[int, ...]:
        return self._core.open_windows

    @property
    def journal_records(self) -> int:
        """Valid records across every shard journal plus the fold journal
        (on the socket transport, summed over the live shard processes)."""
        return self._core.journal_records

    @property
    def restarts(self) -> int:
        """Shard-process restarts the supervisor performed (socket only)."""
        return self.supervisor.restarts if self.supervisor is not None else 0

    def shard_of(self, device: int) -> int:
        return self._core.shard_of(device)

    # -- ingestion -------------------------------------------------------------

    def _submit_once(
        self, device: int, seq: int, window: int, value: int
    ) -> AdmissionResult:
        if self._stopped:
            raise ServiceError("service client is stopped")
        if self._front is not None:
            return self._front.submit(device, seq, window, value).result()
        return self._core.submit(device, seq, window, value)

    def submit(
        self,
        device: int,
        seq: int,
        window: int,
        value: int,
        retry: RetryPolicy | None = None,
    ) -> AdmissionResult:
        """Submit one reading; blocks until its admission is decided.

        Same signature and semantics on every transport; on ``queue``
        the decision happens on a dispatcher thread and this call waits
        for the acknowledgment future; on ``socket`` it crosses the
        process boundary and may raise
        :class:`~repro.errors.TransportError`.

        With ``retry`` (or a client-wide policy from the constructor),
        transient outcomes are retried under the policy: ``RETRY_AFTER``
        answers on any transport, plus connection loss / deadline misses
        on ``socket`` — where a re-send answered ``DUPLICATE`` means the
        original landed, and is returned as-is (success for idempotent
        callers).
        """
        policy = retry if retry is not None else self._retry
        if policy is None:
            return self._submit_once(device, seq, window, value)
        return policy.run(
            lambda: self._submit_once(device, seq, window, value)
        )

    def submit_async(self, device: int, seq: int, window: int, value: int):
        """Pipelined submit: returns a future over the admission.

        On the queue transport this is the raw front enqueue; in-process
        it resolves immediately (the admission already happened).
        """
        if self._stopped:
            raise ServiceError("service client is stopped")
        if self._front is not None:
            return self._front.submit(device, seq, window, value)
        from concurrent.futures import Future

        future: Future[AdmissionResult] = Future()
        try:
            future.set_result(self._core.submit(device, seq, window, value))
        except BaseException as exc:  # noqa: BLE001 - mirrored queue behavior
            future.set_exception(exc)
        return future

    def barrier(self) -> None:
        """Flush in-flight submissions (no-op on the inproc transport)."""
        if self._front is not None:
            self._front.barrier()

    def pause(self) -> None:
        self._core.pause()

    def resume(self) -> None:
        self._core.resume()

    # -- socket-only fault/process hooks ---------------------------------------

    def _require_supervisor(self):
        if self.supervisor is None:
            raise ServiceError(
                "shard-process operations need transport='socket'"
            )
        return self.supervisor

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard process (socket transport only); the
        supervisor's monitor restarts it from its WAL."""
        return self._require_supervisor().kill_shard(index)

    def inject_drop(self, index: int, count: int) -> None:
        """Drop the next ``count`` admission acks on shard ``index``."""
        self._require_supervisor().inject_drop(index, count)

    def inject_delay(self, index: int, count: int, delay_s: float) -> None:
        """Delay the next ``count`` admission replies on shard ``index``."""
        self._require_supervisor().inject_delay(index, count, delay_s)

    # -- window lifecycle ------------------------------------------------------

    def close_window(self, window: int) -> WindowSummary:
        """Close one window across every shard and publish it to the store.

        Runs behind :meth:`barrier`, so "close window N" means the same
        thing it means against a bare daemon: everything acknowledged
        before the close is in, everything after is late.
        """
        self.barrier()
        summary = self._core.close_window(window)
        if summary.window not in self.store.windows:
            self.store.publish(summary, self._core.last_close_submissions)
        return summary

    def mark_degraded(self, window: int) -> None:
        self._core.mark_degraded(window)

    def window_records(self) -> list[WindowSummary]:
        """Closed windows as the daemon holds them, in window order."""
        return self._core.window_records()

    # -- queries ---------------------------------------------------------------

    def query(
        self, device: int | None = None, window: int | None = None
    ) -> dict:
        """Query the result store: windows, one window, or one device.

        * no arguments — every journaled close (summaries) plus the full
          per-device billing extract;
        * ``window=N`` — that window's close summary and contributions;
        * ``device=D`` — that device's exact bill.

        Answers come from the store, i.e. from journaled
        ``WINDOW_CLOSE`` records only: a window lost to a hard kill
        before its fold landed is simply absent, never partial.
        """
        return query_store(self.store, device=device, window=window)

    def billing_extract(self) -> dict[int, DeviceBill]:
        return self.store.billing_extract()

    # -- retention -------------------------------------------------------------

    def compact(self, through_window: int) -> int:
        return self.store.compact(through_window)

    def retain(self, keep_windows: int) -> int:
        return self.store.retain(keep_windows)

    # -- lifecycle -------------------------------------------------------------

    def drain(self) -> list[WindowSummary]:
        """Graceful shutdown: flush, close every open window, stop."""
        self.barrier()
        summaries = [self.close_window(w) for w in self.open_windows]
        self.stop()
        return summaries

    def stop(self) -> None:
        """Graceful stop: flush the front, sync and release everything."""
        if self._stopped:
            return
        self._stopped = True
        if self._front is not None:
            self._front.stop()
            self._front = None
        self._core.stop()
        self.store.sync()
        self.store.close()

    def hard_stop(self) -> None:
        """Simulate a hard kill: drop everything, no flush, no drain.

        In-flight queue submissions are lost exactly as a real kill
        would lose them — pre-ack, so producers re-send under the
        ``(device, seq)`` identity and nothing double-counts.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._front is not None:
            self._front.kill()
            self._front = None
        self._core.hard_stop()
        self.store.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # An exception is unwinding the ``with`` body: a graceful
            # stop would block on dispatcher flushes (and can itself
            # raise, masking the real error).  Hard-stop guarantees the
            # threads and shard processes die; journal-before-ack makes
            # that always safe.
            self.hard_stop()
        else:
            self.stop()


def query_store(
    store: ResultStore, device: int | None = None, window: int | None = None
) -> dict:
    """The one query shape over a result store (client and CLI share it)."""
    if device is not None and window is not None:
        raise ServiceError("query by device or by window, not both")
    if window is not None:
        summary = store.window(window)
        return {
            "window": window,
            "closed": summary is not None,
            "summary": None if summary is None else _summary_dict(summary),
            "contributions": [
                {"device": s.device, "seq": s.seq, "value": s.value}
                for s in store.contributions(window)
            ],
        }
    if device is not None:
        bill = store.billing_extract().get(device)
        return {
            "device": device,
            "total": bill.total if bill else 0,
            "windows": bill.windows if bill else 0,
            "through_window": bill.through_window if bill else -1,
        }
    return {
        "windows": [_summary_dict(s) for s in store.window_summaries()],
        "devices": {
            str(bill.device): {
                "total": bill.total,
                "windows": bill.windows,
                "through_window": bill.through_window,
            }
            for bill in store.billing_extract().values()
        },
    }


def _summary_dict(summary: WindowSummary) -> dict:
    return {
        "window": summary.window,
        "accepted": summary.accepted,
        "devices": summary.devices,
        "duplicates": summary.duplicates,
        "late": summary.late,
        "shed": summary.shed,
        "retried": summary.retried,
        "total": summary.total,
        "expected": summary.expected,
        "exact": summary.total == summary.expected,
        "degraded": summary.degraded,
        "recovered": summary.recovered,
    }
