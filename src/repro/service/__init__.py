"""MPC-as-a-service: the long-lived, crash-safe aggregation daemon.

Everything below this package turns the repo's batch campaigns into a
*service*: devices stream share submissions continuously, the daemon
batches them into per-billing-window cross-cell aggregation rounds, and
the whole thing is engineered to be killed at any instant and resume
with bit-identical window totals.

Layers (each importable on its own):

* :mod:`repro.service.wire` — the flat-scalar wire format (derived from
  the :class:`~repro.core.metrics.RoundSummary` encoding discipline)
  for share submissions and window-close records.
* :mod:`repro.service.wal` — the window journal: a typed write-ahead
  log over :class:`repro.diskcache.AppendLog` (fsync'd, CRC-framed,
  torn-tail tolerant).
* :mod:`repro.service.windows` — deterministic window aggregation: the
  accepted submissions of one window, sliced into MPC cells and folded
  through the cross-cell Shamir round.
* :mod:`repro.service.daemon` — :class:`ServiceDaemon`: admission
  control (accepted / retry-after / shed / late / duplicate), bounded
  queue backpressure, per-window deadlines, graceful drain vs hard-kill
  recovery.
* :mod:`repro.service.loadgen` — the deterministic metering load
  generator feeding soaks, benches and CI smoke.
* :mod:`repro.service.soak` — the soak driver interpreting
  ``kill_daemon`` / ``pause_ingest`` fault events against a live daemon.
"""

from repro.service.daemon import (
    Admission,
    AdmissionResult,
    ServiceConfig,
    ServiceDaemon,
)
from repro.service.wire import ShareSubmission
from repro.service.wal import WindowJournal

__all__ = [
    "Admission",
    "AdmissionResult",
    "ServiceConfig",
    "ServiceDaemon",
    "ShareSubmission",
    "WindowJournal",
]
