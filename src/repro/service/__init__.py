"""MPC-as-a-service: the sharded, crash-safe aggregation service.

Everything below this package turns the repo's batch campaigns into a
*service*: devices stream share submissions continuously, the daemon
batches them into per-billing-window cross-cell aggregation rounds, and
the whole thing is engineered to be killed at any instant and resume
with bit-identical window totals.

The one front door is :class:`ServiceClient` — daemon, ingestion front
and result store behind a single API.  Layers (each importable on its
own):

* :mod:`repro.service.wire` — the flat-scalar wire format (derived from
  the :class:`~repro.core.metrics.RoundSummary` encoding discipline)
  for share submissions, window-close and device-total records.
* :mod:`repro.service.wal` — the window journal: a typed write-ahead
  log over :class:`repro.diskcache.AppendLog` (fsync'd, CRC-framed,
  torn-tail tolerant), plus the read-only journal scanner.
* :mod:`repro.service.windows` — deterministic window aggregation:
  sliced cells (:func:`~repro.service.windows.aggregate_window`) and the
  shard-as-cell fold (:func:`~repro.service.windows.aggregate_shards`).
* :mod:`repro.service.daemon` — :class:`ShardedServiceDaemon`: one WAL
  per shard, a fold journal for closes, thread-safe admission control
  (accepted / retry-after / shed / late / duplicate), per-window
  deadlines, graceful drain vs hard-kill recovery.  (The single-journal
  :class:`~repro.service.daemon.ServiceDaemon` remains for direct use,
  deprecated at this package's surface.)
* :mod:`repro.service.ingest` — :class:`IngestFront`: the bounded-queue
  thread-pool ingestion front between concurrent producers and the
  shard WALs.
* :mod:`repro.service.store` — :class:`ResultStore`: the queryable,
  compactable read-side over journaled window closes.
* :mod:`repro.service.client` — :class:`ServiceClient`: the one API.
* :mod:`repro.service.loadgen` — the deterministic metering load
  generator feeding soaks, benches and CI smoke.
* :mod:`repro.service.transport` — the length-prefixed socket
  transport: framed records over TCP localhost, per-request deadlines,
  and the client-side :class:`RetryPolicy` (decorrelated-jitter
  backoff, ``retry_after_s`` honoured, total-deadline capped).
* :mod:`repro.service.supervisor` — :class:`ShardSupervisor`: one OS
  process per shard journal plus a fold coordinator, heartbeat
  liveness monitoring, and WAL-replay restart of crashed shards into
  bit-identical state.
* :mod:`repro.service.soak` — the soak driver interpreting
  ``kill_daemon`` / ``pause_ingest`` (and, over the socket transport,
  ``kill_shard_process`` / ``drop_connection`` / ``delay_response``)
  fault events against a live service.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import (
    Admission,
    AdmissionResult,
    ServiceConfig,
    ShardedServiceDaemon,
)
from repro.service.ingest import IngestFront
from repro.service.store import DeviceBill, ResultStore
from repro.service.transport import RetryPolicy
from repro.service.wire import ShareSubmission
from repro.service.wal import WindowJournal

__all__ = [
    "Admission",
    "AdmissionResult",
    "DeviceBill",
    "IngestFront",
    "ResultStore",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ShardSupervisor",
    "ShardedServiceDaemon",
    "ShareSubmission",
    "WindowJournal",
]


def __getattr__(name: str):
    if name == "ShardSupervisor":
        # Lazy: pulls in multiprocessing, which most importers (and the
        # inproc/queue transports) never need.
        from repro.service.supervisor import ShardSupervisor

        return ShardSupervisor
    if name == "ServiceDaemon":
        # Direct daemon use still works, but the supported surface is
        # ServiceClient; steer imports there without breaking them.
        import warnings

        from repro.service.daemon import ServiceDaemon

        warnings.warn(
            "importing ServiceDaemon from repro.service is deprecated; "
            "use repro.service.ServiceClient (or import ServiceDaemon "
            "explicitly from repro.service.daemon)",
            DeprecationWarning,
            stacklevel=2,
        )
        return ServiceDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
