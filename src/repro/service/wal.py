"""The window journal: a typed write-ahead log for the aggregation daemon.

Every state transition the daemon must survive is one appended record:

* ``SUBMIT`` — a :class:`~repro.service.wire.ShareSubmission` was
  *accepted* (journaled **before** the submission is acknowledged, so an
  acknowledged share is durable by construction);
* ``WINDOW_CLOSE`` — a billing window was aggregated (the
  :class:`~repro.core.metrics.WindowSummary`, totals included, journaled
  **after** the aggregate is computed).

The byte substrate is :class:`repro.diskcache.AppendLog` — fsync'd,
CRC-framed, torn-tail tolerated — and the record encoding is the flat
scalar wire format of :mod:`repro.service.wire`.  Replay therefore never
depends on pickle or on wall clocks: a restarted daemon reconstructs its
accepted sets and closed windows purely from what was durably framed.

Journals default to living under the disk-cache root
(``<cache_dir>/service/<name>.wal``) so service state shares the cache's
directory conventions and lifecycle tooling.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field

from repro import diskcache
from repro.core.metrics import WindowSummary
from repro.errors import WireError
from repro.service import wire
from repro.service.wire import ShareSubmission

__all__ = [
    "JournalState",
    "WindowJournal",
    "journal_path",
    "replay_journal",
    "service_dir",
]


def journal_path(name: str) -> pathlib.Path:
    """Default journal location under the active disk-cache root."""
    return diskcache.cache_dir() / "service" / f"{name}.wal"


def service_dir(name: str) -> pathlib.Path:
    """Default journal *directory* for a sharded service instance."""
    return diskcache.cache_dir() / "service" / name


def replay_journal(path: str | os.PathLike) -> JournalState:
    """Read-only replay of one journal file (see :meth:`WindowJournal.replay`).

    Never truncates or opens the file for appending, so it is safe
    against a journal a live daemon (or another process) holds open —
    the read side the result store and ``repro query`` build on.  A
    missing file replays as empty.
    """
    state = JournalState()
    for payload in diskcache.read_log_records(path):
        try:
            record = wire.decode_record(payload)
        except WireError:
            state.skipped += 1
            continue
        if isinstance(record, ShareSubmission):
            state.accepted.append(record)
        elif isinstance(record, WindowSummary):
            state.closes[record.window] = record
        else:
            state.skipped += 1
    return state


@dataclass
class JournalState:
    """What a replayed journal says happened (the daemon's restart input).

    ``accepted`` holds every journaled submission in append order —
    including those of already-closed windows, so a recovering daemon
    can re-verify closed totals bit-for-bit.  ``closes`` maps window
    index to its journaled :class:`WindowSummary`.
    """

    accepted: list[ShareSubmission] = field(default_factory=list)
    closes: dict[int, WindowSummary] = field(default_factory=dict)
    skipped: int = 0

    @property
    def open_submissions(self) -> list[ShareSubmission]:
        """Accepted submissions whose window has no close record yet."""
        return [s for s in self.accepted if s.window not in self.closes]


class WindowJournal:
    """Typed append/replay facade over one :class:`AppendLog` file."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = pathlib.Path(path)
        self._log = diskcache.AppendLog(self.path, fsync=fsync)

    @property
    def torn_bytes(self) -> int:
        """Bytes of torn tail dropped when the journal was opened."""
        return self._log.torn_bytes

    @property
    def records(self) -> int:
        """Valid records currently in the journal."""
        return self._log.records

    def append_submission(self, submission: ShareSubmission) -> int:
        """Durably journal one accepted submission (pre-acknowledgment)."""
        return self._log.append(wire.encode_record(submission))

    def append_close(self, summary: WindowSummary) -> int:
        """Durably journal one window close (post-aggregation)."""
        return self._log.append(wire.encode_record(summary))

    def replay(self) -> JournalState:
        """Reconstruct journal state from the valid record prefix.

        Records that frame correctly at the log layer but fail to decode
        as wire records (a version skew, a corrupted-but-CRC-colliding
        frame) are counted in ``skipped`` rather than aborting recovery:
        the journal's durability contract is per-record, and one bad
        record must not take down every window behind it.
        """
        state = JournalState()
        for payload in self._log.replay():
            try:
                record = wire.decode_record(payload)
            except WireError:
                state.skipped += 1
                continue
            if isinstance(record, ShareSubmission):
                state.accepted.append(record)
            elif isinstance(record, WindowSummary):
                state.closes[record.window] = record
            else:
                # A decodable wire record that is not a journal record
                # (e.g. a result-store DeviceTotal written to the wrong
                # file) is foreign, not fatal — same per-record stance.
                state.skipped += 1
        return state

    def sync(self) -> None:
        """Explicit durability barrier."""
        self._log.sync()

    def close(self) -> None:
        """Close the underlying log file."""
        self._log.close()

    def __enter__(self) -> "WindowJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
