"""The window journal: a typed write-ahead log for the aggregation daemon.

Every state transition the daemon must survive is one appended record:

* ``SUBMIT`` — a :class:`~repro.service.wire.ShareSubmission` was
  *accepted* (journaled **before** the submission is acknowledged, so an
  acknowledged share is durable by construction);
* ``WINDOW_CLOSE`` — a billing window was aggregated (the
  :class:`~repro.core.metrics.WindowSummary`, totals included, journaled
  **after** the aggregate is computed).

The byte substrate is :class:`repro.diskcache.AppendLog` — fsync'd,
CRC-framed, torn-tail tolerated — and the record encoding is the flat
scalar wire format of :mod:`repro.service.wire`.  Replay therefore never
depends on pickle or on wall clocks: a restarted daemon reconstructs its
accepted sets and closed windows purely from what was durably framed.

Journals default to living under the disk-cache root
(``<cache_dir>/service/<name>.wal``) so service state shares the cache's
directory conventions and lifecycle tooling.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field

try:  # pragma: no cover - fcntl is POSIX-only; locks degrade to no-ops
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro import diskcache
from repro.core.metrics import WindowSummary
from repro.errors import ServiceError, WireError
from repro.service import wire
from repro.service.wire import ShareSubmission

__all__ = [
    "JournalState",
    "LOCK_NAME",
    "ServiceDirLock",
    "WindowJournal",
    "journal_path",
    "live_service_pid",
    "replay_journal",
    "service_dir",
]

#: The advisory lock file marking a service directory as live.
LOCK_NAME = "service.lock"


class ServiceDirLock:
    """One live service per directory, enforced with ``flock``.

    The holder (a :class:`~repro.service.daemon.ShardedServiceDaemon` or
    a :class:`~repro.service.supervisor.ShardSupervisor`) takes an
    exclusive non-blocking ``flock`` on ``<dir>/service.lock`` and
    writes its pid into the file; a second service over the same
    directory fails fast with :class:`ServiceError` instead of
    interleaving journal appends.  The lock is advisory and dies with
    the process, so a ``kill -9`` never wedges the directory — exactly
    the crash model the journals are built for.  Read-side tools probe
    it with :func:`live_service_pid` and degrade to checkpoint answers.
    """

    def __init__(self, directory: str | os.PathLike):
        self.path = pathlib.Path(directory) / LOCK_NAME
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> None:
        if self._handle is not None or fcntl is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            pid = _read_lock_pid(self.path)
            handle.close()
            raise ServiceError(
                f"service directory {self.path.parent} is already live"
                + (f" (locked by pid {pid})" if pid else "")
            ) from None
        handle.truncate(0)
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._handle = handle

    def release(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()


def _read_lock_pid(path: pathlib.Path) -> int | None:
    try:
        return int(path.read_text().strip() or 0) or None
    except (OSError, ValueError):
        return None


def live_service_pid(directory: str | os.PathLike) -> int | None:
    """The pid holding a directory's service lock, or ``None`` if free.

    Non-destructive probe: opens its own descriptor, tries the exclusive
    lock, and releases it immediately on success — the read side
    (``repro query``) uses this to decide between a full journal ingest
    and a checkpoint-only answer with a staleness warning.
    """
    path = pathlib.Path(directory) / LOCK_NAME
    if fcntl is None or not path.exists():
        return None
    try:
        with open(path, "r") as handle:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return _read_lock_pid(path) or -1
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    except OSError:
        return None
    return None


def journal_path(name: str) -> pathlib.Path:
    """Default journal location under the active disk-cache root."""
    return diskcache.cache_dir() / "service" / f"{name}.wal"


def service_dir(name: str) -> pathlib.Path:
    """Default journal *directory* for a sharded service instance."""
    return diskcache.cache_dir() / "service" / name


def replay_journal(path: str | os.PathLike) -> JournalState:
    """Read-only replay of one journal file (see :meth:`WindowJournal.replay`).

    Never truncates or opens the file for appending, so it is safe
    against a journal a live daemon (or another process) holds open —
    the read side the result store and ``repro query`` build on.  A
    missing file replays as empty.
    """
    state = JournalState()
    for payload in diskcache.read_log_records(path):
        try:
            record = wire.decode_record(payload)
        except WireError:
            state.skipped += 1
            continue
        if isinstance(record, ShareSubmission):
            state.accepted.append(record)
        elif isinstance(record, WindowSummary):
            state.closes[record.window] = record
        else:
            state.skipped += 1
    return state


@dataclass
class JournalState:
    """What a replayed journal says happened (the daemon's restart input).

    ``accepted`` holds every journaled submission in append order —
    including those of already-closed windows, so a recovering daemon
    can re-verify closed totals bit-for-bit.  ``closes`` maps window
    index to its journaled :class:`WindowSummary`.
    """

    accepted: list[ShareSubmission] = field(default_factory=list)
    closes: dict[int, WindowSummary] = field(default_factory=dict)
    skipped: int = 0

    @property
    def open_submissions(self) -> list[ShareSubmission]:
        """Accepted submissions whose window has no close record yet."""
        return [s for s in self.accepted if s.window not in self.closes]


class WindowJournal:
    """Typed append/replay facade over one :class:`AppendLog` file."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = pathlib.Path(path)
        self._log = diskcache.AppendLog(self.path, fsync=fsync)

    @property
    def torn_bytes(self) -> int:
        """Bytes of torn tail dropped when the journal was opened."""
        return self._log.torn_bytes

    @property
    def records(self) -> int:
        """Valid records currently in the journal."""
        return self._log.records

    def append_submission(self, submission: ShareSubmission) -> int:
        """Durably journal one accepted submission (pre-acknowledgment)."""
        return self._log.append(wire.encode_record(submission))

    def append_close(self, summary: WindowSummary) -> int:
        """Durably journal one window close (post-aggregation)."""
        return self._log.append(wire.encode_record(summary))

    def replay(self) -> JournalState:
        """Reconstruct journal state from the valid record prefix.

        Records that frame correctly at the log layer but fail to decode
        as wire records (a version skew, a corrupted-but-CRC-colliding
        frame) are counted in ``skipped`` rather than aborting recovery:
        the journal's durability contract is per-record, and one bad
        record must not take down every window behind it.
        """
        state = JournalState()
        for payload in self._log.replay():
            try:
                record = wire.decode_record(payload)
            except WireError:
                state.skipped += 1
                continue
            if isinstance(record, ShareSubmission):
                state.accepted.append(record)
            elif isinstance(record, WindowSummary):
                state.closes[record.window] = record
            else:
                # A decodable wire record that is not a journal record
                # (e.g. a result-store DeviceTotal written to the wrong
                # file) is foreign, not fatal — same per-record stance.
                state.skipped += 1
        return state

    def sync(self) -> None:
        """Explicit durability barrier."""
        self._log.sync()

    def close(self) -> None:
        """Close the underlying log file."""
        self._log.close()

    def __enter__(self) -> "WindowJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
