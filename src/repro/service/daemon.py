"""The aggregation daemon: admission control, deadlines, crash recovery.

:class:`ServiceDaemon` is the long-lived form of a metering campaign.
Devices stream :class:`~repro.service.wire.ShareSubmission` records at
it; the daemon journals every accepted share **before acknowledging
it**, folds each billing window's accepted set through the deterministic
aggregation core (:mod:`repro.service.windows`) at window close, and
journals the resulting :class:`~repro.core.metrics.WindowSummary`.

The crash-safety contract, in order of events:

1. ``submit`` → journal append (fsync) → acknowledge ``ACCEPTED``.  A
   crash between append and ack leaves a journaled-but-unacked share;
   the client re-sends and is answered ``DUPLICATE`` — never counted
   twice.
2. ``close_window`` → aggregate → journal ``WINDOW_CLOSE`` → retire the
   window from memory.  A crash before the close record lands leaves
   the window open; recovery re-closes it and — because the total is a
   pure function of the journaled accepted set — lands on the same
   bits.  A crash after leaves a closed window; recovery *re-verifies*
   the journaled total against recomputation and raises
   :class:`~repro.errors.ServiceError` on any mismatch.
3. A torn tail (the frame being written when power died) is truncated
   by the journal on reopen; the unacked submission it held is the
   client's to re-send.

Admission is explicit: every ``submit`` returns an
:class:`AdmissionResult` naming one of the :class:`Admission` outcomes —
``ACCEPTED``, ``DUPLICATE`` (the ``(device, seq)`` identity is already
journaled), ``LATE`` (the window's deadline has passed; deterministic
and final), ``SHED`` (the window's admission cap is full; retrying the
same window cannot help), or ``RETRY_AFTER`` (transient pressure —
ingest paused or the global pending queue at capacity — with a hint for
when to retry).  Backpressure never degrades correctness: a share is
either durably in a window's accepted set or deterministically refused.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, replace
from enum import Enum

from repro.core.metrics import WindowSummary
from repro.errors import ServiceError, WireError
from repro.lintkit.lockdep import ordered_lock
from repro.service import wal
from repro.service.windows import aggregate_shards, aggregate_window
from repro.service.wire import ShareSubmission

__all__ = [
    "Admission",
    "AdmissionResult",
    "ServiceConfig",
    "ServiceDaemon",
    "ShardedServiceDaemon",
]


class Admission(Enum):
    """Every answer the daemon's admission control can give."""

    ACCEPTED = "accepted"
    DUPLICATE = "duplicate"
    LATE = "late"
    SHED = "shed"
    RETRY_AFTER = "retry_after"


@dataclass(frozen=True, slots=True)
class AdmissionResult:
    """One ``submit`` outcome.

    ``retry_after_s`` is set only for ``RETRY_AFTER`` (the transient
    outcomes); ``LATE``/``SHED``/``DUPLICATE`` are final for that
    ``(device, seq, window)`` and retrying them is pointless, which the
    load generator relies on.
    """

    admission: Admission
    window: int
    retry_after_s: float | None = None

    @property
    def accepted(self) -> bool:
        return self.admission is Admission.ACCEPTED

    @property
    def retryable(self) -> bool:
        return self.admission is Admission.RETRY_AFTER


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Daemon policy knobs (all admission behaviour lives here).

    Attributes:
        seed: campaign seed; the only entropy the window totals depend
            on besides the accepted sets.
        cells: MPC cells per window aggregation.
        queue_capacity: global bound on pending (accepted, un-closed)
            submissions across all open windows; beyond it, admission
            answers ``RETRY_AFTER`` (closing a window frees space).
        window_capacity: per-window bound on accepted submissions;
            beyond it, admission answers ``SHED`` (final — the window
            can never take more).
        retry_after_s: the hint attached to ``RETRY_AFTER`` answers.
        fsync: fsync the journal on every append (tests may disable for
            speed; the soak and CI smoke keep it on).
    """

    seed: int = 1
    cells: int = 1
    queue_capacity: int = 4096
    window_capacity: int = 1024
    retry_after_s: float = 0.05
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ServiceError(f"cells must be >= 1, got {self.cells}")
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.window_capacity < 1:
            raise ServiceError(
                f"window_capacity must be >= 1, got {self.window_capacity}"
            )
        if self.retry_after_s <= 0:
            raise ServiceError(
                f"retry_after_s must be > 0, got {self.retry_after_s}"
            )


class ServiceDaemon:
    """A crash-safe, backpressured window-aggregation daemon."""

    def __init__(
        self,
        config: ServiceConfig,
        journal: str | os.PathLike | None = None,
    ):
        self.config = config
        path = wal.journal_path("daemon") if journal is None else journal
        self.journal = wal.WindowJournal(path, fsync=config.fsync)
        #: (device, seq) identities ever journaled (dedup across windows).
        self._seen: set[tuple[int, int]] = set()
        #: window -> accepted submissions, insertion order (open windows).
        self._open: dict[int, list[ShareSubmission]] = {}
        #: window -> journaled close record.
        self._closed: dict[int, WindowSummary] = {}
        #: highest closed window; every window <= this is past deadline.
        self._deadline = -1
        #: per-window admission counters (open windows only).
        self._duplicates: dict[int, int] = {}
        self._shed: dict[int, int] = {}
        self._retried: dict[int, int] = {}
        self._late: dict[int, int] = {}
        #: late rejections across all windows (incl. already-closed ones).
        self.late_total = 0
        #: open windows flagged coverage-degraded by the soak driver.
        self._degraded_windows: set[int] = set()
        self._paused = False
        self._pending = 0
        self.recovered = self.journal.records > 0
        self._recover()

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild state from the journal; verify every closed total."""
        state = self.journal.replay()
        if state.skipped:
            raise ServiceError(
                f"journal {self.journal.path} holds {state.skipped} "
                "undecodable records"
            )
        by_window: dict[int, list[ShareSubmission]] = {}
        for submission in state.accepted:
            identity = (submission.device, submission.seq)
            if identity in self._seen:
                raise ServiceError(
                    f"journal {self.journal.path} holds a duplicate "
                    f"submission identity {identity}"
                )
            self._seen.add(identity)
            by_window.setdefault(submission.window, []).append(submission)
        for window, summary in sorted(state.closes.items()):
            submissions = by_window.pop(window, [])
            if len(submissions) != summary.accepted:
                raise ServiceError(
                    f"window {window} close record counts "
                    f"{summary.accepted} submissions; journal holds "
                    f"{len(submissions)}"
                )
            check = aggregate_window(
                submissions, self.config.seed, window, self.config.cells
            )
            if check.total != summary.total or check.expected != summary.expected:
                raise ServiceError(
                    f"window {window} journaled total {summary.total} does "
                    f"not match its recomputation {check.total}"
                )
            self._closed[window] = replace(summary, recovered=self.recovered)
            self._deadline = max(self._deadline, window)
        for window, submissions in sorted(by_window.items()):
            if window <= self._deadline:
                raise ServiceError(
                    f"journal holds submissions for window {window} past "
                    f"the recovered deadline {self._deadline}"
                )
            self._open[window] = submissions
            self._pending += len(submissions)

    # -- admission -------------------------------------------------------------

    def submit(
        self, device: int, seq: int, window: int, value: int
    ) -> AdmissionResult:
        """Admit one share submission; journal before acknowledging."""
        try:
            submission = ShareSubmission(
                device=device, seq=seq, window=window, value=value
            )
        except WireError as exc:
            raise ServiceError(f"malformed submission: {exc}") from exc
        if window <= self._deadline or window in self._closed:
            self.late_total += 1
            self._late[window] = self._late.get(window, 0) + 1
            return AdmissionResult(Admission.LATE, window)
        if (device, seq) in self._seen:
            self._duplicates[window] = self._duplicates.get(window, 0) + 1
            return AdmissionResult(Admission.DUPLICATE, window)
        if self._paused:
            self._retried[window] = self._retried.get(window, 0) + 1
            return AdmissionResult(
                Admission.RETRY_AFTER, window,
                retry_after_s=self.config.retry_after_s,
            )
        accepted = self._open.get(window, ())
        if len(accepted) >= self.config.window_capacity:
            self._shed[window] = self._shed.get(window, 0) + 1
            return AdmissionResult(Admission.SHED, window)
        if self._pending >= self.config.queue_capacity:
            self._retried[window] = self._retried.get(window, 0) + 1
            return AdmissionResult(
                Admission.RETRY_AFTER, window,
                retry_after_s=self.config.retry_after_s,
            )
        self.journal.append_submission(submission)
        self._seen.add((device, seq))
        self._open.setdefault(window, []).append(submission)
        self._pending += 1
        return AdmissionResult(Admission.ACCEPTED, window)

    # -- backpressure / fault hooks --------------------------------------------

    def pause(self) -> None:
        """Stop admitting (``RETRY_AFTER``) until :meth:`resume`."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def pending(self) -> int:
        """Accepted submissions whose window has not closed yet."""
        return self._pending

    @property
    def open_windows(self) -> tuple[int, ...]:
        return tuple(sorted(self._open))

    @property
    def accepted_total(self) -> int:
        """Submissions ever journaled (identities seen)."""
        return len(self._seen)

    # -- window lifecycle ------------------------------------------------------

    def close_window(self, window: int) -> WindowSummary:
        """Close one window's deadline: aggregate, journal, retire.

        Closing window ``w`` moves the deadline to ``w``: every window
        at or below it — including empty ones that never saw a share —
        becomes ``LATE`` territory.  Windows must close in increasing
        order (the deadline is monotone wall time).
        """
        if window in self._closed or window <= self._deadline:
            raise ServiceError(f"window {window} is already closed")
        skipped = [w for w in self._open if w < window]
        if skipped:
            raise ServiceError(
                f"cannot close window {window} past open windows "
                f"{sorted(skipped)}; windows close in order"
            )
        submissions = self._open.pop(window, [])
        started = time.perf_counter_ns()
        result = aggregate_window(
            submissions, self.config.seed, window, self.config.cells
        )
        close_latency_us = (time.perf_counter_ns() - started) // 1000
        summary = WindowSummary(
            window=window,
            accepted=len(submissions),
            devices=len({s.device for s in submissions}),
            duplicates=self._duplicates.pop(window, 0),
            late=self._late.pop(window, 0),
            shed=self._shed.pop(window, 0),
            retried=self._retried.pop(window, 0),
            total=result.total,
            expected=result.expected,
            degraded=window in self._degraded_windows,
            close_latency_us=close_latency_us,
            recovered=self.recovered,
        )
        self.journal.append_close(summary)
        self._closed[window] = summary
        self._degraded_windows.discard(window)
        self._deadline = window
        self._pending -= len(submissions)
        return summary

    def mark_degraded(self, window: int) -> None:
        """Flag an open window as coverage-degraded at its deadline.

        The soak driver calls this when known contributors missed the
        window (stragglers past the deadline).  Degradation is a
        coverage statement, never a correctness one: the close still
        aggregates exactly the accepted set.
        """
        if window in self._closed or window <= self._deadline:
            raise ServiceError(f"window {window} is already closed")
        self._degraded_windows.add(window)

    def drain(self) -> list[WindowSummary]:
        """Graceful shutdown (SIGTERM): close every open window, in order.

        Returns the close records; afterwards the journal is synced and
        closed, and the daemon refuses further work.
        """
        summaries = [self.close_window(w) for w in sorted(self._open)]
        self.stop()
        return summaries

    def stop(self) -> None:
        """Release the journal (graceful; windows stay as they are)."""
        self.journal.sync()
        self.journal.close()

    def hard_stop(self) -> None:
        """Simulate a hard kill: drop the journal handle, no drain.

        Open windows are abandoned mid-flight exactly as ``kill -9``
        would abandon them; a new daemon on the same journal path must
        recover them bit-identically.
        """
        self.journal.close()

    # -- reporting -------------------------------------------------------------

    def window_records(self) -> list[WindowSummary]:
        """Closed windows, in window order."""
        return [self._closed[w] for w in sorted(self._closed)]

    def __enter__(self) -> "ServiceDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ShardedServiceDaemon:
    """The scaled-out daemon: one journal per shard, one fold journal.

    Shards are MPC cells with *routed* membership: submission for device
    ``d`` lands on shard ``d % shards``, is journaled in that shard's own
    WAL (``shard-NNN.wal``) before acknowledgment, and stays there until
    the window closes.  At close every shard's accepted set becomes one
    cell of the cross-cell Shamir fold (:func:`~repro.service.windows
    .aggregate_shards`) and the folded :class:`WindowSummary` is
    journaled to ``fold.wal`` — the authoritative close record.

    Concurrency: the class is **thread-safe**, and each shard's WAL is
    the serialization point — per-shard locks serialize journal-
    before-ack within a shard while producers for different shards run
    concurrently; window closes take every shard lock (in index order)
    so a close is a consistent cut across shards.

    Crash safety is the single-journal contract, shard by shard:

    * kill between a shard append and its ack → the share is journaled;
      the client re-sends and is answered ``DUPLICATE``;
    * kill before the fold record lands → the window is still open on
      recovery (every shard's accepted set replays from its own WAL) and
      re-closing re-derives the same bits, because the folded total is a
      pure function of the per-shard accepted sets and the seed;
    * kill after → recovery re-verifies the journaled fold against
      recomputation from the shard WALs and fails loudly on mismatch.

    ``config.window_capacity`` bounds each *shard's* per-window accepted
    set (the shed decision is shard-local so it never needs cross-shard
    coordination); ``config.queue_capacity`` stays a global bound.  With
    ``shards=1`` aggregation uses ``config.cells`` exactly like
    :class:`ServiceDaemon`, so single-shard runs are bit-identical to
    the single-journal daemon.
    """

    #: Shard journal filename pattern (index-stable across restarts).
    SHARD_PATTERN = "shard-{index:03d}.wal"
    FOLD_NAME = "fold.wal"

    def __init__(
        self,
        config: ServiceConfig,
        journal_dir: str | os.PathLike,
        shards: int = 1,
    ):
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.shards = shards
        self.journal_dir = pathlib.Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        for existing in self.journal_dir.glob("shard-*.wal"):
            try:
                index = int(existing.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index >= shards:
                raise ServiceError(
                    f"journal dir {self.journal_dir} holds {existing.name} "
                    f"but this daemon runs {shards} shard(s); resharding a "
                    "journal directory is not supported"
                )
        # Locks are created here, not in _init_state: every thread must
        # see one lock object per role for the object's whole lifetime,
        # and the lockdep watchdog learns each lock's rank at creation.
        # Canonical order: shard locks (ascending index) before _state.
        self._shard_locks = [
            ordered_lock("daemon.shard", index=index) for index in range(shards)
        ]
        self._state = ordered_lock("daemon.state")
        # One live service per directory: advisory flock, dies with the
        # process, so a kill -9 never wedges the directory.  Read-side
        # tools probe it to answer from checkpoints instead of failing.
        self._dirlock = wal.ServiceDirLock(self.journal_dir)
        self._dirlock.acquire()
        try:
            self._init_state()
        except BaseException:
            self._dirlock.release()
            raise

    def _init_state(self) -> None:
        """Open the journals, rebuild state, verify (lock already held)."""
        config, shards = self.config, self.shards
        self._journals = [
            wal.WindowJournal(
                self.journal_dir / self.SHARD_PATTERN.format(index=index),
                fsync=config.fsync,
            )
            for index in range(shards)
        ]
        self._fold = wal.WindowJournal(
            self.journal_dir / self.FOLD_NAME, fsync=config.fsync
        )
        #: per-shard (device, seq) identities ever journaled.
        self._seen: list[set[tuple[int, int]]] = [set() for _ in range(shards)]
        #: per-shard window -> accepted submissions, append order.
        self._open: list[dict[int, list[ShareSubmission]]] = [
            {} for _ in range(shards)
        ]
        self._closed: dict[int, WindowSummary] = {}
        self._deadline = -1
        self._duplicates: dict[int, int] = {}
        self._shed: dict[int, int] = {}
        self._retried: dict[int, int] = {}
        self._late: dict[int, int] = {}
        self.late_total = 0
        self._degraded_windows: set[int] = set()
        self._paused = False
        self._pending = 0
        #: submissions folded by the most recent close (store publication).
        self.last_close_submissions: tuple[ShareSubmission, ...] = ()
        self.recovered = (
            any(journal.records for journal in self._journals)
            or self._fold.records > 0
        )
        self._recover()

    # -- routing ---------------------------------------------------------------

    def shard_of(self, device: int) -> int:
        """The shard (journal, cell) a device's submissions live on."""
        return device % self.shards

    def _aggregate(self, shard_subs: dict[int, list[ShareSubmission]], window: int):
        if self.shards == 1:
            # Bit-identical to the single-journal daemon: one shard's set
            # sliced into config.cells cells, exactly ServiceDaemon's fold.
            return aggregate_window(
                shard_subs.get(0, []), self.config.seed, window, self.config.cells
            )
        return aggregate_shards(shard_subs, self.config.seed, window)

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild per-shard state; re-verify every folded close."""
        pending: dict[tuple[int, int], list[ShareSubmission]] = {}
        for index, journal in enumerate(self._journals):
            state = journal.replay()
            if state.skipped:
                raise ServiceError(
                    f"shard journal {journal.path} holds {state.skipped} "
                    "undecodable records"
                )
            if state.closes:
                raise ServiceError(
                    f"shard journal {journal.path} holds close records; "
                    "closes belong to the fold journal"
                )
            for submission in state.accepted:
                if submission.device % self.shards != index:
                    raise ServiceError(
                        f"shard journal {journal.path} holds device "
                        f"{submission.device}, which routes to shard "
                        f"{submission.device % self.shards}"
                    )
                identity = (submission.device, submission.seq)
                if identity in self._seen[index]:
                    raise ServiceError(
                        f"shard journal {journal.path} holds a duplicate "
                        f"submission identity {identity}"
                    )
                self._seen[index].add(identity)
                pending.setdefault((index, submission.window), []).append(
                    submission
                )
        fold_state = self._fold.replay()
        if fold_state.skipped:
            raise ServiceError(
                f"fold journal {self._fold.path} holds {fold_state.skipped} "
                "undecodable records"
            )
        if fold_state.accepted:
            raise ServiceError(
                f"fold journal {self._fold.path} holds submissions; "
                "shares belong to the shard journals"
            )
        for window, summary in sorted(fold_state.closes.items()):
            shard_subs = {
                index: pending.pop((index, window), [])
                for index in range(self.shards)
            }
            count = sum(len(subs) for subs in shard_subs.values())
            if count != summary.accepted:
                raise ServiceError(
                    f"window {window} fold record counts {summary.accepted} "
                    f"submissions; shard journals hold {count}"
                )
            check = self._aggregate(shard_subs, window)
            if check.total != summary.total or check.expected != summary.expected:
                raise ServiceError(
                    f"window {window} journaled total {summary.total} does "
                    f"not match its recomputation {check.total}"
                )
            self._closed[window] = replace(summary, recovered=self.recovered)
            self._deadline = max(self._deadline, window)
        for (index, window), submissions in sorted(pending.items()):
            if window <= self._deadline:
                raise ServiceError(
                    f"shard {index} journal holds submissions for window "
                    f"{window} past the recovered deadline {self._deadline}"
                )
            self._open[index][window] = submissions
            self._pending += len(submissions)

    # -- admission -------------------------------------------------------------

    def submit(
        self, device: int, seq: int, window: int, value: int
    ) -> AdmissionResult:
        """Admit one submission on its shard; journal before acknowledging."""
        try:
            submission = ShareSubmission(
                device=device, seq=seq, window=window, value=value
            )
        except WireError as exc:
            raise ServiceError(f"malformed submission: {exc}") from exc
        shard = submission.device % self.shards
        with self._shard_locks[shard]:
            with self._state:
                if window <= self._deadline or window in self._closed:
                    self.late_total += 1
                    self._late[window] = self._late.get(window, 0) + 1
                    return AdmissionResult(Admission.LATE, window)
            if (device, seq) in self._seen[shard]:
                with self._state:
                    self._duplicates[window] = self._duplicates.get(window, 0) + 1
                return AdmissionResult(Admission.DUPLICATE, window)
            with self._state:
                if self._paused:
                    self._retried[window] = self._retried.get(window, 0) + 1
                    return AdmissionResult(
                        Admission.RETRY_AFTER, window,
                        retry_after_s=self.config.retry_after_s,
                    )
            accepted = self._open[shard].get(window, ())
            if len(accepted) >= self.config.window_capacity:
                with self._state:
                    self._shed[window] = self._shed.get(window, 0) + 1
                return AdmissionResult(Admission.SHED, window)
            with self._state:
                if self._pending >= self.config.queue_capacity:
                    self._retried[window] = self._retried.get(window, 0) + 1
                    return AdmissionResult(
                        Admission.RETRY_AFTER, window,
                        retry_after_s=self.config.retry_after_s,
                    )
            self._journals[shard].append_submission(submission)
            self._seen[shard].add((device, seq))
            self._open[shard].setdefault(window, []).append(submission)
            with self._state:
                self._pending += 1
            return AdmissionResult(Admission.ACCEPTED, window)

    # -- backpressure / fault hooks --------------------------------------------

    def pause(self) -> None:
        """Stop admitting (``RETRY_AFTER``) until :meth:`resume`."""
        with self._state:
            self._paused = True

    def resume(self) -> None:
        with self._state:
            self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def pending(self) -> int:
        """Accepted submissions whose window has not closed yet."""
        return self._pending

    @property
    def open_windows(self) -> tuple[int, ...]:
        windows: set[int] = set()
        for per_shard in self._open:
            windows.update(per_shard)
        return tuple(sorted(windows))

    @property
    def accepted_total(self) -> int:
        """Submissions ever journaled, across every shard."""
        return sum(len(seen) for seen in self._seen)

    @property
    def accepted_per_shard(self) -> tuple[int, ...]:
        """Per-shard journaled identity counts (shard-aware fault anchors)."""
        return tuple(len(seen) for seen in self._seen)

    @property
    def journal_records(self) -> int:
        """Valid records across every shard journal plus the fold journal."""
        return sum(j.records for j in self._journals) + self._fold.records

    # -- window lifecycle ------------------------------------------------------

    def _acquire_all(self) -> None:
        for lock in self._shard_locks:
            lock.acquire()

    def _release_all(self) -> None:
        for lock in reversed(self._shard_locks):
            lock.release()

    def close_window(self, window: int) -> WindowSummary:
        """Close one window everywhere: fold across shards, journal, retire."""
        self._acquire_all()
        try:
            with self._state:
                if window in self._closed or window <= self._deadline:
                    raise ServiceError(f"window {window} is already closed")
                skipped = sorted(
                    w
                    for per_shard in self._open
                    for w in per_shard
                    if w < window
                )
                if skipped:
                    raise ServiceError(
                        f"cannot close window {window} past open windows "
                        f"{skipped}; windows close in order"
                    )
            shard_subs = {
                index: self._open[index].pop(window, [])
                for index in range(self.shards)
            }
            count = sum(len(subs) for subs in shard_subs.values())
            started = time.perf_counter_ns()
            result = self._aggregate(shard_subs, window)
            close_latency_us = (time.perf_counter_ns() - started) // 1000
            with self._state:
                summary = WindowSummary(
                    window=window,
                    accepted=count,
                    devices=len(
                        {s.device for subs in shard_subs.values() for s in subs}
                    ),
                    duplicates=self._duplicates.pop(window, 0),
                    late=self._late.pop(window, 0),
                    shed=self._shed.pop(window, 0),
                    retried=self._retried.pop(window, 0),
                    total=result.total,
                    expected=result.expected,
                    degraded=window in self._degraded_windows,
                    close_latency_us=close_latency_us,
                    recovered=self.recovered,
                )
            self._fold.append_close(summary)
            with self._state:
                self._closed[window] = summary
                self._degraded_windows.discard(window)
                self._deadline = window
                self._pending -= count
            self.last_close_submissions = tuple(
                sorted(
                    (s for subs in shard_subs.values() for s in subs),
                    key=lambda s: (s.device, s.seq),
                )
            )
            return summary
        finally:
            self._release_all()

    def mark_degraded(self, window: int) -> None:
        """Flag an open window as coverage-degraded at its deadline."""
        with self._state:
            if window in self._closed or window <= self._deadline:
                raise ServiceError(f"window {window} is already closed")
            self._degraded_windows.add(window)

    def drain(self) -> list[WindowSummary]:
        """Graceful shutdown: close every open window, in order."""
        summaries = [self.close_window(w) for w in self.open_windows]
        self.stop()
        return summaries

    def stop(self) -> None:
        """Release every journal (graceful; windows stay as they are)."""
        for journal in self._journals:
            journal.sync()
            journal.close()
        self._fold.sync()
        self._fold.close()
        self._dirlock.release()

    def hard_stop(self) -> None:
        """Simulate a hard kill: drop every journal handle, no drain.

        Takes the shard locks so an in-flight append either completes
        (journaled ⇒ durable, ack or no ack) or never starts — the
        thread-level kill model is record-atomic, mirroring what the
        OS gives a real ``kill -9`` at the fsync'd frame boundary (the
        torn-tail tests cover the mid-write byte-level case directly).
        """
        self._acquire_all()
        try:
            for journal in self._journals:
                journal.close()
            self._fold.close()
        finally:
            self._release_all()
        self._dirlock.release()

    # -- reporting -------------------------------------------------------------

    def window_records(self) -> list[WindowSummary]:
        """Closed windows, in window order."""
        with self._state:
            return [self._closed[w] for w in sorted(self._closed)]

    def __enter__(self) -> "ShardedServiceDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
