"""Deterministic metering load: the traffic the soak, bench and CI feed.

One formula is the oracle tie between the batch world and the service
world: :func:`metering_reading` is the exact per-node reading the batch
``metering`` scenario meters (``base_load_wh + (node*37 + period*101) %
400``), so a service window fed by this generator must close on the same
total the batch scenario computes for that billing period.  The batch
scenario imports the formula from here — there is deliberately no second
copy to drift.

Arrival order within a window is a seeded permutation (device order
leaks nothing into the totals — the aggregation core canonicalises — but
a shuffled stream exercises admission in a non-trivial order), and a
device's submission for window ``w`` carries ``seq == w``: one reading
per billing window, so the dedup identity ``(device, seq)`` is exactly
"this device's reading for this window" and a re-send after a lost ack
can never double-bill.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.sim.seeds import child_seed
from repro.service.wire import ShareSubmission

__all__ = [
    "device_ids",
    "expected_device_total",
    "expected_window_total",
    "metering_reading",
    "window_submissions",
]


def metering_reading(node: int, period: int, base_load_wh: int = 0) -> int:
    """One smart meter's reading (Wh) for one billing period.

    The batch ``metering`` scenario's per-node consumption model; the
    service oracle by construction.
    """
    return base_load_wh + (node * 37 + period * 101) % 400


def device_ids(devices: int | Sequence[int]) -> tuple[int, ...]:
    """Normalise a device population (a count, or explicit ids)."""
    if isinstance(devices, int):
        return tuple(range(devices))
    return tuple(devices)


def expected_window_total(
    devices: int | Sequence[int], window: int, base_load_wh: int = 0
) -> int:
    """The billing oracle: the true total over a full-coverage window."""
    return sum(
        metering_reading(device, window, base_load_wh)
        for device in device_ids(devices)
    )


def expected_device_total(
    device: int, windows: int, base_load_wh: int = 0
) -> int:
    """The per-device billing oracle: one meter's exact bill over a run.

    The sum of :func:`metering_reading` over the first ``windows``
    billing periods — what the result store's extract must report for a
    device with full coverage, bit for bit, kills and compactions
    notwithstanding.
    """
    return sum(
        metering_reading(device, window, base_load_wh)
        for window in range(windows)
    )


def window_submissions(
    devices: int | Sequence[int],
    window: int,
    base_load_wh: int = 0,
    seed: int = 1,
) -> list[ShareSubmission]:
    """One window's submission stream, in seeded arrival order."""
    ids = list(device_ids(devices))
    rng = random.Random(child_seed(seed, "loadgen", window))
    rng.shuffle(ids)
    return [
        ShareSubmission(
            device=device,
            seq=window,
            window=window,
            value=metering_reading(device, window, base_load_wh),
        )
        for device in ids
    ]
