"""Deterministic window aggregation: the pure core of the daemon.

A billing window's total is a **pure function of the accepted submission
set and the campaign seed** — nothing else.  That single property is
what makes crash recovery bit-identical: a daemon that replays its
journal holds exactly the accepted set the dead daemon held, so
re-closing the window re-derives the same total bit for bit, no matter
where the kill landed.

Determinism is enforced structurally:

* Accepted submissions are sorted by ``(device, seq)`` before slicing,
  so arrival order (and therefore scheduling, backpressure and retry
  interleavings) cannot leak into the aggregate.
* The sorted set is sliced into contiguous MPC cells and each cell runs
  the batched Shamir deal of the sharded campaign layer
  (:func:`repro.analysis.sharding._mpc_cell_rounds`'s algebra) under
  ``child_seed(window_seed, "cell", index)``.
* Cell sums fold through :func:`repro.analysis.sharding.cross_cell_aggregate`
  — the same cross-cell round batch campaigns use — under the window
  seed, so the service path and the batch ``metering`` oracle share one
  aggregation code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.sharding import (
    CellResult,
    cross_cell_aggregate,
    degree_for_cell,
)
from repro.crypto.prng import AesCtrDrbg
from repro.errors import ServiceError
from repro.field.prime_field import PrimeField
from repro.sim.seeds import child_seed
from repro.sss.aggregation import reconstruct_many_from_sums
from repro.sss.scheme import ShamirScheme
from repro.service.wire import ShareSubmission

__all__ = [
    "WindowAggregate",
    "aggregate_shards",
    "aggregate_window",
    "window_seed",
]


def window_seed(seed: int, window: int) -> int:
    """The one derivation rule for a window's aggregation seed.

    Mirrors :func:`repro.sim.seeds.cell_seeds`' discipline: the seed
    depends only on the campaign seed and the *absolute* window index,
    never on how many windows closed before or which daemon incarnation
    closes this one.
    """
    return child_seed(seed, "service-window", window)


@dataclass(frozen=True, slots=True)
class WindowAggregate:
    """The pure aggregation outcome for one window's accepted set.

    ``total`` is the cross-cell reconstructed aggregate (``None`` only
    for an empty window), ``expected`` the plain modular-sum oracle over
    the same submissions; the crash-safety tests assert they are equal
    and that both are invariant under kill/restart.
    """

    total: int | None
    expected: int
    cells: int
    degree: int


def _cell_sum(
    values: Sequence[int],
    dealer_ids: Sequence[int],
    cell_seed: int,
) -> int:
    """One cell's MPC share-algebra sum (the batch layer's cell round)."""
    field = PrimeField()
    degree = degree_for_cell(len(values))
    scheme = ShamirScheme(field, degree)
    points = list(range(1, degree + 2))
    prime = field.prime
    rng = AesCtrDrbg.from_seed(child_seed(cell_seed, "round", 0))
    batches = scheme.split_many(list(values), points, rng, dealer_ids=list(dealer_ids))
    point_sums = dict.fromkeys(points, 0)
    for shares in batches:
        for share in shares:
            x = share.x.value
            point_sums[x] = (point_sums[x] + share.y.value) % prime
    (value,) = reconstruct_many_from_sums(field, [point_sums], degree)
    return value.value


def aggregate_window(
    submissions: Sequence[ShareSubmission],
    seed: int,
    window: int,
    cells: int = 1,
) -> WindowAggregate:
    """Aggregate one window's accepted submissions, deterministically.

    ``submissions`` may arrive in any order; they are canonicalised by
    ``(device, seq)`` first.  ``cells`` bounds the slicing — windows with
    fewer submissions than cells use one cell per submission.
    """
    if cells < 1:
        raise ServiceError(f"cells must be >= 1, got {cells}")
    ordered = sorted(submissions, key=lambda s: (s.device, s.seq))
    prime = PrimeField().prime
    values = [s.value % prime for s in ordered]
    expected = sum(values) % prime
    if not ordered:
        return WindowAggregate(total=None, expected=0, cells=0, degree=0)

    wseed = window_seed(seed, window)
    num_cells = min(cells, len(ordered))
    base, extra = divmod(len(ordered), num_cells)
    cell_results: list[CellResult] = []
    start = 0
    for index in range(num_cells):
        size = base + (1 if index < extra else 0)
        chunk = ordered[start : start + size]
        chunk_values = values[start : start + size]
        start += size
        cell_sum = _cell_sum(
            chunk_values,
            [s.device for s in chunk],
            child_seed(wseed, "cell", index),
        )
        cell_results.append(
            CellResult(
                index=index,
                node_ids=tuple(s.device for s in chunk),
                sums=(cell_sum,),
                expected=(sum(chunk_values) % prime,),
            )
        )
    totals, degree = cross_cell_aggregate(cell_results, iterations=1, seed=wseed)
    return WindowAggregate(
        total=totals[0], expected=expected, cells=num_cells, degree=degree
    )


def aggregate_shards(
    shard_submissions: dict[int, Sequence[ShareSubmission]],
    seed: int,
    window: int,
) -> WindowAggregate:
    """Fold per-shard accepted sets into one window total (sharded daemon).

    Each shard is one MPC cell whose membership is fixed by routing
    (``device % shards``), not by sorted slicing — but the determinism
    discipline is identical to :func:`aggregate_window`: submissions are
    canonicalised by ``(device, seq)`` *within* each shard, every cell's
    deal is seeded by ``child_seed(window_seed, "cell", shard_index)``
    (the shard index, stable however many shards sat empty), and cell
    sums fold through :func:`cross_cell_aggregate` under the window
    seed.  The folded total is therefore a pure function of the
    per-shard accepted sets and the campaign seed — the kill-anywhere
    recovery contract, per shard and for the fold.

    For one shard this is bit-identical to
    ``aggregate_window(submissions, seed, window, cells=1)``.
    """
    prime = PrimeField().prime
    per_shard = [
        (shard, sorted(shard_submissions[shard], key=lambda s: (s.device, s.seq)))
        for shard in sorted(shard_submissions)
        if shard_submissions[shard]
    ]
    expected = sum(
        s.value % prime for _, ordered in per_shard for s in ordered
    ) % prime
    if not per_shard:
        return WindowAggregate(total=None, expected=0, cells=0, degree=0)

    wseed = window_seed(seed, window)
    cell_results: list[CellResult] = []
    for shard, ordered in per_shard:
        chunk_values = [s.value % prime for s in ordered]
        cell_sum = _cell_sum(
            chunk_values,
            [s.device for s in ordered],
            child_seed(wseed, "cell", shard),
        )
        cell_results.append(
            CellResult(
                index=shard,
                node_ids=tuple(s.device for s in ordered),
                sums=(cell_sum,),
                expected=(sum(chunk_values) % prime,),
            )
        )
    totals, degree = cross_cell_aggregate(cell_results, iterations=1, seed=wseed)
    return WindowAggregate(
        total=totals[0], expected=expected, cells=len(per_shard), degree=degree
    )
