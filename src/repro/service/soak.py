"""The soak driver: a full service lifetime, faults included, in one call.

:func:`run_service_soak` stands up a :class:`~repro.service.daemon.ServiceDaemon`,
streams the deterministic metering load at it window by window, fires
the plan's service faults at their anchored submission offsets —
``kill_daemon`` hard-kills the daemon and restarts it from the journal,
``pause_ingest`` forces a stretch of ``RETRY_AFTER`` answers the driver
must retry through — closes each window at its deadline, and returns the
scenario payload the registry tables and checks.

The payload's two verdicts are the PR's contract:

* ``all_exact`` — every closed window's reconstructed total equals the
  modular-sum oracle over its accepted set, kills and all;
* ``oracle_match`` — every full-coverage window's total equals the batch
  ``metering`` scenario's true billing total for that period
  (:func:`~repro.service.loadgen.expected_window_total`).
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import deque

from repro.errors import ServiceError
from repro.service.daemon import Admission, ServiceConfig, ServiceDaemon
from repro.service.loadgen import (
    device_ids,
    expected_window_total,
    window_submissions,
)

__all__ = ["run_service_soak"]


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (no interpolation; deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[rank]


def run_service_soak(spec, journal: str | os.PathLike | None = None) -> dict:
    """Drive one soak per ``spec`` (a ``ServiceSoakSpec``); return the payload.

    ``journal`` pins the journal file (the CI smoke uses this to kill
    and resume across *processes*); by default each soak gets a fresh
    temporary journal so runs never inherit stale state.
    """
    config = ServiceConfig(
        seed=spec.seed,
        cells=spec.cells,
        queue_capacity=spec.queue_capacity,
        window_capacity=spec.window_capacity,
        fsync=spec.fsync,
    )
    cleanup: tempfile.TemporaryDirectory | None = None
    if journal is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-service-soak-")
        journal = os.path.join(cleanup.name, "soak.wal")

    kills = deque(
        sorted(
            set(spec.kill_at)
            | {e.round for e in spec.faults.events if e.kind == "kill_daemon"}
        )
    )
    pauses = {
        e.round: e.duration
        for e in spec.faults.events
        if e.kind == "pause_ingest"
    }
    ids = device_ids(spec.devices)
    throttle = 1.0 / spec.rate if spec.rate > 0 else 0.0

    daemon = ServiceDaemon(config, journal=journal)
    attempts = 0
    accepted = 0
    duplicates = 0
    late = 0
    dropped = 0
    pause_left = 0
    recoveries: list[dict] = []
    rows: list[dict] = []
    try:
        started = time.perf_counter()
        for window in range(spec.windows):
            stream = deque(window_submissions(
                ids, window, spec.base_load_wh, spec.seed
            ))
            contributors: set[int] = set()
            stall = 0
            while stream:
                submission = stream.popleft()
                if pause_left == 0 and attempts in pauses:
                    daemon.pause()
                    pause_left = pauses.pop(attempts)
                attempts += 1
                if throttle:
                    time.sleep(throttle)
                result = daemon.submit(
                    submission.device,
                    submission.seq,
                    submission.window,
                    submission.value,
                )
                if result.accepted:
                    stall = 0
                    accepted += 1
                    contributors.add(submission.device)
                    if (
                        spec.duplicate_every
                        and accepted % spec.duplicate_every == 0
                    ):
                        # A lost-ack client re-sends; dedup must hold.
                        echo = daemon.submit(
                            submission.device,
                            submission.seq,
                            submission.window,
                            submission.value,
                        )
                        if echo.admission is not Admission.DUPLICATE:
                            raise ServiceError(
                                f"re-sent submission was {echo.admission}, "
                                "not DUPLICATE"
                            )
                        duplicates += 1
                    if kills and accepted == kills[0]:
                        kills.popleft()
                        daemon.hard_stop()
                        t0 = time.perf_counter()
                        daemon = ServiceDaemon(config, journal=journal)
                        recoveries.append({
                            "at_accepted": accepted,
                            "window": window,
                            "replayed_records": daemon.journal.records,
                            "recovery_s": round(time.perf_counter() - t0, 6),
                        })
                elif result.retryable:
                    stream.append(submission)
                    if daemon.paused:
                        pause_left -= 1
                        if pause_left <= 0:
                            daemon.resume()
                    else:
                        # Global-queue pressure only clears when a window
                        # closes; if every queued share is stuck behind
                        # it, the deadline fires and they miss the window.
                        stall += 1
                        if stall > len(stream):
                            dropped += len(stream)
                            stream.clear()
                else:
                    # LATE/SHED/DUPLICATE are final; the device's reading
                    # missed this window.
                    dropped += 1
            if contributors != set(ids):
                daemon.mark_degraded(window)
            summary = daemon.close_window(window)
            if spec.late_replays and window + 1 < spec.windows:
                # Deadline check: a straggler past the close must be
                # refused deterministically, never aggregated.
                replay = window_submissions(
                    ids, window, spec.base_load_wh, spec.seed
                )[0]
                echo = daemon.submit(
                    replay.device, replay.seq, replay.window, replay.value
                )
                if echo.admission is not Admission.LATE:
                    raise ServiceError(
                        f"post-deadline submission was {echo.admission}, "
                        "not LATE"
                    )
                late += 1
            oracle_wh = expected_window_total(ids, window, spec.base_load_wh)
            full_coverage = summary.accepted == len(ids)
            rows.append({
                "window": window,
                "accepted": summary.accepted,
                "devices": summary.devices,
                "total": summary.total,
                "expected": summary.expected,
                "exact": summary.exact,
                "degraded": summary.degraded,
                "recovered": summary.recovered,
                "duplicates": summary.duplicates,
                "shed": summary.shed,
                "retried": summary.retried,
                "close_ms": round(summary.close_latency_us / 1000.0, 3),
                "oracle_wh": oracle_wh,
                "oracle_match": summary.total == oracle_wh
                if full_coverage
                else None,
            })
        elapsed = time.perf_counter() - started
        records = daemon.journal.records
        daemon.stop()
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    return {
        "windows": rows,
        "accepted": accepted,
        "attempts": attempts,
        "duplicates_rejected": duplicates,
        "late_rejected": late,
        "dropped": dropped,
        "kills": len(recoveries),
        "kills_unfired": len(kills),
        "recoveries": recoveries,
        "journal_records": records,
        "all_exact": all(row["exact"] for row in rows),
        "oracle_match": all(
            row["oracle_match"] in (True, None) for row in rows
        ),
        "window_total_wh": sum(
            row["total"] for row in rows if row["total"] is not None
        ),
        "elapsed_s": round(elapsed, 6),
        "shares_per_sec": round(accepted / elapsed, 3) if elapsed > 0 else 0.0,
        "p99_close_ms": round(
            _percentile([row["close_ms"] for row in rows], 0.99), 3
        ),
    }
